"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file only exists so
that editable installs work on environments whose packaging toolchain lacks
PEP 517 wheel support (offline evaluation machines).
"""

from setuptools import setup

setup()
