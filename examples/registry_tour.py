"""Tour of the protocol registry: one obfuscation pipeline, every protocol.

Iterates over every protocol registered in :mod:`repro.protocols.registry`
(HTTP and TCP-Modbus from the paper, plus the DNS and MQTT extension
workloads) and runs the same end-to-end pipeline on each:

1. resolve the specification and the core application through the registry,
2. apply two obfuscation passes,
3. generate the serialization library and exchange random messages,
4. report graph growth and wire-size growth.

No protocol-specific code appears below — that is the point of the registry:
adding a protocol package makes it show up here (and in the experiment
runner, the benchmarks and the test fixtures) without touching any of them.

Run with:  python examples/registry_tour.py
"""

from __future__ import annotations

from random import Random

from repro.analysis import render_table
from repro.codegen import GeneratedCodec
from repro.protocols import registry
from repro.transforms import Obfuscator
from repro.wire import WireCodec


def main() -> None:
    print(f"registered protocols: {', '.join(registry.available())}\n")

    rows = []
    for key in registry.available():
        setup = registry.get(key)
        graph = setup.graph_factory()
        result = Obfuscator(seed=11).obfuscate(setup.graph_factory(), 2)

        plain_codec = WireCodec(graph, seed=0)
        obfuscated_codec = GeneratedCodec(result.graph, seed=0)

        rng = Random(3)
        workload = [setup.message_generator(rng) for _ in range(20)]
        plain_bytes = obfuscated_bytes = 0
        for message in workload:
            plain_bytes += len(plain_codec.serialize(message))
            wire = obfuscated_codec.serialize(message)
            obfuscated_bytes += len(wire)
            assert obfuscated_codec.parse(wire) == message

        rows.append([
            setup.label,
            graph.stats().node_count,
            result.graph.stats().node_count,
            result.applied_count,
            f"{plain_bytes / len(workload):.0f}",
            f"{obfuscated_bytes / len(workload):.0f}",
        ])
        print(f"{setup.label}: {len(workload)} messages exchanged through the "
              f"generated library ({result.applied_count} transformations applied)")

    print()
    print(render_table(
        ["Protocol", "Nodes", "Nodes (obf)", "Applied", "Avg bytes", "Avg bytes (obf)"],
        rows,
        title="Every registered protocol through the same pipeline (2 passes)",
    ))


if __name__ == "__main__":
    main()
