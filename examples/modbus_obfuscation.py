"""Obfuscating the TCP-Modbus protocol (the paper's binary-protocol case study).

The example builds the bundled Modbus request specification, applies the
obfuscation framework at increasing strength, and reports for each level the
potency metrics of the generated library and the wire representation of one
fixed "read holding registers" request — the same experiment family as the
paper's Table IV.

Run with:  python examples/modbus_obfuscation.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.codegen import GeneratedCodec, generate_module
from repro.metrics import measure_source
from repro.protocols import modbus, registry
from repro.transforms import Obfuscator
from repro.wire import WireCodec


def main() -> None:
    # The specification is resolved through the protocol registry; the message
    # builders stay protocol-specific (they are the core application).
    setup = registry.get("modbus")
    graph = setup.graph_factory()
    reference = measure_source(generate_module(graph))
    request = modbus.build_request(3, transaction_id=1, unit_id=17,
                                   start_address=107, quantity=3)

    plain = WireCodec(graph, seed=0).serialize(request)
    print(f"plain Modbus request ({len(plain)} bytes): {plain.hex(' ')}")

    rows = []
    for passes in (1, 2, 3, 4):
        result = Obfuscator(seed=7).obfuscate(setup.graph_factory(), passes)
        metrics = measure_source(generate_module(result.graph)).normalized(reference)
        codec = GeneratedCodec(result.graph, seed=0)
        wire = codec.serialize(request)
        assert codec.parse(wire) == request
        rows.append([
            passes,
            result.applied_count,
            f"{metrics.lines:.2f}",
            f"{metrics.structs:.2f}",
            f"{metrics.call_graph_size:.2f}",
            len(wire),
        ])
        if passes == 2:
            print(f"\nobfuscated request at 2 transf./node ({len(wire)} bytes): {wire.hex(' ')}")
            print("  (note: no recognizable MBAP header, shuffled/split/padded fields)\n")

    print(render_table(
        ["Transf/node", "Applied", "Lines (norm)", "Structs (norm)", "CG size (norm)",
         "Request size (bytes)"],
        rows,
        title="Modbus request: potency and wire-size growth with obfuscation strength",
    ))

    # The stable accessor interface: the core application code never changes.
    print("\nlogical message (independent of every obfuscation):")
    for path, value in request.leaves():
        print(f"  {path} = {value}")


if __name__ == "__main__":
    main()
