"""Obfuscating HTTP (the paper's text-protocol case study).

Shows how the same logical HTTP requests look on the wire before and after
specification-level obfuscation, and that two peers sharing the generated
library interoperate while a regenerated protocol version is incompatible —
the "new obfuscated versions can be deployed at regular intervals" property of
the paper's conclusion.

Run with:  python examples/http_obfuscation.py
"""

from __future__ import annotations

from random import Random

from repro.codegen import GeneratedCodec
from repro.protocols import http, registry
from repro.transforms import Obfuscator
from repro.wire import WireCodec


def main() -> None:
    # The specification is resolved through the protocol registry; the message
    # builders stay protocol-specific (they are the core application).
    setup = registry.get("http")
    graph = setup.graph_factory()
    request = http.build_request(
        "POST",
        "/api/v1/orders",
        headers=[("Host", "example.com"), ("Content-Type", "application/json"),
                 ("X-Request-Id", "42")],
        body=b'{"item": "sensor", "qty": 3}',
    )

    plain = WireCodec(graph, seed=0).serialize(request)
    print("plain HTTP request:")
    print(plain.decode("latin-1"))

    # Version A of the obfuscated protocol: both peers embed the same library.
    version_a = Obfuscator(seed=31).obfuscate(setup.graph_factory(), 2)
    client_a = GeneratedCodec(version_a.graph, seed=1)
    server_a = GeneratedCodec(version_a.graph, seed=2)
    wire_a = client_a.serialize(request)
    print(f"obfuscated request, protocol version A ({version_a.applied_count} transformations):")
    print(wire_a)
    assert server_a.parse(wire_a) == request
    print("  -> server A recovered the request exactly\n")

    # Version B: regenerated with a different seed at a later deployment.
    version_b = Obfuscator(seed=77).obfuscate(setup.graph_factory(), 2)
    server_b = GeneratedCodec(version_b.graph, seed=3)
    print(f"protocol version B ({version_b.applied_count} transformations) "
          f"differs on the wire: {GeneratedCodec(version_b.graph, seed=1).serialize(request) != wire_a}")
    try:
        recovered = server_b.parse(wire_a)
        compatible = recovered == request
    except Exception:
        compatible = False
    print(f"version B can read version A traffic: {compatible}")

    # The application code is identical for every version: same logical messages.
    rng = Random(0)
    workload = [setup.message_generator(rng) for _ in range(5)]
    for message in workload:
        assert server_a.parse(client_a.serialize(message)) == message
    print(f"\n{len(workload)} random requests exchanged through version A without any change "
          f"to the application code")


if __name__ == "__main__":
    main()
