"""Live obfuscated sessions end-to-end: transport, capture, then PRE.

The paper's threat model in one script: an obfuscated server and several
concurrent clients exchange real protocol traffic over the transport layer,
a capture records both directions on the wire, and the trace-based reverse
engineering engine is run against the capture — once for the plain protocol,
once for the obfuscated deployment.  The recovered-boundary metrics collapse
on the obfuscated capture, exactly as in the in-memory resilience study, but
now measured on genuinely transported bytes.

Run with:  python examples/live_obfuscated_session.py [protocol] [clients]
(default: modbus, 4 clients)
"""

from __future__ import annotations

import asyncio
import sys
from random import Random

from repro.analysis import render_table
from repro.net import Capture, ObfuscatedClient, ObfuscatedServer, connect_memory
from repro.pre import infer_formats
from repro.pre.evaluate import score_inference
from repro.protocols import mqtt, registry
from repro.transforms.engine import Obfuscator

PASSES = 2  # obfuscating transformations per node on the obfuscated deployment
REQUESTS_PER_CLIENT = 6


def build_graphs(setup, passes: int, seed: int = 0):
    """(request graph, response graph), obfuscated when ``passes`` > 0."""
    request = setup.graph_factory()
    response = (setup.response_graph_factory()
                if setup.response_graph_factory is not None else request)
    if passes:
        request = Obfuscator(seed=seed).obfuscate(request, passes).graph
        if response is not request:
            response = Obfuscator(seed=seed + 1).obfuscate(response, passes).graph
        else:
            response = request
    return request, response


def client_message(setup, rng: Random):
    """One request that elicits a reply (CONNECT has no modelled CONNACK)."""
    if setup.key == "mqtt":
        return mqtt.random_packet(rng, packet_type=rng.choice(
            (mqtt.PUBLISH_QOS0, mqtt.PUBLISH_QOS1, mqtt.PINGREQ)))
    return setup.message_generator(rng)


async def run_sessions(setup, passes: int, clients: int) -> Capture:
    """Drive ``clients`` concurrent sessions and capture both directions."""
    request_graph, response_graph = build_graphs(setup, passes)
    capture = Capture()
    server = ObfuscatedServer(setup, request_graph=request_graph,
                              response_graph=response_graph, capture=capture)

    async def one_session(index: int) -> None:
        client = connect_memory(
            ObfuscatedClient(setup, request_graph=request_graph,
                             response_graph=response_graph, capture=capture,
                             session_id=f"client-{index}"),
            server,
        )
        rng = Random(1000 + index)
        for _ in range(REQUESTS_PER_CLIENT):
            await client.request(client_message(setup, rng))
        await client.close()

    await asyncio.gather(*(one_session(index) for index in range(clients)))
    assert all(stats.error is None for stats in server.completed)
    return capture


def analyse(capture: Capture):
    """Run the PRE engine on the capture and score it against ground truth."""
    result = infer_formats(capture)
    return score_inference(result, capture.field_spans(), capture.types())


def main() -> None:
    protocol = sys.argv[1] if len(sys.argv) > 1 else "modbus"
    clients = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    setup = registry.get(protocol)

    rows = []
    for label, passes in (("plain", 0), (f"{PASSES} obfuscations/node", PASSES)):
        capture = asyncio.run(run_sessions(setup, passes, clients))
        score = analyse(capture)
        rows.append([
            label,
            f"{len(capture)} msgs / {capture.byte_count()} B",
            f"{len(capture.sessions())}",
            f"{score.boundary_f1:.3f}",
            f"{score.boundary_recall:.3f}",
            f"{score.classification_purity:.2f}",
            f"{score.cluster_count} (true: {score.true_type_count})",
        ])

    print(render_table(
        ["Deployment", "Captured traffic", "Sessions", "Boundary F1",
         "Recall", "Purity", "Clusters"],
        rows,
        title=f"PRE against live {setup.label} captures "
              f"({clients} concurrent sessions)",
    ))
    print()
    print("Interpretation: the analyst sniffing the transport recovers most")
    print("field boundaries of the plain deployment; on the obfuscated wire")
    print("the same captured workload yields collapsed inference quality —")
    print("the resilience result of the paper, on transported bytes.")


if __name__ == "__main__":
    main()
