"""The specialized codec tier end-to-end: emit, share, serve, measure.

One obfuscated dialect is compiled by the specializing emitter into a
straight-line module (`repro.codegen.generate_specialized_module`) shared
per plan fingerprint through the module cache, proven byte-identical to the
interpreted runtime, benchmarked against it, and then used to serve live
obfuscated sessions over a memory pipe (`specialize=True` on the transport
endpoints) — same wire bytes, a fraction of the codec time.

Run with:  python examples/native_codec_session.py [protocol] [passes]
(default: modbus, 2 obfuscating transformations per node)
"""

from __future__ import annotations

import asyncio
import sys
import time
from random import Random

from repro.codegen import SpecializedCodec, cached_module, module_cache_stats
from repro.net import Capture, ObfuscatedClient, ObfuscatedServer
from repro.protocols import registry
from repro.transforms.engine import Obfuscator
from repro.wire import WireCodec, parse, serialize

MESSAGES = 300
NET_REQUESTS = 30


def measure(label, fn, count):
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    rate = count / elapsed if elapsed else float("inf")
    print(f"  {label:<28} {rate:>12,.0f} msgs/sec")
    return rate


def main() -> None:
    protocol = sys.argv[1] if len(sys.argv) > 1 else "modbus"
    passes = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    setup = registry.get(protocol)

    # --- emit: one obfuscated dialect, one specialized module ------------
    plan = Obfuscator(seed=7).obfuscate(setup.graph_factory(), passes).plan()
    graph = plan.replay(setup.graph_factory())
    module = cached_module(graph, specialize=True)
    print(f"{setup.label}, {passes} obfuscations/node")
    print(f"specialized module for dialect "
          f"{module.__plan_fingerprint__[:12]}… "
          f"(emitter v{module.__emitter_version__})")

    # Replaying the same plan on a fresh graph resolves to the SAME
    # compiled module — the cache keys on the plan fingerprint.
    assert cached_module(plan.replay(setup.graph_factory()),
                         specialize=True) is module
    print(f"module cache: {module_cache_stats()}")

    # --- verify: byte-identical to the interpreted runtime ---------------
    rng = Random(42)
    messages = [setup.message_generator(rng) for _ in range(MESSAGES)]
    wires = []
    for index, message in enumerate(messages):
        expected = serialize(graph, message, rng=Random(index))
        assert module.serialize(message.raw, rng=Random(index)) == expected
        assert module.parse(expected) == parse(graph, expected)
        wires.append(expected)
    print(f"verified: {MESSAGES} messages byte- and structure-identical")

    # --- measure: specialized vs interpreted ------------------------------
    print("\ncodec throughput (interpreted plan tier vs specialized module):")
    base_parse = measure("interpreted parse", lambda: [parse(graph, w) for w in wires], MESSAGES)
    spec_parse = measure("specialized parse", lambda: [module.parse(w) for w in wires], MESSAGES)
    raws = [m.raw for m in messages]
    base_ser = measure(
        "interpreted serialize",
        lambda: [serialize(graph, m, rng=Random(i)) for i, m in enumerate(messages)],
        MESSAGES)
    spec_ser = measure(
        "specialized serialize",
        lambda: [module.serialize(r, rng=Random(i)) for i, r in enumerate(raws)],
        MESSAGES)
    print(f"  speedup: parse {spec_parse / base_parse:.1f}x, "
          f"serialize {spec_ser / base_ser:.1f}x")

    # --- serve: live sessions on the specialized tier ---------------------
    async def sessions(specialize: bool):
        capture = Capture()
        server = ObfuscatedServer(protocol, framing="record", seed=5,
                                  capture=capture, capture_received=True,
                                  specialize=specialize)
        client = ObfuscatedClient(protocol, framing="record", seed=5,
                                  specialize=specialize)
        client.connect_memory(server)
        gen_rng = Random(11)
        start = time.perf_counter()
        for _ in range(NET_REQUESTS):
            await client.request(setup.message_generator(gen_rng))
        elapsed = time.perf_counter() - start
        await client.close()
        return NET_REQUESTS / elapsed, b"".join(r.data for r in capture.records)

    interp_rate, interp_wire = asyncio.run(sessions(False))
    spec_rate, spec_wire = asyncio.run(sessions(True))
    assert interp_wire == spec_wire, "specialized sessions diverged on the wire"
    print(f"\nlive sessions ({NET_REQUESTS} record-framed requests, memory pipe):")
    print(f"  interpreted codecs  {interp_rate:>8,.0f} reqs/sec")
    print(f"  specialized codecs  {spec_rate:>8,.0f} reqs/sec "
          f"({spec_rate / interp_rate:.2f}x, identical wire bytes)")

    # --- and the drop-in wrapper ------------------------------------------
    codec = SpecializedCodec(graph, seed=3, module=module)
    reference = WireCodec(graph, seed=3)
    sample = messages[0]
    assert codec.serialize(sample) == reference.serialize(sample)
    print("\nSpecializedCodec(graph) is a drop-in WireCodec replacement —")
    print("same bytes, same typed errors, shared compiled module per dialect.")


if __name__ == "__main__":
    main()
