"""Quickstart: obfuscate a protocol specification and exchange messages.

This example walks through the whole ProtoObf pipeline on a small custom
protocol defined with the specification DSL:

1. parse the message format specification,
2. apply randomly selected obfuscating transformations,
3. generate the standalone serialization library,
4. build a logical message through the stable interface and exchange it,
5. show that the wire bytes changed while the logical content did not.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from random import Random

from repro.codegen import GeneratedCodec
from repro.spec import parse_spec
from repro.transforms import Obfuscator
from repro.wire import WireCodec

SPEC = """
protocol sensor;

message sensor_report {
    uint device_id : 2;
    uint report_kind : 1;
    uint body_len : 2;
    sequence body length(body_len) {
        text location delimited(";");
        uint sample_count : 1;
        tabular samples count(sample_count) {
            uint channel : 1;
            uint value : 2;
        }
    }
    optional comment present_if(report_kind == 2) {
        text note delimited("\\n");
    }
}
"""


def main() -> None:
    # 1. Specification -> message format graph.
    graph = parse_spec(SPEC)
    print(f"specification parsed: {graph.stats().node_count} nodes")

    # 2. Obfuscate: two randomly selected transformations per node.
    result = Obfuscator(seed=2024).obfuscate(graph, passes=2)
    print(f"obfuscation applied:  {result.summary()}")

    # 3. The logical message is independent of the obfuscation.
    message = {
        "device_id": 42,
        "report_kind": 2,
        "body": {
            "location": "hall-3",
            "samples": [
                {"channel": 1, "value": 2200},
                {"channel": 2, "value": 1830},
            ],
        },
        "comment": "temperature slightly above threshold",
    }

    plain_codec = WireCodec(graph, seed=1)
    obfuscated_codec = GeneratedCodec(result.graph, seed=1)

    plain_bytes = plain_codec.serialize(message)
    obfuscated_bytes = obfuscated_codec.serialize(message)
    print(f"\nplain wire message      ({len(plain_bytes)} bytes): {plain_bytes!r}")
    print(f"obfuscated wire message ({len(obfuscated_bytes)} bytes): {obfuscated_bytes!r}")

    # 4. The receiver (linked with the same generated library) recovers the message.
    received = obfuscated_codec.parse(obfuscated_bytes)
    assert received == message
    print("\nreceiver recovered the logical message exactly:")
    print(f"  location      = {received.get('body.location')}")
    print(f"  sample count  = {received.list_length('body.samples')}")
    print(f"  first sample  = {received.get('body.samples[0].value')}")

    # 5. Every serialization of the same message may differ (random split shares,
    #    random padding), which is what defeats trace-based classification.
    again = obfuscated_codec.serialize(message)
    print(f"\nsame message, second transmission differs on the wire: {again != obfuscated_bytes}")


if __name__ == "__main__":
    main()
