"""Resilience against trace-based protocol reverse engineering (paper Sec. VII.D).

An analyst captures a realistic Modbus trace (requests and responses for four
function codes) and runs the trace-based inference engine on it: message
classification by alignment similarity, then field-boundary inference per
class.  The experiment is repeated on the plain protocol and on obfuscated
versions, showing how inference quality collapses — the quantitative
counterpart of the paper's expert assessment.  A second sweep runs the same
experiment for every protocol in the registry over registry-driven
request/response workloads.

Run with:  python examples/resilience_against_pre.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.experiments import run_resilience
from repro.protocols import registry


def main() -> None:
    report = run_resilience(passes_levels=(1, 2), seed=0, repeats=3,
                            function_codes=(1, 3, 6, 16))

    rows = []
    for label, score in [("plain", report.plain),
                         ("1 obfuscation/node", report.obfuscated[1]),
                         ("2 obfuscations/node", report.obfuscated[2])]:
        rows.append([
            label,
            f"{score.boundary_f1:.3f}",
            f"{score.boundary_precision:.3f}",
            f"{score.boundary_recall:.3f}",
            f"{score.classification_purity:.2f}",
            f"{score.cluster_count} (true: {score.true_type_count})",
        ])
    print(render_table(
        ["Protocol version", "Boundary F1", "Precision", "Recall", "Purity", "Clusters"],
        rows,
        title="Trace-based inference quality on captured Modbus traffic",
    ))
    print()
    print(f"relative F1 degradation at 1 obf/node: {report.degradation(1):.0%}")
    print(f"relative F1 degradation at 2 obf/node: {report.degradation(2):.0%}")
    print()
    print("Interpretation: on the plain protocol the analyst recovers most field")
    print("boundaries and groups messages into about one class per message type;")
    print("on the obfuscated protocol the classification explodes into one class per")
    print("message (random split shares and padding make same-type messages diverge)")
    print("and the recovered boundaries are mostly wrong.")

    print()
    rows = []
    for key in registry.available():
        report = run_resilience(protocol=key, passes_levels=(1,), seed=0,
                                trace_size=32)
        rows.append([
            registry.get(key).label,
            f"{report.plain.boundary_f1:.3f}",
            f"{report.obfuscated[1].boundary_f1:.3f}",
            f"{report.degradation(1):+.0%}",
        ])
    print(render_table(
        ["Protocol", "Plain F1", "1 obf/node F1", "F1 degradation"],
        rows,
        title="The same attack across every registered protocol (32-message traces)",
    ))


if __name__ == "__main__":
    main()
