"""Obfuscation plans as shared keys: persist, ship, rotate mid-session, score.

The full key lifecycle of the paper's threat model in one script:

1. an obfuscation plan is drawn per key and **persisted to plan files** —
   the serialized shared secret (``repro.spec.planfile``);
2. both endpoints **load the same files** into their plan books and derive
   bit-identical dialects (same key ids, same wire formats) — no shared RNG;
3. a live session exchanges traffic and **rotates keys mid-session** via
   rotation control records: only the key id crosses the wire;
4. the capture — every record tagged with the plan fingerprint in force —
   is handed to the **PRE engine**, which now faces traffic that changes
   format mid-trace.

Run with:  python examples/plan_rotation_session.py [protocol] [rotations]
(default: modbus, 3 rotations)
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
from pathlib import Path
from random import Random

from repro.analysis import render_table
from repro.net import (
    Capture,
    ObfuscatedClient,
    ObfuscatedServer,
    PlanBook,
    SessionKey,
    connect_memory,
)
from repro.pre import infer_formats
from repro.pre.evaluate import score_inference
from repro.protocols import mqtt, registry
from repro.spec import load_plan, save_plan
from repro.transforms.engine import Obfuscator

PASSES = 1            # obfuscations per node of each key's dialect
REQUESTS_PER_KEY = 6  # messages exchanged before each rotation


def persist_key_plans(setup, seed: int, directory: Path) -> list[Path]:
    """Draw one dialect and save its per-direction plans as files."""
    paths = []
    request_plan = Obfuscator(seed=seed).obfuscate(
        setup.reference_graph("request"), PASSES).plan()
    paths.append(save_plan(request_plan, directory / f"key-{seed}-request.json"))
    if setup.response_graph_factory is not None:
        response_plan = Obfuscator(seed=seed + 1).obfuscate(
            setup.reference_graph("response"), PASSES).plan()
        paths.append(save_plan(response_plan, directory / f"key-{seed}-response.json"))
    return paths


def load_key(setup, paths: list[Path]) -> SessionKey:
    """What each endpoint does with the shipped files: replay into a key."""
    request_plan = load_plan(paths[0])
    response_plan = load_plan(paths[1]) if len(paths) > 1 else None
    return SessionKey.from_plans(setup, request_plan, response_plan)


def client_message(setup, rng: Random):
    """One request that elicits a reply (CONNECT has no modelled CONNACK)."""
    if setup.key == "mqtt":
        return mqtt.random_packet(rng, packet_type=rng.choice(
            (mqtt.PUBLISH_QOS0, mqtt.PUBLISH_QOS1, mqtt.PINGREQ)))
    return setup.message_generator(rng)


async def rotated_session(setup, keys: list[SessionKey]) -> Capture:
    """One session rotating through every key, capture tagged per record."""
    capture = Capture()
    server = ObfuscatedServer(setup, plan_book=PlanBook(keys), capture=capture)
    client = connect_memory(
        ObfuscatedClient(setup, plan_book=PlanBook(keys), capture=capture),
        server,
    )
    rng = Random(4242)
    for index, key in enumerate(keys):
        if index:
            await client.rotate(key.key_id)
        for _ in range(REQUESTS_PER_KEY):
            await client.request(client_message(setup, rng))
    await client.close()
    stats = server.completed[0]
    assert stats.error is None, stats.error
    print(f"session complete: {stats.received} requests answered across "
          f"{stats.rotations} rotation(s), zero errors")
    return capture


def main() -> None:
    protocol = sys.argv[1] if len(sys.argv) > 1 else "modbus"
    rotations = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    setup = registry.get(protocol)

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        # 1. persist one plan file set per key (the serialized shared secrets)
        shipped = [persist_key_plans(setup, seed, directory)
                   for seed in range(10, 10 + (rotations + 1) * 10, 10)]
        total_files = sum(len(paths) for paths in shipped)
        print(f"persisted {total_files} plan file(s) for "
              f"{len(shipped)} key(s) under {directory}")

        # 2. both endpoints rebuild identical keys from the shipped files
        keys = [load_key(setup, paths) for paths in shipped]
        print("key ids:", ", ".join(key.key_id for key in keys))

        # 3. live session with mid-session rotations
        capture = asyncio.run(rotated_session(setup, keys))

    # 4. the analyst's view: one trace whose format changes mid-stream
    dialects = [fpr for fpr in dict.fromkeys(capture.plan_fingerprints())]
    score = score_inference(infer_formats(capture), capture.field_spans(),
                            capture.types())
    print(render_table(
        ["Captured msgs", "Dialects in trace", "Boundary F1", "Recall",
         "Clusters"],
        [[
            f"{len(capture)} ({capture.byte_count()} B)",
            f"{len(dialects)}",
            f"{score.boundary_f1:.3f}",
            f"{score.boundary_recall:.3f}",
            f"{score.cluster_count} (true: {score.true_type_count})",
        ]],
        title=f"PRE against a rotated {setup.label} capture "
              f"({rotations} mid-session rotation(s))",
    ))
    print()
    print("Interpretation: every rotation splits the trace into another")
    print("dialect of the same protocol; the analyst must now explain")
    print("several wire formats with one model, on top of the per-dialect")
    print("obfuscation — rotation is a second, orthogonal hardening axis.")


if __name__ == "__main__":
    main()
