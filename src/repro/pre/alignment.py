"""Needleman–Wunsch sequence alignment over byte strings.

Trace-based protocol reverse engineering tools (PI project, Netzob, ...) rely
on global sequence alignment to line up messages of the same type before
inferring field boundaries.  This module provides the classic
Needleman–Wunsch algorithm with affine-free (linear) gap penalties, plus the
similarity score derived from an alignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

#: Alignment gap marker.
GAP: Optional[int] = None

MATCH_SCORE = 2
MISMATCH_SCORE = -1
GAP_PENALTY = -2


@dataclass(frozen=True)
class Alignment:
    """Result of aligning two byte sequences."""

    first: tuple[Optional[int], ...]
    second: tuple[Optional[int], ...]
    score: int

    def __post_init__(self) -> None:
        if len(self.first) != len(self.second):
            raise ValueError("aligned sequences must have the same length")

    @property
    def length(self) -> int:
        return len(self.first)

    def matches(self) -> int:
        """Number of positions where both sequences carry the same byte."""
        return sum(
            1 for a, b in zip(self.first, self.second) if a is not None and a == b
        )

    def identity(self) -> float:
        """Fraction of aligned positions that match (0 when the alignment is empty)."""
        return self.matches() / self.length if self.length else 0.0


def needleman_wunsch(first: bytes, second: bytes, *,
                     match: int = MATCH_SCORE,
                     mismatch: int = MISMATCH_SCORE,
                     gap: int = GAP_PENALTY) -> Alignment:
    """Globally align two byte strings with the Needleman–Wunsch algorithm."""
    rows, cols = len(first), len(second)
    # Dynamic-programming score matrix, stored row by row.
    scores = [[0] * (cols + 1) for _ in range(rows + 1)]
    for row in range(1, rows + 1):
        scores[row][0] = row * gap
    for col in range(1, cols + 1):
        scores[0][col] = col * gap
    for row in range(1, rows + 1):
        byte_a = first[row - 1]
        score_row = scores[row]
        prev_row = scores[row - 1]
        for col in range(1, cols + 1):
            diagonal = prev_row[col - 1] + (match if byte_a == second[col - 1] else mismatch)
            upper = prev_row[col] + gap
            left = score_row[col - 1] + gap
            score_row[col] = max(diagonal, upper, left)

    aligned_first: list[Optional[int]] = []
    aligned_second: list[Optional[int]] = []
    row, col = rows, cols
    while row > 0 or col > 0:
        if row > 0 and col > 0:
            step = match if first[row - 1] == second[col - 1] else mismatch
            if scores[row][col] == scores[row - 1][col - 1] + step:
                aligned_first.append(first[row - 1])
                aligned_second.append(second[col - 1])
                row -= 1
                col -= 1
                continue
        if row > 0 and scores[row][col] == scores[row - 1][col] + gap:
            aligned_first.append(first[row - 1])
            aligned_second.append(GAP)
            row -= 1
            continue
        aligned_first.append(GAP)
        aligned_second.append(second[col - 1])
        col -= 1
    aligned_first.reverse()
    aligned_second.reverse()
    return Alignment(
        first=tuple(aligned_first),
        second=tuple(aligned_second),
        score=scores[rows][cols],
    )


def alignment_offsets(alignment: Alignment) -> list[tuple[Optional[int], Optional[int]]]:
    """Map aligned columns to (offset in first, offset in second) pairs."""
    offsets: list[tuple[Optional[int], Optional[int]]] = []
    position_first = position_second = 0
    for byte_a, byte_b in zip(alignment.first, alignment.second):
        offset_a = position_first if byte_a is not None else None
        offset_b = position_second if byte_b is not None else None
        offsets.append((offset_a, offset_b))
        if byte_a is not None:
            position_first += 1
        if byte_b is not None:
            position_second += 1
    return offsets


def similarity(first: bytes, second: bytes) -> float:
    """Alignment-based similarity in [0, 1] (identity of the global alignment)."""
    if not first and not second:
        return 1.0
    return needleman_wunsch(first, second).identity()


def pairwise_similarity(messages: Sequence[bytes]) -> list[list[float]]:
    """Symmetric similarity matrix of a list of messages."""
    count = len(messages)
    matrix = [[1.0] * count for _ in range(count)]
    for row in range(count):
        for col in range(row + 1, count):
            value = similarity(messages[row], messages[col])
            matrix[row][col] = value
            matrix[col][row] = value
    return matrix
