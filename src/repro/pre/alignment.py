"""Needleman–Wunsch sequence alignment over byte strings.

Trace-based protocol reverse engineering tools (PI project, Netzob, ...) rely
on global sequence alignment to line up messages of the same type before
inferring field boundaries.  This module provides the classic
Needleman–Wunsch algorithm with affine-free (linear) gap penalties, plus the
similarity score derived from an alignment.

Two execution models coexist:

* :func:`needleman_wunsch` — the full dynamic-programming matrix with
  traceback, producing an :class:`Alignment`.  Field inference needs the
  column-by-column alignment, so this path is kept byte-for-byte unchanged.
* the score-only engine behind :func:`similarity` — a banded two-row DP
  (:func:`banded_nw_score`, band width derived from the length difference of
  the two messages) that never materializes the matrix or the traceback, plus
  fast paths for identical and empty messages and a dedup/memo/parallel
  :func:`pairwise_similarity`.  Every fast path is *exact*: ``similarity``
  returns bit-identical values to the traceback-based implementation for all
  inputs (the banded pass is only trusted when a provable certificate holds,
  see :func:`_certificate_floor`; otherwise the full-width pass runs).
"""

from __future__ import annotations

import multiprocessing
import os
from math import log as _LOG
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Optional, Sequence

try:  # optional accelerator: vectorized score matrix for long message pairs
    import numpy as _np
except Exception:  # pragma: no cover - numpy is absent on minimal installs
    _np = None

#: Alignment gap marker.
GAP: Optional[int] = None

MATCH_SCORE = 2
MISMATCH_SCORE = -1
GAP_PENALTY = -2

#: Sentinel for dynamic-programming cells outside the band.
_NEG_INF = -(1 << 60)
#: Initial band slack (half-width beyond the length difference); widened
#: geometrically (x4) while the band stays under half the shorter message,
#: then the full-width pass runs.
_INITIAL_SLACK = 8
#: Minimum matrix size (cells) before the vectorized full-width pass is used.
_NUMPY_MIN_CELLS = 4096
#: Minimum number of equal-shape pairs before the batched vectorized DP runs.
_BATCH_MIN_PAIRS = 4
#: Soft cap on cells per batched DP chunk (bounds the working-set memory).
_BATCH_MAX_CELLS = 4_000_000
#: Cap on pairs per batched DP chunk (bounds padding waste on mixed shapes).
_BATCH_MAX_PAIRS = 512
#: Upper bound on the ordered-pair similarity memo (entries).
_PAIR_CACHE_LIMIT = 1 << 15


@dataclass(frozen=True)
class Alignment:
    """Result of aligning two byte sequences."""

    first: tuple[Optional[int], ...]
    second: tuple[Optional[int], ...]
    score: int

    def __post_init__(self) -> None:
        if len(self.first) != len(self.second):
            raise ValueError("aligned sequences must have the same length")

    @property
    def length(self) -> int:
        return len(self.first)

    def matches(self) -> int:
        """Number of positions where both sequences carry the same byte."""
        return sum(
            1 for a, b in zip(self.first, self.second) if a is not None and a == b
        )

    def identity(self) -> float:
        """Fraction of aligned positions that match (0 when the alignment is empty)."""
        return self.matches() / self.length if self.length else 0.0


def needleman_wunsch(first: bytes, second: bytes, *,
                     match: int = MATCH_SCORE,
                     mismatch: int = MISMATCH_SCORE,
                     gap: int = GAP_PENALTY) -> Alignment:
    """Globally align two byte strings with the Needleman–Wunsch algorithm."""
    rows, cols = len(first), len(second)
    # Dynamic-programming score matrix, stored row by row.
    scores = [[0] * (cols + 1) for _ in range(rows + 1)]
    for row in range(1, rows + 1):
        scores[row][0] = row * gap
    for col in range(1, cols + 1):
        scores[0][col] = col * gap
    for row in range(1, rows + 1):
        byte_a = first[row - 1]
        score_row = scores[row]
        prev_row = scores[row - 1]
        for col in range(1, cols + 1):
            diagonal = prev_row[col - 1] + (match if byte_a == second[col - 1] else mismatch)
            upper = prev_row[col] + gap
            left = score_row[col - 1] + gap
            score_row[col] = max(diagonal, upper, left)

    aligned_first: list[Optional[int]] = []
    aligned_second: list[Optional[int]] = []
    row, col = rows, cols
    while row > 0 or col > 0:
        if row > 0 and col > 0:
            step = match if first[row - 1] == second[col - 1] else mismatch
            if scores[row][col] == scores[row - 1][col - 1] + step:
                aligned_first.append(first[row - 1])
                aligned_second.append(second[col - 1])
                row -= 1
                col -= 1
                continue
        if row > 0 and scores[row][col] == scores[row - 1][col] + gap:
            aligned_first.append(first[row - 1])
            aligned_second.append(GAP)
            row -= 1
            continue
        aligned_first.append(GAP)
        aligned_second.append(second[col - 1])
        col -= 1
    aligned_first.reverse()
    aligned_second.reverse()
    return Alignment(
        first=tuple(aligned_first),
        second=tuple(aligned_second),
        score=scores[rows][cols],
    )


def alignment_offsets(alignment: Alignment) -> list[tuple[Optional[int], Optional[int]]]:
    """Map aligned columns to (offset in first, offset in second) pairs."""
    offsets: list[tuple[Optional[int], Optional[int]]] = []
    position_first = position_second = 0
    for byte_a, byte_b in zip(alignment.first, alignment.second):
        offset_a = position_first if byte_a is not None else None
        offset_b = position_second if byte_b is not None else None
        offsets.append((offset_a, offset_b))
        if byte_a is not None:
            position_first += 1
        if byte_b is not None:
            position_second += 1
    return offsets


# ---------------------------------------------------------------------------
# score-only engine
# ---------------------------------------------------------------------------


def _banded_pass(first: bytes, second: bytes, lo: int, hi: int,
                 match: int, mismatch: int, gap: int) -> tuple[int, int]:
    """Two-row DP over the band ``lo <= col - row <= hi``.

    Returns ``(score, aligned_pairs)`` of the best in-band path, where the
    path is selected with exactly the traceback's tie-break (diagonal, then
    up, then left).  With ``lo <= -rows`` and ``hi >= cols`` this is the
    full-width score-only Needleman–Wunsch.
    """
    rows, cols = len(first), len(second)
    size = cols + 1
    score_prev = [_NEG_INF] * size
    pairs_prev = [0] * size
    score_cur = [_NEG_INF] * size
    pairs_cur = [0] * size

    top = min(cols, hi)
    for col in range(top + 1):
        score_prev[col] = col * gap
    if top + 1 <= cols:
        score_prev[top + 1] = _NEG_INF

    for row in range(1, rows + 1):
        jlo = max(0, row + lo)
        jhi = min(cols, row + hi)
        byte_a = first[row - 1]
        if jlo == 0:
            score_cur[0] = row * gap
            pairs_cur[0] = 0
            left_score = score_cur[0]
            left_pairs = 0
            start = 1
        else:
            left_score = _NEG_INF
            left_pairs = 0
            start = jlo
        # Substitution scores of this row's band, computed in one C-level pass.
        subs = [match if byte == byte_a else mismatch
                for byte in second[start - 1:jhi]]
        for offset in range(jhi - start + 1):
            col = start + offset
            diagonal = score_prev[col - 1] + subs[offset]
            upper = score_prev[col] + gap
            left = left_score + gap
            best = diagonal if diagonal >= upper else upper
            if left > best:
                best = left
            # Predecessor choice mirrors the traceback's tie-break exactly.
            if best == diagonal:
                best_pairs = pairs_prev[col - 1] + 1
            elif best == upper:
                best_pairs = pairs_prev[col]
            else:
                best_pairs = left_pairs
            score_cur[col] = best
            pairs_cur[col] = best_pairs
            left_score = best
            left_pairs = best_pairs
        # Seal the band edges so the next row cannot read stale cells.
        if jlo > 0:
            score_cur[jlo - 1] = _NEG_INF
        if jhi < cols:
            score_cur[jhi + 1] = _NEG_INF
        score_prev, score_cur = score_cur, score_prev
        pairs_prev, pairs_cur = pairs_cur, pairs_prev
    return score_prev[cols], pairs_prev[cols]


def _identical_fast_path_valid(match: int, mismatch: int, gap: int) -> bool:
    """Is the all-diagonal alignment provably optimal for identical inputs?

    Any alignment of two copies of an L-byte string scores at most
    ``match*P + gap*(2L - 2P)`` over its P aligned pairs (requires
    ``mismatch <= match``), and the all-diagonal path (P = L) dominates that
    bound exactly when ``match >= 2*gap``.  Exotic scorings that violate
    either condition must run the DP.
    """
    return match >= 2 * gap and mismatch <= match


def nw_score(first: bytes, second: bytes, *,
             match: int = MATCH_SCORE,
             mismatch: int = MISMATCH_SCORE,
             gap: int = GAP_PENALTY) -> int:
    """Exact Needleman–Wunsch score without matrix or traceback (two rows)."""
    first, second = bytes(first), bytes(second)
    if first == second and _identical_fast_path_valid(match, mismatch, gap):
        return match * len(first)
    if not first or not second:
        # Every alignment of an empty string is the forced all-gap one.
        return gap * (len(first) + len(second))
    score, _ = _banded_pass(first, second, -len(first), len(second),
                            match, mismatch, gap)
    return score


def banded_nw_score(first: bytes, second: bytes, *,
                    slack: int = _INITIAL_SLACK,
                    match: int = MATCH_SCORE,
                    mismatch: int = MISMATCH_SCORE,
                    gap: int = GAP_PENALTY) -> int:
    """Score of the best alignment whose path stays within the band.

    The band is derived from the length difference of the messages: paths may
    deviate at most ``slack`` cells beyond the diagonal corridor connecting
    the two corners.  The result is always the score of a *valid* alignment
    (a lower bound of :func:`nw_score`), and equals it whenever the optimal
    path fits in the band — which :func:`similarity` certifies before
    trusting a banded result.
    """
    first, second = bytes(first), bytes(second)
    if first == second and _identical_fast_path_valid(match, mismatch, gap):
        return match * len(first)
    if not first or not second:
        # Every alignment of an empty string is the forced all-gap one.
        return gap * (len(first) + len(second))
    delta = len(second) - len(first)
    score, _ = _banded_pass(first, second, min(0, delta) - slack,
                            max(0, delta) + slack, match, mismatch, gap)
    return score


def _certificate_floor(shorter: int, total: int, slack: int) -> int:
    """Best score any path *leaving* the band could still reach.

    A path that deviates ``slack + 1`` cells beyond the corridor spends at
    least ``slack + 1`` extra gap pairs, capping its aligned pairs at
    ``shorter - slack - 1``.  With score written as
    ``alpha*matches + beta*pairs + gap*total`` (``alpha = match - mismatch``,
    ``beta = mismatch - 2*gap``, both non-negative for the module scoring),
    its score is therefore at most the value returned here.  A banded score
    strictly above this floor proves that every optimal path — including the
    one the traceback would walk — stays inside the band.
    """
    alpha = MATCH_SCORE - MISMATCH_SCORE
    beta = MISMATCH_SCORE - 2 * GAP_PENALTY
    return (alpha + beta) * (shorter - slack - 1) + GAP_PENALTY * total


def _identity_from_stats(score: int, pairs: int, total: int) -> float:
    """Identity of the traceback path reconstructed from score and pair count.

    With the module scoring, ``score = alpha*M + beta*P + gap*total`` pins the
    match count ``M`` once the aligned-pair count ``P`` is known; the aligned
    length is ``total - P``.
    """
    alpha = MATCH_SCORE - MISMATCH_SCORE
    beta = MISMATCH_SCORE - 2 * GAP_PENALTY
    matches = (score - beta * pairs - GAP_PENALTY * total) // alpha
    return matches / (total - pairs)


def _vectorized_identity(first: bytes, second: bytes) -> float:
    """Full-matrix identity for long pairs: numpy row recurrence + traceback.

    The score matrix rows satisfy ``row[j] = max(G[j], row[j-1] + gap)`` where
    ``G`` carries the diagonal/up candidates; the left-gap chain is a running
    maximum of ``G[j] - j*gap``, so each row is a handful of vector
    operations.  The traceback then walks the exact matrix with the exact
    tie-break of :func:`needleman_wunsch`, so the identity is bit-identical.
    """
    match, mismatch, gap = MATCH_SCORE, MISMATCH_SCORE, GAP_PENALTY
    rows, cols = len(first), len(second)
    a = _np.frombuffer(first, dtype=_np.uint8)
    b = _np.frombuffer(second, dtype=_np.uint8)
    col_gaps = gap * _np.arange(cols + 1, dtype=_np.int64)
    matrix = _np.empty((rows + 1, cols + 1), dtype=_np.int64)
    matrix[0] = col_gaps
    candidates = _np.empty(cols + 1, dtype=_np.int64)
    for row in range(1, rows + 1):
        prev = matrix[row - 1]
        subs = _np.where(b == a[row - 1], match, mismatch)
        candidates[0] = row * gap
        _np.maximum(prev[:-1] + subs, prev[1:] + gap, out=candidates[1:])
        shifted = candidates - col_gaps
        _np.maximum.accumulate(shifted, out=shifted)
        _np.add(shifted, col_gaps, out=matrix[row])
    # The traceback only visits O(rows + cols) cells, so index the matrix
    # directly rather than boxing every cell with tolist().
    row, col = rows, cols
    matches = 0
    length = 0
    while row > 0 or col > 0:
        if row > 0 and col > 0:
            equal = first[row - 1] == second[col - 1]
            step = match if equal else mismatch
            if matrix[row, col] == matrix[row - 1, col - 1] + step:
                if equal:
                    matches += 1
                length += 1
                row -= 1
                col -= 1
                continue
        if row > 0 and matrix[row, col] == matrix[row - 1, col] + gap:
            length += 1
            row -= 1
            continue
        length += 1
        col -= 1
    return matches / length


def _batched_identity(firsts: Sequence[bytes], seconds: Sequence[bytes]
                      ) -> list[float]:
    """Traceback identities of many message pairs in one vectorized DP.

    The pairs may have any (non-zero) lengths: both sides are padded to the
    batch maxima.  The DP tracks, per pair and per column, the score *and*
    the aligned-pair count of the path the traceback would walk: the
    diagonal/up choice is a mask (diagonal wins ties, as in the traceback),
    and the left-gap chain is resolved with a running maximum — a cell takes
    ``left`` only when the left value strictly beats the diagonal/up
    candidate, again exactly the traceback's precedence.  Padding cannot leak
    into a pair's result: a DP column only ever depends on columns to its
    left, so cells up to ``len(second)`` never see padded columns, and each
    pair's result is captured at its own corner ``(len(first), len(second))``
    before padded rows are computed.  Identities are therefore bit-identical
    to :func:`needleman_wunsch` + ``identity()``.
    """
    match, mismatch, gap = MATCH_SCORE, MISMATCH_SCORE, GAP_PENALTY
    batch = len(firsts)
    row_lengths = [len(first) for first in firsts]
    col_lengths = [len(second) for second in seconds]
    rows = max(row_lengths)
    cols = max(col_lengths)
    finishing: dict[int, list[int]] = {}
    for index, length in enumerate(row_lengths):
        finishing.setdefault(length, []).append(index)
    a = _np.frombuffer(
        b"".join(first.ljust(rows, b"\0") for first in firsts), dtype=_np.uint8
    ).reshape(batch, rows)
    b = _np.frombuffer(
        b"".join(second.ljust(cols, b"\0") for second in seconds), dtype=_np.uint8
    ).reshape(batch, cols)
    # int32 throughout: scores are bounded by ±(match - gap)·(rows + cols),
    # far inside the int32 range, and the narrower cells halve memory traffic.
    col_ends = _np.asarray(col_lengths, dtype=_np.intp)
    col_gaps = gap * _np.arange(cols + 1, dtype=_np.int32)
    columns = _np.arange(cols + 1)
    row_index = _np.arange(batch)[:, None]
    score_prev = _np.tile(col_gaps, (batch, 1))
    pairs_prev = _np.zeros((batch, cols + 1), dtype=_np.int32)
    candidates = _np.empty((batch, cols + 1), dtype=_np.int32)
    cand_pairs = _np.empty((batch, cols + 1), dtype=_np.int32)
    records = _np.empty((batch, cols + 1), dtype=bool)
    final_scores = _np.empty(batch, dtype=_np.int64)
    final_pairs = _np.empty(batch, dtype=_np.int64)
    for row in range(1, rows + 1):
        subs = _np.where(b == a[:, row - 1:row], match, mismatch)
        diagonal = score_prev[:, :-1] + subs
        upper = score_prev[:, 1:] + gap
        candidates[:, 0] = row * gap
        _np.maximum(diagonal, upper, out=candidates[:, 1:])
        cand_pairs[:, 0] = 0
        cand_pairs[:, 1:] = _np.where(diagonal >= upper,
                                      pairs_prev[:, :-1] + 1, pairs_prev[:, 1:])
        adjusted = candidates - col_gaps
        running = _np.maximum.accumulate(adjusted, axis=1)
        # A column is a "record" when its diagonal/up candidate is at least as
        # good as the left chain reaching it — the traceback prefers it then.
        records[:, 0] = True
        _np.greater_equal(adjusted[:, 1:], running[:, :-1], out=records[:, 1:])
        origins = _np.maximum.accumulate(_np.where(records, columns, -1), axis=1)
        score_prev = running + col_gaps
        pairs_prev = cand_pairs[row_index, origins]
        done = finishing.get(row)
        if done is not None:
            ends = col_ends[done]
            final_scores[done] = score_prev[done, ends]
            final_pairs[done] = pairs_prev[done, ends]
    alpha = MATCH_SCORE - MISMATCH_SCORE
    beta = MISMATCH_SCORE - 2 * GAP_PENALTY
    totals = _np.asarray(row_lengths, dtype=_np.int64) + col_ends
    matches = (final_scores - beta * final_pairs - gap * totals) // alpha
    return (matches / (totals - final_pairs)).tolist()


def _alignment_identity(first: bytes, second: bytes) -> float:
    """Exact traceback identity via banded passes with a widening band."""
    rows, cols = len(first), len(second)
    shorter = min(rows, cols)
    total = rows + cols
    delta = cols - rows
    lo, hi = min(0, delta), max(0, delta)
    slack = _INITIAL_SLACK
    while hi - lo + 2 * slack + 1 <= shorter // 2:
        score, pairs = _banded_pass(first, second, lo - slack, hi + slack,
                                    MATCH_SCORE, MISMATCH_SCORE, GAP_PENALTY)
        if score > _certificate_floor(shorter, total, slack):
            return _identity_from_stats(score, pairs, total)
        slack *= 4
    if _np is not None and rows * cols >= _NUMPY_MIN_CELLS:
        return _vectorized_identity(first, second)
    score, pairs = _banded_pass(first, second, -rows, cols,
                                MATCH_SCORE, MISMATCH_SCORE, GAP_PENALTY)
    return _identity_from_stats(score, pairs, total)


def similarity(first: bytes, second: bytes) -> float:
    """Alignment-based similarity in [0, 1] (identity of the global alignment)."""
    first, second = bytes(first), bytes(second)
    if first == second:
        # Identical messages (including both-empty) align all-diagonal.
        return 1.0
    if not first or not second:
        # Empty versus non-empty aligns as all gaps: zero matches.
        return 0.0
    return _alignment_identity(first, second)


# ---------------------------------------------------------------------------
# similarity matrix: dedup, memoization, optional process-pool fan-out
# ---------------------------------------------------------------------------

#: Memo of similarity values keyed by *ordered* content pair.  The order
#: matters: the traceback tie-break is not symmetric, so ``similarity(a, b)``
#: and ``similarity(b, a)`` may legitimately differ.
_PAIR_CACHE: dict[tuple[bytes, bytes], float] = {}


def clear_similarity_cache() -> None:
    """Drop the memoized pair similarities (mainly for tests and benchmarks)."""
    _PAIR_CACHE.clear()


def _cached_similarity(first: bytes, second: bytes) -> float:
    key = (first, second)
    value = _PAIR_CACHE.get(key)
    if value is None:
        if len(_PAIR_CACHE) >= _PAIR_CACHE_LIMIT:
            _PAIR_CACHE.clear()
        value = similarity(first, second)
        _PAIR_CACHE[key] = value
    return value


def _similarity_batch(pairs: Sequence[tuple[bytes, bytes]]) -> list[float]:
    """Worker task: similarity of a chunk of ordered content pairs.

    Routes through the same bucketed/vectorized dispatcher as the sequential
    path, so a process-pool worker retains the batched-DP speedup within its
    chunk instead of degrading to pair-at-a-time alignment.
    """
    return _pair_values(pairs)


def _parallel_pair_values(pending: Sequence[tuple[bytes, bytes]],
                          max_workers: int | None) -> list[float] | None:
    """Fan ordered content pairs over a process pool; ``None`` on fallback.

    Mirrors :meth:`repro.experiments.ExperimentRunner._run_level_parallel`:
    fork context when available, silent sequential fallback when no pool can
    be started or the pool breaks.  ``similarity`` is a pure function of the
    pair, so the parallel matrix is bit-identical to the sequential one.
    """
    workers = max_workers
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, len(pending)))
    context = None
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    try:
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    except (OSError, ValueError):
        return None
    chunk = max(1, (len(pending) + workers * 4 - 1) // (workers * 4))
    try:
        with pool:
            futures = [
                pool.submit(_similarity_batch, pending[start:start + chunk])
                for start in range(0, len(pending), chunk)
            ]
            return [value for future in futures for value in future.result()]
    except BrokenProcessPool:
        return None


def _shape_bucket(length: int) -> int:
    """Geometric bucket index of a message length (ratio ~1.3)."""
    return int(_LOG(length) * 3.8124) if length > 1 else 0


def _pair_values(pairs: Sequence[tuple[bytes, bytes]]) -> list[float]:
    """Similarity of ordered content pairs, batching similar shapes.

    When numpy is available, pairs are grouped into geometric ~1.3x buckets
    of their two lengths — pairs in one group pad to at most ~1.3x their own
    sizes in the batched vectorized DP, which bounds the padded waste while
    merging the many near-identical shapes of a real trace.  Pairs with an
    empty side, undersized groups, or numpy-less runs use the per-pair
    engine.  Both produce the traceback identity exactly.
    """
    results = [0.0] * len(pairs)
    groups: dict[tuple[int, int], list[int]] = {}
    for position, (first, second) in enumerate(pairs):
        if _np is not None and first and second:
            key = (_shape_bucket(len(second)), _shape_bucket(len(first)))
            groups.setdefault(key, []).append(position)
        else:
            results[position] = _cached_similarity(first, second)
    for positions in groups.values():
        if len(positions) < _BATCH_MIN_PAIRS:
            for position in positions:
                first, second = pairs[position]
                results[position] = _cached_similarity(first, second)
            continue
        positions.sort(key=lambda position: (-len(pairs[position][1]),
                                             -len(pairs[position][0])))
        start = 0
        while start < len(positions):
            cells = len(pairs[positions[start]][1]) + 1
            chunk = min(_BATCH_MAX_PAIRS, max(1, _BATCH_MAX_CELLS // cells))
            part = positions[start:start + chunk]
            firsts = [pairs[position][0] for position in part]
            seconds = [pairs[position][1] for position in part]
            for position, value in zip(part, _batched_identity(firsts, seconds)):
                results[position] = value
            start += len(part)
    return results


def pairwise_similarity(messages: Sequence[bytes], *, parallel: bool = False,
                        max_workers: int | None = None) -> list[list[float]]:
    """Symmetric similarity matrix of a list of messages.

    Identical messages are deduplicated before any alignment runs, distinct
    ordered content pairs are aligned exactly once (and memoized across
    calls), and with ``parallel=True`` the remaining pairs of the upper
    triangle are fanned over a fork-based process pool — falling back to
    sequential execution when no pool is available.  All three mechanisms are
    exact: the matrix is bit-identical to the naive pair-by-pair scan.
    """
    count = len(messages)
    matrix = [[1.0] * count for _ in range(count)]
    if count < 2:
        return matrix
    contents = [bytes(message) for message in messages]
    first_seen: dict[bytes, int] = {}
    unique: list[bytes] = []
    uid = []
    for content in contents:
        index = first_seen.setdefault(content, len(unique))
        if index == len(unique):
            unique.append(content)
        uid.append(index)

    # Cells grouped by ordered unique pair; identical-content cells keep the
    # 1.0 the matrix is initialized with (== similarity of equal messages).
    pair_cells: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for row in range(count):
        uid_row = uid[row]
        for col in range(row + 1, count):
            uid_col = uid[col]
            if uid_row == uid_col:
                continue
            pair_cells.setdefault((uid_row, uid_col), []).append((row, col))

    values: dict[tuple[int, int], float] = {}
    pending: list[tuple[int, int]] = []
    for key in pair_cells:
        cached = _PAIR_CACHE.get((unique[key[0]], unique[key[1]]))
        if cached is None:
            pending.append(key)
        else:
            values[key] = cached

    computed: list[float] | None = None
    if parallel and pending:
        pairs = [(unique[a], unique[b]) for a, b in pending]
        computed = _parallel_pair_values(pairs, max_workers)
    if computed is None:
        computed = _pair_values([(unique[a], unique[b]) for a, b in pending])
    for (a, b), value in zip(pending, computed):
        if len(_PAIR_CACHE) >= _PAIR_CACHE_LIMIT:
            _PAIR_CACHE.clear()
        _PAIR_CACHE[(unique[a], unique[b])] = value
        values[(a, b)] = value

    for key, cells in pair_cells.items():
        value = values[key]
        for row, col in cells:
            matrix[row][col] = value
            matrix[col][row] = value
    return matrix
