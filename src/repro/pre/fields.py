"""Field delimitation from aligned message clusters.

Given a cluster of messages presumed to be of the same type, the field
inference aligns every message against a reference message, marks each
reference position as *constant* (same byte across the cluster) or *variable*,
and cuts fields where the constant/variable state changes or where a
well-known delimiter byte occurs — the classic heuristics the paper's
Section II-C lists as the "fields delimitation" challenge.

Each distinct non-reference message content is aligned against the reference
exactly once; the alignment is shared between the constancy scan and the
boundary projection (which used to realign the same pair), and messages whose
content equals the reference reuse the reference segmentation directly.  Both
shortcuts are exact: the inferred boundaries are identical to aligning every
member from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .alignment import Alignment, alignment_offsets, needleman_wunsch

#: Delimiter bytes commonly used by trace-based inference tools.
KNOWN_DELIMITERS = (0x20, 0x0D, 0x0A, 0x00, 0x3A)


@dataclass(frozen=True)
class InferredFields:
    """Field segmentation inferred for one cluster of messages."""

    reference_index: int
    reference_boundaries: tuple[int, ...]
    per_message_boundaries: dict[int, frozenset[int]]


def _constant_positions(reference: bytes, others: Sequence[bytes],
                        alignments: Mapping[bytes, Alignment] | None = None
                        ) -> list[bool]:
    """For each reference offset, is the byte identical across all aligned messages?"""
    constant = [True] * len(reference)
    for other in others:
        alignment = (
            alignments[other] if alignments is not None
            else needleman_wunsch(reference, other)
        )
        matched = [False] * len(reference)
        for (ref_offset, _), (byte_a, byte_b) in zip(
            alignment_offsets(alignment), zip(alignment.first, alignment.second)
        ):
            if ref_offset is not None and byte_a is not None and byte_a == byte_b:
                matched[ref_offset] = True
        for offset, is_matched in enumerate(matched):
            if not is_matched:
                constant[offset] = False
    return constant


def _segment(reference: bytes, constant: Sequence[bool]) -> list[int]:
    """Cut positions derived from constancy changes and known delimiters."""
    boundaries: set[int] = set()
    for offset in range(1, len(reference)):
        if constant[offset] != constant[offset - 1]:
            boundaries.add(offset)
        if reference[offset - 1] in KNOWN_DELIMITERS and reference[offset] not in KNOWN_DELIMITERS:
            boundaries.add(offset)
        if reference[offset] in KNOWN_DELIMITERS and reference[offset - 1] not in KNOWN_DELIMITERS:
            boundaries.add(offset)
    return sorted(boundaries)


def _project_boundaries(reference: bytes, target: bytes,
                        reference_boundaries: Sequence[int],
                        alignment: Alignment | None = None) -> frozenset[int]:
    """Map reference boundary offsets onto a target message via alignment."""
    if alignment is None:
        alignment = needleman_wunsch(reference, target)
    mapping: dict[int, int] = {}
    for ref_offset, target_offset in alignment_offsets(alignment):
        if ref_offset is not None and target_offset is not None:
            mapping[ref_offset] = target_offset
    projected: set[int] = set()
    for boundary in reference_boundaries:
        if boundary in mapping:
            projected.add(mapping[boundary])
    projected.discard(0)
    projected.discard(len(target))
    return frozenset(projected)


def infer_fields(messages: Sequence[bytes], members: Sequence[int]) -> InferredFields:
    """Infer the field segmentation of one cluster.

    ``members`` are the indices (into ``messages``) of the cluster's members;
    the longest member is used as the alignment reference.
    """
    if not members:
        return InferredFields(reference_index=-1, reference_boundaries=(),
                              per_message_boundaries={})
    reference_index = max(members, key=lambda index: len(messages[index]))
    reference = messages[reference_index]

    # One alignment per distinct non-reference content, in first-seen order.
    alignments: dict[bytes, Alignment] = {}
    distinct_others: list[bytes] = []
    for index in members:
        if index == reference_index:
            continue
        content = messages[index]
        if content == reference or content in alignments:
            continue
        alignments[content] = needleman_wunsch(reference, content)
        distinct_others.append(content)

    # Members identical to the reference match it everywhere and duplicates
    # repeat an already-seen constancy pattern, so distinct others suffice.
    constant = (
        _constant_positions(reference, distinct_others, alignments)
        if distinct_others else [True] * len(reference)
    )
    reference_boundaries = _segment(reference, constant)
    reference_set = frozenset(
        boundary for boundary in reference_boundaries
        if 0 < boundary < len(reference)
    )
    projections: dict[bytes, frozenset[int]] = {}
    per_message: dict[int, frozenset[int]] = {}
    for index in members:
        content = messages[index]
        if index == reference_index or content == reference:
            # Projecting onto an identical message maps every offset to
            # itself, which is exactly the reference segmentation.
            per_message[index] = reference_set
            continue
        projected = projections.get(content)
        if projected is None:
            projected = _project_boundaries(
                reference, content, reference_boundaries, alignments[content]
            )
            projections[content] = projected
        per_message[index] = projected
    return InferredFields(
        reference_index=reference_index,
        reference_boundaries=tuple(reference_boundaries),
        per_message_boundaries=per_message,
    )
