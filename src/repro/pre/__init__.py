"""Protocol reverse engineering (PRE) substrate used for the resilience assessment."""

from .alignment import (
    Alignment,
    alignment_offsets,
    banded_nw_score,
    clear_similarity_cache,
    needleman_wunsch,
    nw_score,
    pairwise_similarity,
    similarity,
)
from .clustering import Clustering, cluster_messages, purity
from .evaluate import BoundaryScore, InferenceScore, score_boundaries, score_inference
from .fields import InferredFields, infer_fields
from .inference import FormatInferencer, InferenceResult, infer_formats

__all__ = [
    "Alignment",
    "BoundaryScore",
    "Clustering",
    "FormatInferencer",
    "InferenceResult",
    "InferenceScore",
    "InferredFields",
    "alignment_offsets",
    "banded_nw_score",
    "clear_similarity_cache",
    "cluster_messages",
    "infer_fields",
    "infer_formats",
    "needleman_wunsch",
    "nw_score",
    "pairwise_similarity",
    "purity",
    "score_boundaries",
    "score_inference",
    "similarity",
]
