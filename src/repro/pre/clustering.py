"""Message classification by agglomerative clustering.

Protocol reverse engineering classifies captured messages into presumed
message types before inferring each type's format.  The classifier below is a
UPGMA-style average-linkage agglomerative clustering over the alignment-based
similarity matrix, stopped at a similarity threshold — the classic approach of
trace-based tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .alignment import pairwise_similarity


@dataclass(frozen=True)
class Clustering:
    """Result of classifying a list of messages."""

    clusters: tuple[tuple[int, ...], ...]

    @property
    def count(self) -> int:
        return len(self.clusters)

    def labels(self) -> list[int]:
        """Cluster index of every message, by message position."""
        size = sum(len(cluster) for cluster in self.clusters)
        labels = [0] * size
        for index, cluster in enumerate(self.clusters):
            for member in cluster:
                labels[member] = index
        return labels


def cluster_messages(messages: Sequence[bytes], *, threshold: float = 0.8,
                     similarity_matrix: Sequence[Sequence[float]] | None = None) -> Clustering:
    """Cluster messages whose average-linkage similarity exceeds ``threshold``."""
    count = len(messages)
    if count == 0:
        return Clustering(clusters=())
    matrix = (
        [list(row) for row in similarity_matrix]
        if similarity_matrix is not None
        else pairwise_similarity(messages)
    )
    clusters: list[list[int]] = [[index] for index in range(count)]

    def average_linkage(first: list[int], second: list[int]) -> float:
        total = 0.0
        for a in first:
            for b in second:
                total += matrix[a][b]
        return total / (len(first) * len(second))

    while len(clusters) > 1:
        best_pair: tuple[int, int] | None = None
        best_value = threshold
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                value = average_linkage(clusters[i], clusters[j])
                if value >= best_value:
                    best_value = value
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        clusters[i] = clusters[i] + clusters[j]
        del clusters[j]
    return Clustering(clusters=tuple(tuple(sorted(cluster)) for cluster in clusters))


def purity(clustering: Clustering, true_labels: Sequence[object]) -> float:
    """Clustering purity against ground-truth message types (1.0 is perfect)."""
    total = sum(len(cluster) for cluster in clustering.clusters)
    if total == 0:
        return 0.0
    correct = 0
    for cluster in clustering.clusters:
        counts: dict[object, int] = {}
        for member in cluster:
            label = true_labels[member]
            counts[label] = counts.get(label, 0) + 1
        correct += max(counts.values())
    return correct / total
