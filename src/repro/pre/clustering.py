"""Message classification by agglomerative clustering.

Protocol reverse engineering classifies captured messages into presumed
message types before inferring each type's format.  The classifier below is a
UPGMA-style average-linkage agglomerative clustering over the alignment-based
similarity matrix, stopped at a similarity threshold — the classic approach of
trace-based tools.

The agglomeration pops merges from a lazy max-heap instead of rescanning
every cluster pair per iteration (the naive rescan is O(N³) over the trace
and dominated large traces).  A live pair's average linkage never changes
between merges, so it is computed exactly once — when the younger of its two
clusters is created — and with the *same flat left-to-right summation* the
naive implementation uses, so every float compares bit-identically.  Merge
selection (global best pair at or above the threshold, ties resolved in
favor of the pair scanned last) also matches the naive implementation, so
the resulting clusters are identical — unconditionally, not just up to
rounding.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from .alignment import pairwise_similarity


@dataclass(frozen=True)
class Clustering:
    """Result of classifying a list of messages."""

    clusters: tuple[tuple[int, ...], ...]

    @property
    def count(self) -> int:
        return len(self.clusters)

    def labels(self) -> list[int]:
        """Cluster index of every message, by message position."""
        size = sum(len(cluster) for cluster in self.clusters)
        labels = [0] * size
        for index, cluster in enumerate(self.clusters):
            for member in cluster:
                labels[member] = index
        return labels


def cluster_messages(messages: Sequence[bytes], *, threshold: float = 0.8,
                     similarity_matrix: Sequence[Sequence[float]] | None = None,
                     parallel: bool = False,
                     max_workers: int | None = None) -> Clustering:
    """Cluster messages whose average-linkage similarity exceeds ``threshold``.

    ``parallel``/``max_workers`` configure the similarity-matrix computation
    when no precomputed ``similarity_matrix`` is supplied; the clustering
    itself is deterministic and single-threaded.
    """
    count = len(messages)
    if count == 0:
        return Clustering(clusters=())
    matrix = (
        similarity_matrix
        if similarity_matrix is not None
        else pairwise_similarity(messages, parallel=parallel,
                                 max_workers=max_workers)
    )

    rows = [list(row) for row in matrix]

    # Cluster state, keyed by a stable cluster id.  Merged clusters get a
    # fresh id, so any heap entry naming a dead id is stale by construction
    # and any entry naming two live ids carries the current pair similarity.
    members: list[list[int]] = [[index] for index in range(count)]
    sizes: list[int] = [1] * count
    alive: list[bool] = [True] * count
    #: scan position of every live cluster — the index it would have in the
    #: naive implementation's cluster list, which drives its tie-break.
    position: dict[int, int] = {index: index for index in range(count)}

    def average_linkage(first: int, second: int) -> float:
        """Average similarity between two clusters, naive summation order.

        Iterates the earlier-position cluster's members first and folds into
        a single accumulator, exactly like the per-iteration rescan, so the
        float result — and every comparison made with it — is bit-identical.
        Relative cluster order never changes after creation, so the value is
        computed once per pair and stays valid for the pair's lifetime.
        """
        if position[first] > position[second]:
            first, second = second, first
        total = 0.0
        inner = members[second]
        for a in members[first]:
            row = rows[a]
            for b in inner:
                total += row[b]
        return total / (sizes[first] * sizes[second])

    heap: list[tuple[float, int, int]] = []
    for i in range(count):
        row = rows[i]
        for j in range(i + 1, count):
            value = row[j]
            if value >= threshold:
                heap.append((-value, i, j))
    heapq.heapify(heap)

    def scan_key(first: int, second: int) -> tuple[int, int]:
        """The (i, j) the naive scan would visit this pair at."""
        pos_a, pos_b = position[first], position[second]
        return (pos_a, pos_b) if pos_a < pos_b else (pos_b, pos_a)

    while heap:
        top = heap[0]
        if not (alive[top[1]] and alive[top[2]]):
            heapq.heappop(heap)
            continue
        heapq.heappop(heap)
        # Gather every live pair tied at the best value: the naive scan keeps
        # overwriting its best pair on `>=`, so the *last* tied pair in scan
        # order wins.  Stale entries encountered here are simply dropped.
        tied: list[tuple[float, int, int]] = []
        while heap and heap[0][0] == top[0]:
            entry = heapq.heappop(heap)
            if alive[entry[1]] and alive[entry[2]]:
                tied.append(entry)
        first, second = top[1], top[2]
        if tied:
            chosen = -1
            best_key = scan_key(first, second)
            for index, entry in enumerate(tied):
                key = scan_key(entry[1], entry[2])
                if key > best_key:
                    best_key = key
                    chosen = index
            if chosen >= 0:
                tied.append((top[0], first, second))
                first, second = tied[chosen][1], tied[chosen][2]
                del tied[chosen]
            for entry in tied:
                heapq.heappush(heap, entry)

        # Merge, keeping the earlier-position cluster's slot and member order
        # (the naive implementation concatenates clusters[i] + clusters[j]).
        if position[first] > position[second]:
            first, second = second, first
        merged = len(alive)
        members.append(members[first] + members[second])
        sizes.append(sizes[first] + sizes[second])
        alive[first] = alive[second] = False
        alive.append(True)
        kept_position = position.pop(first)
        dropped_position = position.pop(second)
        for identifier, value in position.items():
            if value > dropped_position:
                position[identifier] = value - 1
        survivors = list(position)
        position[merged] = kept_position
        for other in survivors:
            value = average_linkage(other, merged)
            if value >= threshold:
                heapq.heappush(heap, (-value, other, merged))

    ordered = sorted(position, key=position.get)
    return Clustering(
        clusters=tuple(tuple(sorted(members[identifier])) for identifier in ordered)
    )


def purity(clustering: Clustering, true_labels: Sequence[object]) -> float:
    """Clustering purity against ground-truth message types (1.0 is perfect)."""
    total = sum(len(cluster) for cluster in clustering.clusters)
    if total == 0:
        return 0.0
    correct = 0
    for cluster in clustering.clusters:
        counts: dict[object, int] = {}
        for member in cluster:
            label = true_labels[member]
            counts[label] = counts.get(label, 0) + 1
        correct += max(counts.values())
    return correct / total
