"""Scoring of PRE inference results against ground truth.

The resilience assessment of the paper (Section VII.D) is qualitative: a
Netzob expert recovered the exact non-obfuscated Modbus format in half an hour
but obtained nothing relevant on the obfuscated version.  To quantify the same
claim, the inferred field boundaries are scored against the true wire-field
spans recorded by the serializer, and the message classification is scored
against the true message types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..wire.spans import FieldSpan, boundaries
from .clustering import purity
from .inference import InferenceResult


@dataclass(frozen=True)
class BoundaryScore:
    """Precision/recall/F1 of inferred field boundaries for one message."""

    true_positives: int
    inferred: int
    actual: int

    @property
    def precision(self) -> float:
        return self.true_positives / self.inferred if self.inferred else 0.0

    @property
    def recall(self) -> float:
        return self.true_positives / self.actual if self.actual else 0.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class InferenceScore:
    """Aggregated quality of one PRE run against ground truth."""

    boundary_f1: float
    boundary_precision: float
    boundary_recall: float
    classification_purity: float
    cluster_count: int
    true_type_count: int


def score_boundaries(inferred: frozenset[int], truth: set[int], *, tolerance: int = 0
                     ) -> BoundaryScore:
    """Score one message's inferred boundary offsets against the true offsets."""
    if tolerance <= 0:
        matched = len(inferred & truth)
    else:
        matched = sum(
            1 for offset in inferred
            if any(abs(offset - actual) <= tolerance for actual in truth)
        )
    return BoundaryScore(true_positives=matched, inferred=len(inferred), actual=len(truth))


def score_inference(result: InferenceResult,
                    truth_spans: Sequence[Sequence[FieldSpan]],
                    true_types: Sequence[object],
                    *, tolerance: int = 0) -> InferenceScore:
    """Score a full PRE run.

    ``truth_spans[i]`` are the wire-field spans of message ``i`` (as recorded
    by :meth:`repro.wire.WireCodec.serialize_with_spans`) and ``true_types[i]``
    its real message type.
    """
    scores: list[BoundaryScore] = []
    for index, message in enumerate(result.messages):
        truth = boundaries(list(truth_spans[index]), total_length=len(message))
        scores.append(score_boundaries(result.boundaries_for(index), truth,
                                       tolerance=tolerance))
    if scores:
        precision = sum(score.precision for score in scores) / len(scores)
        recall = sum(score.recall for score in scores) / len(scores)
        f1 = sum(score.f1 for score in scores) / len(scores)
    else:
        precision = recall = f1 = 0.0
    return InferenceScore(
        boundary_f1=f1,
        boundary_precision=precision,
        boundary_recall=recall,
        classification_purity=purity(result.clustering, list(true_types)),
        cluster_count=result.cluster_count,
        true_type_count=len(set(true_types)),
    )
