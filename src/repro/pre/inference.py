"""End-to-end trace-based format inference.

This is the PRE engine used by the resilience assessment: given a list of
captured wire messages it classifies them (alignment similarity + clustering)
and infers per-cluster field segmentations, reproducing the pipeline of
Figure 1 of the paper (observation → preprocessing → classification → message
format inference).

The engine is built for large traces: the similarity matrix deduplicates
identical messages, memoizes pair scores and can fan the upper triangle over
a process pool (``parallel=True``), and the clustering pops merges from a
heap instead of rescanning every cluster pair per iteration.  All of it is
exact — results are identical to the naive quadratic pipeline, only faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from .alignment import pairwise_similarity
from .clustering import Clustering, cluster_messages
from .fields import InferredFields, infer_fields


@dataclass(frozen=True)
class InferenceResult:
    """Outcome of running the PRE engine on a trace."""

    messages: tuple[bytes, ...]
    clustering: Clustering
    fields: tuple[InferredFields, ...]

    def boundaries_for(self, message_index: int) -> frozenset[int]:
        """Field boundary offsets inferred for one captured message."""
        for inferred in self.fields:
            if message_index in inferred.per_message_boundaries:
                return inferred.per_message_boundaries[message_index]
        return frozenset()

    @property
    def cluster_count(self) -> int:
        return self.clustering.count


class FormatInferencer:
    """Trace-based message format inference engine.

    ``parallel``/``max_workers`` fan the similarity matrix over a fork-based
    process pool (bit-identical results, silent sequential fallback when no
    pool can be started).
    """

    def __init__(self, *, similarity_threshold: float = 0.65,
                 parallel: bool = False, max_workers: int | None = None):
        self.similarity_threshold = similarity_threshold
        self.parallel = parallel
        self.max_workers = max_workers

    def infer(self, messages) -> InferenceResult:
        """Classify ``messages`` and infer each class's field segmentation.

        ``messages`` is a sequence of wire byte strings, or any object with a
        ``messages()`` method returning one — notably a live
        :class:`repro.net.Capture`, so transported traffic feeds the engine
        directly.
        """
        if not isinstance(messages, (list, tuple)) and callable(
                getattr(messages, "messages", None)):
            messages = messages.messages()
        trace = tuple(bytes(message) for message in messages)
        if not trace:
            return InferenceResult(messages=(), clustering=Clustering(clusters=()), fields=())
        matrix = pairwise_similarity(trace, parallel=self.parallel,
                                     max_workers=self.max_workers)
        clustering = cluster_messages(
            trace, threshold=self.similarity_threshold, similarity_matrix=matrix
        )
        fields = tuple(
            infer_fields(trace, cluster) for cluster in clustering.clusters
        )
        return InferenceResult(messages=trace, clustering=clustering, fields=fields)


def infer_formats(messages, *, similarity_threshold: float = 0.65,
                  parallel: bool = False, max_workers: int | None = None
                  ) -> InferenceResult:
    """Module-level convenience wrapper around :class:`FormatInferencer`.

    Accepts a sequence of wire messages or a live :class:`repro.net.Capture`.
    """
    return FormatInferencer(
        similarity_threshold=similarity_threshold,
        parallel=parallel,
        max_workers=max_workers,
    ).infer(messages)
