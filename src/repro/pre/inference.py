"""End-to-end trace-based format inference.

This is the PRE engine used by the resilience assessment: given a list of
captured wire messages it classifies them (alignment similarity + clustering)
and infers per-cluster field segmentations, reproducing the pipeline of
Figure 1 of the paper (observation → preprocessing → classification → message
format inference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .alignment import pairwise_similarity
from .clustering import Clustering, cluster_messages
from .fields import InferredFields, infer_fields


@dataclass(frozen=True)
class InferenceResult:
    """Outcome of running the PRE engine on a trace."""

    messages: tuple[bytes, ...]
    clustering: Clustering
    fields: tuple[InferredFields, ...]

    def boundaries_for(self, message_index: int) -> frozenset[int]:
        """Field boundary offsets inferred for one captured message."""
        for inferred in self.fields:
            if message_index in inferred.per_message_boundaries:
                return inferred.per_message_boundaries[message_index]
        return frozenset()

    @property
    def cluster_count(self) -> int:
        return self.clustering.count


class FormatInferencer:
    """Trace-based message format inference engine."""

    def __init__(self, *, similarity_threshold: float = 0.65):
        self.similarity_threshold = similarity_threshold

    def infer(self, messages: Sequence[bytes]) -> InferenceResult:
        """Classify ``messages`` and infer each class's field segmentation."""
        trace = tuple(bytes(message) for message in messages)
        if not trace:
            return InferenceResult(messages=(), clustering=Clustering(clusters=()), fields=())
        matrix = pairwise_similarity(trace)
        clustering = cluster_messages(
            trace, threshold=self.similarity_threshold, similarity_matrix=matrix
        )
        fields = tuple(
            infer_fields(trace, cluster) for cluster in clustering.clusters
        )
        return InferenceResult(messages=trace, clustering=clustering, fields=fields)


def infer_formats(messages: Sequence[bytes], *, similarity_threshold: float = 0.65
                  ) -> InferenceResult:
    """Module-level convenience wrapper around :class:`FormatInferencer`."""
    return FormatInferencer(similarity_threshold=similarity_threshold).infer(messages)
