"""Tokenizer of the message format specification DSL.

The DSL plays the role of the Lex/Yacc-parsed specification of the paper's
implementation.  The lexer produces a flat token stream with line/column
information used for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.errors import SpecError

KEYWORDS = frozenset(
    {
        "protocol",
        "message",
        "sequence",
        "optional",
        "repetition",
        "tabular",
        "uint",
        "bytes",
        "text",
        "delimited",
        "length",
        "count",
        "end",
        "little",
        "big",
        "present_if",
        "pad",
    }
)

_SYMBOLS = {
    "{": "LBRACE",
    "}": "RBRACE",
    "(": "LPAREN",
    ")": "RPAREN",
    ":": "COLON",
    ";": "SEMI",
    ",": "COMMA",
}

_ESCAPES = {"n": "\n", "r": "\r", "t": "\t", "0": "\0", "\\": "\\", '"': '"'}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    value: object
    line: int
    column: int

    def describe(self) -> str:
        return f"{self.kind}({self.value!r})"


class Lexer:
    """Turns DSL text into a token stream."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    # -- iteration -------------------------------------------------------------

    def tokens(self) -> list[Token]:
        """Tokenize the whole input (appends a final EOF token)."""
        result = list(self._iter_tokens())
        result.append(Token("EOF", None, self.line, self.column))
        return result

    def _iter_tokens(self) -> Iterator[Token]:
        while self.position < len(self.text):
            char = self.text[self.position]
            if char in " \t":
                self._advance(1)
            elif char == "\n":
                self._advance(1, newline=True)
            elif char == "#":
                self._skip_comment()
            elif char == '"':
                yield self._string()
            elif char.isdigit():
                yield self._number()
            elif char.isalpha() or char == "_":
                yield self._word()
            elif char == "=" and self.text[self.position : self.position + 2] == "==":
                token = Token("EQ", "==", self.line, self.column)
                self._advance(2)
                yield token
            elif char in _SYMBOLS:
                token = Token(_SYMBOLS[char], char, self.line, self.column)
                self._advance(1)
                yield token
            else:
                raise SpecError(f"unexpected character {char!r}", self.line, self.column)

    # -- token scanners ----------------------------------------------------------

    def _skip_comment(self) -> None:
        while self.position < len(self.text) and self.text[self.position] != "\n":
            self._advance(1)

    def _string(self) -> Token:
        line, column = self.line, self.column
        self._advance(1)  # opening quote
        value: list[str] = []
        while True:
            if self.position >= len(self.text):
                raise SpecError("unterminated string literal", line, column)
            char = self.text[self.position]
            if char == '"':
                self._advance(1)
                break
            if char == "\\":
                self._advance(1)
                escape = self.text[self.position : self.position + 1]
                if escape == "x":
                    code = self.text[self.position + 1 : self.position + 3]
                    try:
                        value.append(chr(int(code, 16)))
                    except ValueError as exc:
                        raise SpecError(f"invalid escape \\x{code}", self.line, self.column) from exc
                    self._advance(3)
                elif escape in _ESCAPES:
                    value.append(_ESCAPES[escape])
                    self._advance(1)
                else:
                    raise SpecError(f"unknown escape \\{escape}", self.line, self.column)
            else:
                value.append(char)
                self._advance(1)
        return Token("STRING", "".join(value), line, column)

    def _number(self) -> Token:
        line, column = self.line, self.column
        start = self.position
        if self.text[self.position : self.position + 2].lower() == "0x":
            self._advance(2)
            while self.position < len(self.text) and self.text[self.position] in "0123456789abcdefABCDEF":
                self._advance(1)
            return Token("INT", int(self.text[start : self.position], 16), line, column)
        while self.position < len(self.text) and self.text[self.position].isdigit():
            self._advance(1)
        return Token("INT", int(self.text[start : self.position]), line, column)

    def _word(self) -> Token:
        line, column = self.line, self.column
        start = self.position
        while self.position < len(self.text) and (
            self.text[self.position].isalnum() or self.text[self.position] == "_"
        ):
            self._advance(1)
        word = self.text[start : self.position]
        kind = "KEYWORD" if word in KEYWORDS else "IDENT"
        return Token(kind, word, line, column)

    # -- position tracking --------------------------------------------------------

    def _advance(self, count: int, *, newline: bool = False) -> None:
        self.position += count
        if newline:
            self.line += 1
            self.column = 1
        else:
            self.column += count


def tokenize(text: str) -> list[Token]:
    """Tokenize DSL text."""
    return Lexer(text).tokens()
