"""Message format specification DSL: lexer, parser and writer."""

from .lexer import Lexer, Token, tokenize
from .parser import SpecParser, parse_spec
from .writer import write_spec

__all__ = ["Lexer", "SpecParser", "Token", "parse_spec", "tokenize", "write_spec"]
