"""Message format specification DSL: lexer, parser, writer and plan files.

The DSL pins the plain format; a plan file (:mod:`repro.spec.planfile`) pins
one obfuscated dialect of it — together they fully determine the wire format.
"""

from .lexer import Lexer, Token, tokenize
from .parser import SpecParser, parse_spec
from .planfile import dump_plan, load_plan, load_plan_text, save_plan
from .writer import write_spec

__all__ = [
    "Lexer",
    "SpecParser",
    "Token",
    "dump_plan",
    "load_plan",
    "load_plan_text",
    "parse_spec",
    "save_plan",
    "tokenize",
    "write_spec",
]
