"""Recursive-descent parser of the message format specification DSL.

Grammar (informal)::

    spec        := [ "protocol" IDENT ";" ] "message" IDENT block
    block       := "{" node* "}"
    node        := terminal | composite
    terminal    := ("uint" | "bytes" | "text") IDENT boundary [ "little" | "big" ] ";"
    boundary    := ":" INT
                 | "delimited" "(" STRING ")"
                 | "length" "(" IDENT ")"
                 | "end"
    composite   := "sequence" IDENT [ comp_bound ] block
                 | "optional" IDENT [ "present_if" "(" IDENT "==" value ")" ] block
                 | "repetition" IDENT [ rep_bound ] block
                 | "tabular" IDENT "count" "(" IDENT ")" block
    comp_bound  := "length" "(" IDENT ")" | "end"
    rep_bound   := "delimited" "(" STRING ")" | "length" "(" IDENT ")"
                 | "count" "(" IDENT ")" | "end"
    value       := INT | STRING

The parser produces the same :class:`~repro.core.graph.FormatGraph` objects as
the programmatic builder API, so both specification front-ends are equivalent.
"""

from __future__ import annotations

from ..core.boundary import Boundary
from ..core.builder import build_graph
from ..core.errors import SpecError
from ..core.graph import FormatGraph
from ..core.node import Node, NodeType
from ..core.values import Endian, ValueKind
from .lexer import Token, tokenize


class SpecParser:
    """Parses DSL text into a validated message format graph."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.position = 0

    # -- public API --------------------------------------------------------------

    def parse(self) -> FormatGraph:
        """Parse the full specification and return the validated graph."""
        protocol_name = None
        if self._peek_keyword("protocol"):
            self._expect_keyword("protocol")
            protocol_name = self._name()
            self._expect("SEMI")
        self._expect_keyword("message")
        message_name = self._name()
        children = self._block()
        self._expect("EOF")
        root = Node(message_name, NodeType.SEQUENCE, Boundary.delegated(), children=children)
        return build_graph(root, name=str(protocol_name or message_name))

    # -- grammar rules ------------------------------------------------------------

    def _block(self) -> list[Node]:
        self._expect("LBRACE")
        nodes: list[Node] = []
        while not self._peek("RBRACE"):
            nodes.append(self._node())
        self._expect("RBRACE")
        return nodes

    def _node(self) -> Node:
        token = self._peek_token()
        if token.kind != "KEYWORD":
            raise SpecError(f"expected a node keyword, got {token.describe()}",
                            token.line, token.column)
        keyword = str(token.value)
        if keyword in ("uint", "bytes", "text"):
            return self._terminal()
        if keyword == "sequence":
            return self._sequence()
        if keyword == "optional":
            return self._optional()
        if keyword == "repetition":
            return self._repetition()
        if keyword == "tabular":
            return self._tabular()
        raise SpecError(f"unexpected keyword {keyword!r}", token.line, token.column)

    def _terminal(self) -> Node:
        kind_token = self._expect("KEYWORD")
        kind = {"uint": ValueKind.UINT, "bytes": ValueKind.BYTES, "text": ValueKind.TEXT}[
            str(kind_token.value)
        ]
        name = self._name()
        boundary = self._terminal_boundary(kind_token)
        endian = Endian.BIG
        if self._peek_keyword("little"):
            self._next()
            endian = Endian.LITTLE
        elif self._peek_keyword("big"):
            self._next()
        self._expect("SEMI")
        return Node(name, NodeType.TERMINAL, boundary, value_kind=kind, endian=endian)

    def _terminal_boundary(self, context: Token) -> Boundary:
        if self._peek("COLON"):
            self._next()
            size = int(self._expect("INT").value)
            return Boundary.fixed(size)
        if self._peek_keyword("delimited"):
            self._next()
            return Boundary.delimited(self._parenthesized_string())
        if self._peek_keyword("length"):
            self._next()
            return Boundary.length(self._parenthesized_ident())
        if self._peek_keyword("end"):
            self._next()
            return Boundary.end()
        raise SpecError(
            "terminal requires a boundary (': N', 'delimited(..)', 'length(..)' or 'end')",
            context.line, context.column,
        )

    def _sequence(self) -> Node:
        self._expect_keyword("sequence")
        name = self._name()
        boundary = Boundary.delegated()
        if self._peek_keyword("length"):
            self._next()
            boundary = Boundary.length(self._parenthesized_ident())
        elif self._peek_keyword("end"):
            self._next()
            boundary = Boundary.end()
        children = self._block()
        if not children:
            token = self._peek_token()
            raise SpecError(f"sequence {name!r} requires at least one child",
                            token.line, token.column)
        return Node(name, NodeType.SEQUENCE, boundary, children=children)

    def _optional(self) -> Node:
        self._expect_keyword("optional")
        name = self._name()
        presence_ref = None
        presence_value: object = None
        if self._peek_keyword("present_if"):
            self._next()
            self._expect("LPAREN")
            presence_ref = self._name()
            self._expect("EQ")
            presence_value = self._value()
            self._expect("RPAREN")
        children = self._block()
        child = self._single_child(name, children)
        return Node(
            name,
            NodeType.OPTIONAL,
            Boundary.delegated(),
            children=[child],
            presence_ref=presence_ref,
            presence_value=presence_value,
        )

    def _repetition(self) -> Node:
        self._expect_keyword("repetition")
        name = self._name()
        boundary = Boundary.end()
        if self._peek_keyword("delimited"):
            self._next()
            boundary = Boundary.delimited(self._parenthesized_string())
        elif self._peek_keyword("length"):
            self._next()
            boundary = Boundary.length(self._parenthesized_ident())
        elif self._peek_keyword("count"):
            self._next()
            boundary = Boundary.counter(self._parenthesized_ident())
        elif self._peek_keyword("end"):
            self._next()
        children = self._block()
        child = self._single_child(name, children)
        return Node(name, NodeType.REPETITION, boundary, children=[child])

    def _tabular(self) -> Node:
        self._expect_keyword("tabular")
        name = self._name()
        self._expect_keyword("count")
        counter = self._parenthesized_ident()
        children = self._block()
        child = self._single_child(name, children)
        return Node(name, NodeType.TABULAR, Boundary.counter(counter), children=[child])

    def _single_child(self, name: str, children: list[Node]) -> Node:
        """Optional/Repetition/Tabular blocks with several nodes get an implicit sequence."""
        if len(children) == 1:
            return children[0]
        if not children:
            token = self._peek_token()
            raise SpecError(f"node {name!r} requires at least one child", token.line, token.column)
        return Node(f"{name}_item", NodeType.SEQUENCE, Boundary.delegated(), children=children)

    def _value(self) -> object:
        token = self._next()
        if token.kind == "INT":
            return token.value
        if token.kind == "STRING":
            return token.value
        raise SpecError(f"expected a literal value, got {token.describe()}",
                        token.line, token.column)

    # -- token helpers --------------------------------------------------------------

    def _parenthesized_string(self) -> bytes:
        self._expect("LPAREN")
        value = str(self._expect("STRING").value).encode("latin-1")
        self._expect("RPAREN")
        return value

    def _parenthesized_ident(self) -> str:
        self._expect("LPAREN")
        value = self._name()
        self._expect("RPAREN")
        return value

    def _peek_token(self) -> Token:
        return self.tokens[self.position]

    def _peek(self, kind: str) -> bool:
        return self.tokens[self.position].kind == kind

    def _peek_keyword(self, keyword: str) -> bool:
        token = self.tokens[self.position]
        return token.kind == "KEYWORD" and token.value == keyword

    def _next(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise SpecError(f"expected {kind}, got {token.describe()}", token.line, token.column)
        return token

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._next()
        if token.kind != "KEYWORD" or token.value != keyword:
            raise SpecError(f"expected {keyword!r}, got {token.describe()}",
                            token.line, token.column)
        return token

    def _name(self) -> str:
        """Node names may also reuse DSL keywords (e.g. ``count``, ``length``)."""
        token = self._next()
        if token.kind not in ("IDENT", "KEYWORD"):
            raise SpecError(f"expected a name, got {token.describe()}",
                            token.line, token.column)
        return str(token.value)


def parse_spec(text: str) -> FormatGraph:
    """Parse DSL text into a validated message format graph."""
    return SpecParser(text).parse()
