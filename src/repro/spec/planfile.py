"""Plan files: persist obfuscation plans alongside the specification DSL.

A specification pins the *plain* format (the DSL text handled by
:mod:`repro.spec.parser` / :mod:`repro.spec.writer`); a plan file pins one
*obfuscated dialect* of it — the serialized
:class:`~repro.transforms.plan.ObfuscationPlan` that replays the plain graph
into the shared-secret format.  Shipping both files to an endpoint is the
key-distribution step of the paper's threat model: ``spec + plan`` fully
determines the wire format, no engine run or shared RNG seed required.

The on-disk layout is the plan's canonical JSON body plus a ``fingerprint``
field; :func:`load_plan` recomputes the fingerprint over the body and rejects
files whose content no longer hashes to the declared value (truncated copies,
hand-edited records), so a loaded plan is exactly the artifact that was saved.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..transforms.plan import ObfuscationPlan, PlanError


def dump_plan(plan: ObfuscationPlan, *, indent: int | None = 2) -> str:
    """Render ``plan`` as plan-file text (canonical body + fingerprint)."""
    payload = plan.to_dict()
    payload["fingerprint"] = plan.fingerprint
    return json.dumps(payload, sort_keys=True, indent=indent) + "\n"


def load_plan_text(text: str) -> ObfuscationPlan:
    """Parse plan-file text, verifying the declared fingerprint."""
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise PlanError(f"plan file is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise PlanError("plan file must contain a JSON object")
    declared = payload.pop("fingerprint", None)
    if declared is None:
        # save_plan always writes the field; its absence means the file was
        # truncated or hand-edited, so treat it as tampering rather than
        # silently skipping the integrity check.
        raise PlanError(
            "plan file carries no fingerprint; refusing to load an "
            "unverifiable plan (was the file truncated or hand-edited?)"
        )
    plan = ObfuscationPlan.from_dict(payload)
    if declared != plan.fingerprint:
        raise PlanError(
            f"plan file fingerprint mismatch: file declares "
            f"{str(declared)[:12]}… but its records hash to "
            f"{plan.fingerprint[:12]}… (corrupted or hand-edited plan)"
        )
    return plan


def save_plan(plan: ObfuscationPlan, path: str | Path) -> Path:
    """Write ``plan`` to ``path`` and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(dump_plan(plan), encoding="utf-8")
    return target


def load_plan(path: str | Path) -> ObfuscationPlan:
    """Load a plan previously written by :func:`save_plan`."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise PlanError(f"cannot read plan file {path}: {exc}") from exc
    try:
        return load_plan_text(text)
    except PlanError as exc:
        raise PlanError(f"{path}: {exc}") from exc
