"""Writer: render a (non-obfuscated) message format graph back into DSL text.

The writer is the inverse of :mod:`repro.spec.parser` for original
specifications; it is used to export programmatically built graphs (e.g. the
bundled Modbus/HTTP specifications) and by the round-trip tests of the DSL.
Obfuscation metadata (codec chains, synthesis, mirroring, padding) is not part
of the specification language and is rejected.
"""

from __future__ import annotations

from ..core.boundary import BoundaryKind
from ..core.errors import SpecError
from ..core.graph import FormatGraph
from ..core.node import Node, NodeType
from ..core.values import Endian, ValueKind

_ESCAPES = {ord("\n"): "\\n", ord("\r"): "\\r", ord("\t"): "\\t", ord("\\"): "\\\\",
            ord('"'): '\\"', 0: "\\0"}


def _escape(data: bytes) -> str:
    out: list[str] = []
    for byte in data:
        if byte in _ESCAPES:
            out.append(_ESCAPES[byte])
        elif 0x20 <= byte < 0x7F:
            out.append(chr(byte))
        else:
            out.append(f"\\x{byte:02x}")
    return "".join(out)


def _check_plain(node: Node) -> None:
    if node.codec_chain or node.synthesis is not None or node.mirrored or node.is_pad:
        raise SpecError(
            f"node {node.name!r} carries obfuscation metadata and cannot be written "
            f"as a plain specification"
        )


def _terminal_line(node: Node) -> str:
    _check_plain(node)
    keyword = {ValueKind.UINT: "uint", ValueKind.BYTES: "bytes", ValueKind.TEXT: "text"}[
        node.value_kind or ValueKind.BYTES
    ]
    kind = node.boundary.kind
    if kind is BoundaryKind.FIXED:
        boundary = f" : {node.boundary.size}"
    elif kind is BoundaryKind.DELIMITED:
        boundary = f' delimited("{_escape(node.boundary.delimiter or b"")}")'
    elif kind is BoundaryKind.LENGTH:
        boundary = f" length({node.boundary.ref})"
    else:
        boundary = " end"
    endian = " little" if node.endian is Endian.LITTLE else ""
    return f"{keyword} {node.name}{boundary}{endian};"


def _composite_header(node: Node) -> str:
    _check_plain(node)
    kind = node.boundary.kind
    if node.type is NodeType.SEQUENCE:
        if kind is BoundaryKind.LENGTH:
            return f"sequence {node.name} length({node.boundary.ref})"
        if kind is BoundaryKind.END:
            return f"sequence {node.name} end"
        return f"sequence {node.name}"
    if node.type is NodeType.OPTIONAL:
        if node.presence_ref is not None:
            value = node.presence_value
            literal = f'"{value}"' if isinstance(value, str) else str(value)
            return f"optional {node.name} present_if({node.presence_ref} == {literal})"
        return f"optional {node.name}"
    if node.type is NodeType.REPETITION:
        if kind is BoundaryKind.DELIMITED:
            return f'repetition {node.name} delimited("{_escape(node.boundary.delimiter or b"")}")'
        if kind is BoundaryKind.LENGTH:
            return f"repetition {node.name} length({node.boundary.ref})"
        if kind is BoundaryKind.COUNTER:
            return f"repetition {node.name} count({node.boundary.ref})"
        return f"repetition {node.name} end"
    return f"tabular {node.name} count({node.boundary.ref})"


def _write_node(node: Node, indent: int, lines: list[str]) -> None:
    pad = "    " * indent
    if node.type is NodeType.TERMINAL:
        lines.append(pad + _terminal_line(node))
        return
    lines.append(pad + _composite_header(node) + " {")
    for child in node.children:
        _write_node(child, indent + 1, lines)
    lines.append(pad + "}")


def write_spec(graph: FormatGraph) -> str:
    """Render a plain message format graph into specification DSL text."""
    root = graph.root
    if root.type is not NodeType.SEQUENCE:
        raise SpecError("the DSL writer requires a sequence root node")
    _check_plain(root)
    lines = [f"protocol {graph.name};", "", f"message {root.name} {{"]
    for child in root.children:
        _write_node(child, 1, lines)
    lines.append("}")
    return "\n".join(lines) + "\n"
