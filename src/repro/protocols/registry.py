"""The pluggable protocol registry.

Every protocol family evaluated by the pipeline — the paper's two case
studies (HTTP/1.1 and TCP-Modbus) as well as the follow-up workloads (DNS,
MQTT, ...) — is described by a :class:`ProtocolSetup`: the message format
graph factories (the specification ``S`` of the paper) together with the core
application's random message generators.

Protocol packages register themselves at import time with :func:`register`,
and every consumer — the experiment runner, the benchmark harness, the test
fixtures and the examples — resolves protocols through :func:`get` /
:func:`available` instead of a hard-coded dict.  Adding a protocol is
therefore a drop-in module under :mod:`repro.protocols`; see
``docs/adding-a-protocol.md`` for the authoring guide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Callable, Iterator

from ..core.graph import FormatGraph
from ..core.message import Message
from ..wire.plan import CodecPlan, plan_for

GraphFactory = Callable[[], FormatGraph]
MessageGenerator = Callable[[Random], Message]
#: Session-driver hook: maps one decoded request to its reply (or ``None``
#: for messages the protocol does not answer).
Responder = Callable[[Message, Random], "Message | None"]

#: Sentinel for "use the protocol's registered default" keyword arguments.
DEFAULT = object()


class ProtocolRegistryError(ValueError):
    """Raised on duplicate registrations and unknown protocol lookups."""


@dataclass(frozen=True)
class ProtocolSetup:
    """A protocol specification plus its core-application message generators.

    ``graph_factory`` / ``message_generator`` describe the primary (request)
    direction used by the experiment runner; protocols that also model the
    reverse direction provide ``response_graph_factory`` /
    ``response_generator`` so that the whole test and benchmark surface covers
    both graphs.
    """

    key: str
    label: str
    graph_factory: GraphFactory
    message_generator: MessageGenerator
    response_graph_factory: GraphFactory | None = None
    response_generator: MessageGenerator | None = None
    #: core-application session hook driven by the live transport layer
    #: (:mod:`repro.net`): called once per decoded request, returns the reply
    #: to serialize back — or ``None`` when the protocol stays quiet.
    responder: Responder | None = None
    description: str = ""
    #: canonical graph instances per direction, hosts of the cached codec
    #: plans (``graph_factory`` builds a fresh graph per call; consumers that
    #: only read — benchmarks, codecs, reference measurements — share these).
    _reference_graphs: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if (self.response_graph_factory is None) != (self.response_generator is None):
            raise ProtocolRegistryError(
                f"protocol {self.key!r} must set response_graph_factory and "
                f"response_generator together (or neither)"
            )

    def directions(self) -> Iterator[tuple[str, GraphFactory, MessageGenerator]]:
        """Yield ``(direction, graph factory, message generator)`` tuples."""
        yield "request", self.graph_factory, self.message_generator
        if self.response_graph_factory is not None and self.response_generator is not None:
            yield "response", self.response_graph_factory, self.response_generator

    # -- compiled-plan aware accessors -----------------------------------------

    def _direction_factory(self, direction: str) -> GraphFactory:
        if direction == "request":
            return self.graph_factory
        if direction == "response":
            if self.response_graph_factory is None:
                raise ProtocolRegistryError(
                    f"protocol {self.key!r} does not model a response direction"
                )
            return self.response_graph_factory
        raise ProtocolRegistryError(
            f"unknown direction {direction!r}; expected 'request' or 'response'"
        )

    def reference_graph(self, direction: str = "request") -> FormatGraph:
        """Shared canonical graph of one direction (built once per setup).

        Safe to share because every consumer treats specification graphs as
        immutable: the obfuscation engine clones before transforming.
        """
        graph = self._reference_graphs.get(direction)
        if graph is None:
            graph = self._direction_factory(direction)()
            self._reference_graphs[direction] = graph
        return graph

    def reference_plan(self, direction: str = "request") -> CodecPlan:
        """Cached codec plan of the canonical graph of one direction."""
        return plan_for(self.reference_graph(direction))

    def compiled_codec(self, direction: str = "request", *,
                       seed: int | None = None):
        """Specialized compiled codec of one direction's canonical graph.

        The straight-line module is emitted and loaded at most once per
        dialect fingerprint (the codegen module cache); each call wraps that
        shared module in a fresh :class:`~repro.codegen.SpecializedCodec`
        with its own serializer RNG, so concurrent sessions never share
        random state.  Byte- and error-identical to the interpreted runtime,
        several times faster.
        """
        from ..codegen.cache import cached_module
        from ..codegen.loader import SpecializedCodec

        graph = self.reference_graph(direction)
        module = cached_module(graph, specialize=True)
        return SpecializedCodec(graph, seed=seed, module=module)


_REGISTRY: dict[str, ProtocolSetup] = {}


def register(setup: ProtocolSetup) -> ProtocolSetup:
    """Register ``setup`` under its key; duplicate keys are an error.

    Returns the setup so registration can be used in assignments::

        SETUP = registry.register(ProtocolSetup(key="dns", ...))
    """
    if setup.key in _REGISTRY:
        raise ProtocolRegistryError(
            f"protocol {setup.key!r} is already registered "
            f"(by {_REGISTRY[setup.key].label!r})"
        )
    _REGISTRY[setup.key] = setup
    return setup


def unregister(key: str) -> None:
    """Remove a registered protocol (mainly for tests of the registry itself)."""
    if key not in _REGISTRY:
        raise ProtocolRegistryError(f"protocol {key!r} is not registered")
    del _REGISTRY[key]


def get(key: str) -> ProtocolSetup:
    """Return the setup registered under ``key``.

    Raises :class:`ProtocolRegistryError` (a :class:`ValueError`) naming the
    available protocols when the key is unknown.
    """
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ProtocolRegistryError(
            f"unknown protocol {key!r}; available: {', '.join(available()) or 'none'}"
        ) from None


def available() -> tuple[str, ...]:
    """Sorted keys of every registered protocol."""
    return tuple(sorted(_REGISTRY))


def setups() -> tuple[ProtocolSetup, ...]:
    """Every registered setup, in key order."""
    return tuple(_REGISTRY[key] for key in available())
