"""Simplified HTTP/1.1 specification and core application (paper Section VII)."""

from .app import (
    HEADER_NAMES,
    HEADER_VALUES,
    METHODS,
    METHODS_WITH_BODY,
    STATUS,
    build_request,
    build_response,
    random_conversation,
    random_request,
    random_response,
)
from .spec import CRLF, HEADER_SEPARATOR, SP, request_graph, response_graph

__all__ = [
    "CRLF",
    "HEADER_NAMES",
    "HEADER_SEPARATOR",
    "HEADER_VALUES",
    "METHODS",
    "METHODS_WITH_BODY",
    "SP",
    "STATUS",
    "build_request",
    "build_response",
    "random_conversation",
    "random_request",
    "random_response",
    "request_graph",
    "response_graph",
]
