"""Simplified HTTP/1.1 specification and core application (paper Section VII)."""

from .app import (
    HEADER_NAMES,
    HEADER_VALUES,
    METHODS,
    METHODS_WITH_BODY,
    STATUS,
    build_request,
    build_response,
    random_conversation,
    random_request,
    random_response,
    respond,
)
from .spec import CRLF, HEADER_SEPARATOR, SP, request_graph, response_graph
from .. import registry

SETUP = registry.register(
    registry.ProtocolSetup(
        key="http",
        label="HTTP",
        graph_factory=request_graph,
        message_generator=random_request,
        response_graph_factory=response_graph,
        response_generator=random_response,
        responder=respond,
        description="Simplified HTTP/1.1 (text protocol of the paper's evaluation)",
    )
)

__all__ = [
    "SETUP",
    "CRLF",
    "HEADER_NAMES",
    "HEADER_SEPARATOR",
    "HEADER_VALUES",
    "METHODS",
    "METHODS_WITH_BODY",
    "SP",
    "STATUS",
    "build_request",
    "build_response",
    "random_conversation",
    "random_request",
    "random_response",
    "respond",
    "request_graph",
    "response_graph",
]
