"""HTTP core application.

Builds random, well-formed logical HTTP request and response messages used as
the workload of the HTTP experiments.  Values are drawn from pools of common
methods, paths, header names and status codes; header values avoid the
delimiter sequences so that every generated message is serializable.
"""

from __future__ import annotations

from random import Random

from ...core.message import Message

METHODS = ("GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS")
METHODS_WITH_BODY = ("POST", "PUT")
VERSIONS = ("HTTP/1.0", "HTTP/1.1")
STATUS = (
    ("200", "OK"),
    ("201", "Created"),
    ("204", "No Content"),
    ("301", "Moved Permanently"),
    ("304", "Not Modified"),
    ("400", "Bad Request"),
    ("403", "Forbidden"),
    ("404", "Not Found"),
    ("500", "Internal Server Error"),
)
PATH_SEGMENTS = ("api", "v1", "v2", "users", "items", "orders", "status", "index",
                 "search", "metrics", "login", "assets", "docs")
HEADER_NAMES = ("Host", "User-Agent", "Accept", "Accept-Language", "Content-Type",
                "Cache-Control", "Connection", "X-Request-Id", "Authorization",
                "Accept-Encoding")
HEADER_VALUES = ("example.com", "repro-client/1.0", "text/html", "application/json",
                 "en-US", "no-cache", "keep-alive", "close", "gzip, deflate",
                 "token-1234567890", "max-age=3600", "bytes")
_BODY_WORDS = ("alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
               "hotel", "india", "juliet")


def build_request(method: str, uri: str, *, version: str = "HTTP/1.1",
                  headers: list[tuple[str, str]] | None = None,
                  body: bytes | None = None) -> Message:
    """Build a logical HTTP request message."""
    message = Message()
    message.set("method", method)
    message.set("uri", uri)
    message.set("request_version", version)
    message.set("request_headers", [])
    for index, (name, value) in enumerate(headers or []):
        message.set(f"request_headers[{index}].request_header_name", name)
        message.set(f"request_headers[{index}].request_header_value", value)
    if body is not None:
        message.set("request_body", bytes(body))
    return message


def build_response(status_code: str, reason: str, *, version: str = "HTTP/1.1",
                   headers: list[tuple[str, str]] | None = None,
                   body: bytes | None = None) -> Message:
    """Build a logical HTTP response message."""
    message = Message()
    message.set("response_version", version)
    message.set("status_code", status_code)
    message.set("reason", reason)
    message.set("response_headers", [])
    for index, (name, value) in enumerate(headers or []):
        message.set(f"response_headers[{index}].response_header_name", name)
        message.set(f"response_headers[{index}].response_header_value", value)
    if body is not None:
        message.set("response_body", bytes(body))
    return message


def _random_uri(rng: Random) -> str:
    depth = rng.randrange(1, 4)
    segments = [rng.choice(PATH_SEGMENTS) for _ in range(depth)]
    uri = "/" + "/".join(segments)
    if rng.random() < 0.3:
        uri += f"?id={rng.randrange(10000)}"
    return uri


def _random_headers(rng: Random) -> list[tuple[str, str]]:
    count = rng.randrange(1, 6)
    names = rng.sample(HEADER_NAMES, count)
    return [(name, rng.choice(HEADER_VALUES)) for name in names]


def _random_body(rng: Random) -> bytes:
    words = [rng.choice(_BODY_WORDS) for _ in range(rng.randrange(1, 12))]
    return (" ".join(words)).encode("ascii")


def random_request(rng: Random, *, method: str | None = None) -> Message:
    """Draw a random, well-formed HTTP request."""
    method = method if method is not None else rng.choice(METHODS)
    body = _random_body(rng) if method in METHODS_WITH_BODY else None
    return build_request(
        method,
        _random_uri(rng),
        version=rng.choice(VERSIONS),
        headers=_random_headers(rng),
        body=body,
    )


def random_response(rng: Random, *, with_body: bool | None = None) -> Message:
    """Draw a random, well-formed HTTP response."""
    status_code, reason = rng.choice(STATUS)
    if with_body is None:
        with_body = status_code not in ("204", "304") and rng.random() < 0.7
    return build_response(
        status_code,
        reason,
        version=rng.choice(VERSIONS),
        headers=_random_headers(rng),
        body=_random_body(rng) if with_body else None,
    )


def respond(request: Message, rng: Random) -> Message:
    """Session-driver hook: answer one request with a plausible response.

    Write methods are acknowledged with ``201 Created``, everything else with
    ``200 OK``; the response echoes the request's protocol version and its
    ``X-Request-Id`` header when present, and carries a body except for HEAD.
    """
    method = request.get("method", "GET")
    if method in METHODS_WITH_BODY:
        status_code, reason = "201", "Created"
    else:
        status_code, reason = "200", "OK"
    headers = _random_headers(rng)
    for index in range(request.list_length("request_headers")):
        name = request.get(f"request_headers[{index}].request_header_name")
        if name == "X-Request-Id":
            # The echo replaces any randomly drawn X-Request-Id so the
            # header appears exactly once, carrying the request's value.
            headers = [(header, value) for header, value in headers
                       if header != "X-Request-Id"]
            headers.append(
                ("X-Request-Id",
                 request.get(f"request_headers[{index}].request_header_value"))
            )
            break
    return build_response(
        status_code,
        reason,
        version=request.get("request_version", "HTTP/1.1"),
        headers=headers,
        body=None if method == "HEAD" else _random_body(rng),
    )


def random_conversation(rng: Random, exchanges: int) -> list[tuple[str, Message]]:
    """Draw an alternating request/response HTTP conversation."""
    conversation: list[tuple[str, Message]] = []
    for _ in range(exchanges):
        conversation.append(("request", random_request(rng)))
        conversation.append(("response", random_response(rng)))
    return conversation
