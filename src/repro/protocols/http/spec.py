"""Simplified HTTP/1.1 message format specifications.

The HTTP graphs exercise the features the paper highlights for the text
protocol: Delimited boundaries (space and CRLF separated tokens), a Repetition
(the header block, terminated by an empty line) and an Optional field (the
message body, present when bytes remain after the header block).

As in the paper, the specification describes the *syntax* of messages; the
core application does not enforce semantic consistency of keyword values
(paper Section VII: "this implementation doesn't create messages with
consistent values for the keywords").
"""

from __future__ import annotations

from ...core.boundary import Boundary
from ...core.builder import (
    build_graph,
    delimited_text,
    optional,
    remaining_bytes,
    repetition,
    sequence,
)
from ...core.graph import FormatGraph

SP = b" "
CRLF = b"\r\n"
HEADER_SEPARATOR = b": "


def _header_block(kind: str) -> object:
    header = sequence(
        f"{kind}_header",
        [
            delimited_text(f"{kind}_header_name", HEADER_SEPARATOR,
                           doc="header field name"),
            delimited_text(f"{kind}_header_value", CRLF, doc="header field value"),
        ],
        doc="one header line",
    )
    return repetition(
        f"{kind}_headers",
        header,
        boundary=Boundary.delimited(CRLF),
        doc="header block, terminated by an empty line",
    )


def _body(kind: str) -> object:
    return optional(
        f"{kind}_body",
        remaining_bytes(f"{kind}_content", doc="message body"),
        doc="optional message body (present when bytes remain)",
    )


def request_graph() -> FormatGraph:
    """Message format graph of simplified HTTP/1.1 requests."""
    root = sequence(
        "http_request",
        [
            delimited_text("method", SP, doc="request method (GET, POST, ...)"),
            delimited_text("uri", SP, doc="request target"),
            delimited_text("request_version", CRLF, doc="protocol version"),
            _header_block("request"),
            _body("request"),
        ],
        doc="HTTP/1.1 request",
    )
    return build_graph(root, name="http_request")


def response_graph() -> FormatGraph:
    """Message format graph of simplified HTTP/1.1 responses."""
    root = sequence(
        "http_response",
        [
            delimited_text("response_version", SP, doc="protocol version"),
            delimited_text("status_code", SP, doc="status code"),
            delimited_text("reason", CRLF, doc="reason phrase"),
            _header_block("response"),
            _body("response"),
        ],
        doc="HTTP/1.1 response",
    )
    return build_graph(root, name="http_response")
