"""CoAP message format specification (TLV options + payload marker).

CoAP is the TLV workload of the matrix: its option block is a *delta-encoded
type–length–value list* closed by the ``0xFF`` payload marker — a boundary
shape none of the other four families has.  Each option carries the
difference between its option number and the previous one (so the list is
sorted by construction), a length and an opaque value; the first byte after
the last option is the payload marker, which can never begin an option
because ``0xFF`` is reserved in the real protocol for exactly this purpose.
In the format-graph vocabulary:

* an option is a Sequence of a one-byte delta, a derived one-byte LENGTH
  field and a value terminal bounded by it,
* the option list is a Repetition whose DELIMITED boundary is the ``0xFF``
  payload marker (the DNS root-label construction, with the twist that the
  terminator doubles as the start-of-payload mark),
* the message length is a derived LENGTH field backing the whole body (the
  CoAP-over-reliable-transport construction of RFC 8323, where the framing
  length rides in the header), and
* the payload stretches to the end of the length window (an END boundary,
  like the MQTT QoS-0 payload).

Modelling notes
---------------
* We model CoAP over a reliable byte stream (RFC 8323), not the datagram
  variant: the version/type nibbles of the UDP header are dropped and a
  two-byte message length takes their place — the same fixed-width
  simplification as MQTT's varint remaining length.
* Option deltas and lengths are single whole bytes; the 13/14 extended-delta
  escapes are not modelled.  The core application only emits deltas ``<= 12``
  (Uri-Path, Content-Format, Uri-Query), which is also what keeps a delta
  byte from colliding with the ``0xFF`` marker.
* The payload marker is always written, even for empty payloads (real CoAP
  omits marker *and* payload together); the serializer's DELIMITED
  repetition terminator gives us the always-present form.
* One graph serves both directions — request and response share the layout
  and differ only in the code byte, as in the real protocol.
"""

from __future__ import annotations

from ...core.boundary import Boundary
from ...core.builder import (
    build_graph,
    bytes_field,
    remaining_bytes,
    repetition,
    sequence,
    uint,
)
from ...core.graph import FormatGraph
from ...core.node import Node

#: Request method codes (RFC 7252 §12.1.1).
GET = 0x01
POST = 0x02
PUT = 0x03
DELETE = 0x04

#: Response codes used by the core application (class.detail packed bytes).
CONTENT = 0x45        # 2.05
CREATED = 0x41        # 2.01
CHANGED = 0x44        # 2.04
DELETED = 0x42        # 2.02
NOT_FOUND = 0x84      # 4.04

METHOD_CODES = (GET, POST, PUT, DELETE)
RESPONSE_CODES = (CONTENT, CREATED, CHANGED, DELETED, NOT_FOUND)

#: Option numbers the core application emits (RFC 7252 §5.10).
OPTION_URI_PATH = 11
OPTION_CONTENT_FORMAT = 12
OPTION_URI_QUERY = 15

#: End of the option list / start of the payload.
PAYLOAD_MARKER = b"\xff"


def _option() -> Node:
    """One delta-encoded TLV option."""
    return sequence(
        "coap_option",
        [
            uint("coap_option_delta", 1,
                 doc="difference to the previous option number (never 0xFF)"),
            uint("coap_option_len", 1, doc="derived: length of the option value"),
            bytes_field(
                "coap_option_value",
                Boundary.length("coap_option_len"),
                doc="option value (opaque bytes)",
            ),
        ],
        doc="one TLV option",
    )


def message_graph() -> FormatGraph:
    """Message format graph of CoAP messages over a reliable transport.

    Requests and responses share the graph; the code byte distinguishes the
    directions (methods 0.xx vs. response classes 2.xx/4.xx).
    """
    body = sequence(
        "coap_body",
        [
            uint("coap_message_id", 2, doc="message identifier"),
            uint("coap_token_len", 1, doc="derived: length of the token"),
            bytes_field(
                "coap_token",
                Boundary.length("coap_token_len"),
                doc="request/response correlation token",
            ),
            repetition(
                "coap_options",
                _option(),
                boundary=Boundary.delimited(PAYLOAD_MARKER),
                doc="delta-encoded TLV options, closed by the payload marker",
            ),
            remaining_bytes(
                "coap_payload",
                doc="representation payload, to the end of the message",
            ),
        ],
        boundary=Boundary.length("coap_message_len"),
        doc="token, options and payload, covered by the message length",
    )
    root = sequence(
        "coap_message",
        [
            uint("coap_code", 1, doc="method or response code"),
            uint("coap_message_len", 2,
                 doc="derived: number of body bytes (RFC 8323 framing length)"),
            body,
        ],
        doc="CoAP message over a reliable byte stream",
    )
    return build_graph(root, name="coap_message")
