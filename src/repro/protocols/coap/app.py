"""CoAP core application.

Builds random, well-formed logical CoAP messages (GET/POST/PUT/DELETE
requests and their responses) used as the workload of the CoAP experiments.
URI paths are drawn from pools of realistic resource segments; payloads are
short sensor-style readings.

Options are emitted in option-number order as (delta, value) pairs, which is
what the delta encoding requires; the helpers below compute the deltas from
absolute option numbers so builders never deal with them directly.  All
emitted deltas stay well below the ``0xFF`` payload marker.
"""

from __future__ import annotations

from random import Random

from ...core.message import Message
from .spec import (
    CHANGED,
    CONTENT,
    CREATED,
    DELETE,
    DELETED,
    GET,
    METHOD_CODES,
    NOT_FOUND,
    OPTION_CONTENT_FORMAT,
    OPTION_URI_PATH,
    OPTION_URI_QUERY,
    POST,
    PUT,
    RESPONSE_CODES,
)

_PATH_SEGMENTS = ("sensors", "actuators", "temp", "humidity", "valve", "well-known",
                  "core", "config", "node-1", "node-2", "light", "status")
_QUERY_WORDS = ("unit=C", "unit=hPa", "window=60", "raw=1", "avg=5m")
_PAYLOAD_WORDS = (b"21.5", b"ok", b"1013.2", b"on", b"off", b"0.93", b"ready")

#: Content-Format identifiers (text/plain, application/octet-stream,
#: application/json, application/cbor).
_CONTENT_FORMATS = (0, 42, 50, 60)

_OPTIONS_PATH = "coap_body.coap_options"


# ---------------------------------------------------------------------------
# message builders
# ---------------------------------------------------------------------------


def _set_options(message: Message, options: "list[tuple[int, bytes]]") -> None:
    """Store ``(option_number, value)`` pairs as the delta-encoded list."""
    message.set(_OPTIONS_PATH, [])
    previous = 0
    for index, (number, value) in enumerate(sorted(options, key=lambda o: o[0])):
        delta = number - previous
        if not 0 <= delta <= 0xFE:
            raise ValueError(
                f"option delta {delta} not encodable as a single byte "
                f"(option numbers {previous} -> {number})"
            )
        prefix = f"{_OPTIONS_PATH}[{index}]"
        message.set(f"{prefix}.coap_option_delta", delta)
        message.set(f"{prefix}.coap_option_value", bytes(value))
        previous = number


def decode_options(message: Message) -> "list[tuple[int, bytes]]":
    """Recover the absolute ``(option_number, value)`` pairs of a message."""
    options: "list[tuple[int, bytes]]" = []
    number = 0
    for index in range(message.list_length(_OPTIONS_PATH)):
        prefix = f"{_OPTIONS_PATH}[{index}]"
        number += message.get(f"{prefix}.coap_option_delta")
        options.append((number, message.get(f"{prefix}.coap_option_value")))
    return options


def uri_path(message: Message) -> str:
    """The slash-joined Uri-Path of a message (``""`` when absent)."""
    segments = [value.decode("latin-1")
                for number, value in decode_options(message)
                if number == OPTION_URI_PATH]
    return "/".join(segments)


def build_request(method: int, path: str, *, message_id: int = 0,
                  token: bytes = b"", payload: bytes = b"",
                  query: "tuple[str, ...]" = (),
                  content_format: int | None = None) -> Message:
    """Build a logical CoAP request for ``path`` (``"sensors/temp"`` style)."""
    if method not in METHOD_CODES:
        raise ValueError(f"unsupported method code 0x{method:02X}")
    message = Message()
    message.set("coap_code", method)
    message.set("coap_body.coap_message_id", message_id)
    message.set("coap_body.coap_token", bytes(token))
    options: "list[tuple[int, bytes]]" = [
        (OPTION_URI_PATH, segment.encode("latin-1"))
        for segment in path.split("/") if segment
    ]
    if content_format is not None:
        options.append((OPTION_CONTENT_FORMAT, bytes([content_format])))
    options.extend((OPTION_URI_QUERY, word.encode("latin-1")) for word in query)
    _set_options(message, options)
    message.set("coap_body.coap_payload", bytes(payload))
    return message


def build_response(code: int, *, message_id: int = 0, token: bytes = b"",
                   payload: bytes = b"",
                   content_format: int | None = None) -> Message:
    """Build a logical CoAP response (2.xx / 4.xx code byte)."""
    if code not in RESPONSE_CODES:
        raise ValueError(f"unsupported response code 0x{code:02X}")
    message = Message()
    message.set("coap_code", code)
    message.set("coap_body.coap_message_id", message_id)
    message.set("coap_body.coap_token", bytes(token))
    options: "list[tuple[int, bytes]]" = []
    if content_format is not None:
        options.append((OPTION_CONTENT_FORMAT, bytes([content_format])))
    _set_options(message, options)
    message.set("coap_body.coap_payload", bytes(payload))
    return message


# ---------------------------------------------------------------------------
# random workload generation
# ---------------------------------------------------------------------------


def random_path(rng: Random) -> str:
    """Draw a random resource path of one to three segments."""
    depth = rng.randrange(1, 4)
    return "/".join(rng.choice(_PATH_SEGMENTS) for _ in range(depth))


def random_payload(rng: Random) -> bytes:
    """Draw a short representation payload."""
    words = [rng.choice(_PAYLOAD_WORDS) for _ in range(rng.randrange(1, 4))]
    return b" ".join(words)


def random_token(rng: Random) -> bytes:
    """Draw a correlation token of zero to four bytes."""
    return bytes(rng.randrange(256) for _ in range(rng.randrange(0, 5)))


def random_request(rng: Random, *, method: int | None = None) -> Message:
    """Draw a random, well-formed CoAP request."""
    method = method if method is not None else rng.choice(METHOD_CODES)
    payload = b""
    content_format = None
    if method in (POST, PUT):
        payload = random_payload(rng)
        content_format = rng.choice(_CONTENT_FORMATS)
    query: "tuple[str, ...]" = ()
    if rng.random() < 0.4:
        query = tuple(rng.choice(_QUERY_WORDS)
                      for _ in range(rng.randrange(1, 3)))
    return build_request(
        method,
        random_path(rng),
        message_id=rng.randrange(0, 0x10000),
        token=random_token(rng),
        payload=payload,
        query=query,
        content_format=content_format,
    )


def respond(request: Message, rng: Random) -> Message | None:
    """Session-driver hook: a CoAP server answering one request.

    GET returns 2.05 Content with a fresh reading, POST returns 2.01
    Created, PUT returns 2.04 Changed, DELETE returns 2.02 Deleted; a path
    mentioning a resource the pools never generate would 4.04, but the
    random workload always hits known pools, so NOT_FOUND only appears via
    the explicit builder.  Message id and token are echoed (piggybacked
    response correlation).
    """
    code = request.get("coap_code")
    message_id = request.get("coap_body.coap_message_id")
    token = request.get("coap_body.coap_token")
    if code == GET:
        return build_response(CONTENT, message_id=message_id, token=token,
                              payload=random_payload(rng),
                              content_format=rng.choice(_CONTENT_FORMATS))
    if code == POST:
        return build_response(CREATED, message_id=message_id, token=token)
    if code == PUT:
        return build_response(CHANGED, message_id=message_id, token=token)
    if code == DELETE:
        return build_response(DELETED, message_id=message_id, token=token)
    # A response (or unknown code) arriving at the server side is absorbed.
    return None
