"""CoAP specification and core application (TLV options + payload marker)."""

from .app import (
    build_request,
    build_response,
    decode_options,
    random_path,
    random_payload,
    random_request,
    random_token,
    respond,
    uri_path,
)
from .spec import (
    CHANGED,
    CONTENT,
    CREATED,
    DELETE,
    DELETED,
    GET,
    METHOD_CODES,
    NOT_FOUND,
    OPTION_CONTENT_FORMAT,
    OPTION_URI_PATH,
    OPTION_URI_QUERY,
    PAYLOAD_MARKER,
    POST,
    PUT,
    RESPONSE_CODES,
    message_graph,
)
from .. import registry

#: Alias kept so the request-direction naming used by the other protocol
#: packages (and the shared fixtures) applies to CoAP as well.
request_graph = message_graph

SETUP = registry.register(
    registry.ProtocolSetup(
        key="coap",
        label="CoAP",
        graph_factory=message_graph,
        message_generator=random_request,
        responder=respond,
        description="CoAP requests/responses (delta-encoded TLV options, "
                    "payload marker)",
    )
)

__all__ = [
    "CHANGED",
    "CONTENT",
    "CREATED",
    "DELETE",
    "DELETED",
    "GET",
    "METHOD_CODES",
    "NOT_FOUND",
    "OPTION_CONTENT_FORMAT",
    "OPTION_URI_PATH",
    "OPTION_URI_QUERY",
    "PAYLOAD_MARKER",
    "POST",
    "PUT",
    "RESPONSE_CODES",
    "SETUP",
    "build_request",
    "build_response",
    "decode_options",
    "message_graph",
    "random_path",
    "random_payload",
    "random_request",
    "random_token",
    "request_graph",
    "respond",
    "uri_path",
]
