"""TCP-Modbus message format specifications.

The request and response graphs cover the message families exercised by the
paper's core application: function codes 1, 2, 3, 4, 5, 6, 15 and 16 and their
responses (the full set of distinct Modbus message formats).

Modelling notes
---------------
* The MBAP ``length`` field is a derived LENGTH field covering the unit
  identifier and the PDU, exactly as in the Modbus/TCP specification.
* ``byte_count`` fields are derived (LENGTH or COUNTER) fields: the logical
  message only carries the lists of coils/registers, and the serialization
  library computes the counts — which is also what makes the Counter and
  Length boundaries available for the BoundaryChange/TabSplit transformations.
* Each function code gets its own Optional block keyed on the
  ``function_code`` terminal, which is how the single request (resp. response)
  graph describes every message format of the protocol.
"""

from __future__ import annotations

from ...core.boundary import Boundary
from ...core.builder import build_graph, optional, repetition, sequence, tabular, uint
from ...core.graph import FormatGraph

#: Function codes exercised by the evaluation (paper Section VII).
FUNCTION_CODES = (1, 2, 3, 4, 5, 6, 15, 16)

#: Function codes of the "read" family (identical request layout).
READ_FUNCTION_CODES = (1, 2, 3, 4)

#: Function codes of the "write single" family.
WRITE_SINGLE_FUNCTION_CODES = (5, 6)

_BLOCK_NAMES = {
    1: "read_coils",
    2: "read_discrete_inputs",
    3: "read_holding_registers",
    4: "read_input_registers",
    5: "write_single_coil",
    6: "write_single_register",
    15: "write_multiple_coils",
    16: "write_multiple_registers",
}


def block_name(function_code: int) -> str:
    """Symbolic name of the request/response block of a function code."""
    return _BLOCK_NAMES[function_code]


def _mbap_and_pdu(kind: str, pdu_blocks: list) -> FormatGraph:
    """Assemble the MBAP header and the PDU blocks into a full ADU graph."""
    payload = sequence(
        f"{kind}_payload",
        [
            uint(f"{kind}_unit_id", 1, doc="MBAP unit identifier"),
            uint("function_code", 1, doc="Modbus function code"),
            *pdu_blocks,
        ],
        boundary=Boundary.length(f"{kind}_length"),
        doc="Unit identifier and PDU, covered by the MBAP length field",
    )
    root = sequence(
        f"modbus_{kind}",
        [
            uint(f"{kind}_transaction_id", 2, doc="MBAP transaction identifier"),
            uint(f"{kind}_protocol_id", 2, doc="MBAP protocol identifier (0 for Modbus)"),
            uint(f"{kind}_length", 2, doc="MBAP length: number of following bytes"),
            payload,
        ],
        doc=f"TCP-Modbus {kind} ADU",
    )
    return build_graph(root, name=f"modbus_{kind}")


def _request_block(function_code: int) -> object:
    name = block_name(function_code)
    if function_code in READ_FUNCTION_CODES:
        body = sequence(
            f"{name}_request",
            [
                uint(f"{name}_start_address", 2, doc="first coil/register address"),
                uint(f"{name}_quantity", 2, doc="number of coils/registers to read"),
            ],
        )
    elif function_code in WRITE_SINGLE_FUNCTION_CODES:
        body = sequence(
            f"{name}_request",
            [
                uint(f"{name}_address", 2, doc="coil/register address"),
                uint(f"{name}_value", 2, doc="value to write"),
            ],
        )
    elif function_code == 15:
        body = sequence(
            f"{name}_request",
            [
                uint(f"{name}_start_address", 2, doc="first coil address"),
                uint(f"{name}_quantity", 2, doc="number of coils to write"),
                uint(f"{name}_byte_count", 1,
                     doc="derived: number of coil data bytes"),
                tabular(
                    f"{name}_data",
                    uint(f"{name}_data_byte", 1, doc="packed coil values"),
                    counter=f"{name}_byte_count",
                ),
            ],
        )
    else:  # function_code == 16
        registers = tabular(
            f"{name}_registers",
            sequence(
                f"{name}_register",
                [
                    uint(f"{name}_register_hi", 1, doc="register value, high byte"),
                    uint(f"{name}_register_lo", 1, doc="register value, low byte"),
                ],
                doc="one 16-bit register encoded as two bytes",
            ),
            counter=f"{name}_quantity",
        )
        body = sequence(
            f"{name}_request",
            [
                uint(f"{name}_start_address", 2, doc="first register address"),
                uint(f"{name}_quantity", 2,
                     doc="derived: number of registers to write"),
                uint(f"{name}_byte_count", 1,
                     doc="derived: number of register data bytes"),
                sequence(
                    f"{name}_data_block",
                    [registers],
                    boundary=Boundary.length(f"{name}_byte_count"),
                    doc="register data, covered by the byte count field",
                ),
            ],
        )
    return optional(
        f"{name}_request_block",
        body,
        presence_ref="function_code",
        presence_value=function_code,
        doc=f"PDU of function code {function_code} requests",
    )


def _response_block(function_code: int) -> object:
    name = block_name(function_code)
    if function_code in READ_FUNCTION_CODES:
        if function_code in (1, 2):
            payload = tabular(
                f"{name}_status",
                uint(f"{name}_status_byte", 1, doc="packed coil/input status bits"),
                counter=f"{name}_byte_count",
            )
        else:
            payload = repetition(
                f"{name}_registers",
                uint(f"{name}_register_value", 2, doc="register value"),
                boundary=Boundary.length(f"{name}_byte_count"),
            )
        body = sequence(
            f"{name}_response",
            [
                uint(f"{name}_byte_count", 1, doc="derived: number of data bytes"),
                payload,
            ],
        )
    elif function_code in WRITE_SINGLE_FUNCTION_CODES:
        body = sequence(
            f"{name}_response",
            [
                uint(f"{name}_address", 2, doc="echoed coil/register address"),
                uint(f"{name}_value", 2, doc="echoed value"),
            ],
        )
    else:  # 15 / 16
        body = sequence(
            f"{name}_response",
            [
                uint(f"{name}_start_address", 2, doc="echoed start address"),
                uint(f"{name}_quantity", 2, doc="echoed quantity"),
            ],
        )
    return optional(
        f"{name}_response_block",
        body,
        presence_ref="function_code",
        presence_value=function_code,
        doc=f"PDU of function code {function_code} responses",
    )


def request_graph() -> FormatGraph:
    """Message format graph of every Modbus request exercised by the evaluation."""
    return _mbap_and_pdu("request", [_request_block(fc) for fc in FUNCTION_CODES])


def response_graph() -> FormatGraph:
    """Message format graph of every Modbus response exercised by the evaluation."""
    return _mbap_and_pdu("response", [_response_block(fc) for fc in FUNCTION_CODES])
