"""TCP-Modbus specification and core application (paper Section VII)."""

from .app import (
    build_request,
    build_response,
    matching_response,
    random_conversation,
    random_request,
    random_response,
    realistic_request,
    realistic_response,
)
from .spec import (
    FUNCTION_CODES,
    READ_FUNCTION_CODES,
    WRITE_SINGLE_FUNCTION_CODES,
    block_name,
    request_graph,
    response_graph,
)

__all__ = [
    "FUNCTION_CODES",
    "READ_FUNCTION_CODES",
    "WRITE_SINGLE_FUNCTION_CODES",
    "block_name",
    "build_request",
    "build_response",
    "matching_response",
    "random_conversation",
    "random_request",
    "random_response",
    "realistic_request",
    "realistic_response",
    "request_graph",
    "response_graph",
]
