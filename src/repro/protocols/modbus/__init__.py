"""TCP-Modbus specification and core application (paper Section VII)."""

from .app import (
    build_request,
    build_response,
    matching_response,
    random_conversation,
    random_request,
    random_response,
    realistic_request,
    realistic_response,
    respond,
)
from .spec import (
    FUNCTION_CODES,
    READ_FUNCTION_CODES,
    WRITE_SINGLE_FUNCTION_CODES,
    block_name,
    request_graph,
    response_graph,
)
from .. import registry

SETUP = registry.register(
    registry.ProtocolSetup(
        key="modbus",
        label="TCP-Modbus",
        graph_factory=request_graph,
        message_generator=random_request,
        response_graph_factory=response_graph,
        response_generator=random_response,
        responder=respond,
        description="TCP-Modbus (binary protocol of the paper's evaluation)",
    )
)

__all__ = [
    "SETUP",
    "FUNCTION_CODES",
    "READ_FUNCTION_CODES",
    "WRITE_SINGLE_FUNCTION_CODES",
    "block_name",
    "build_request",
    "build_response",
    "matching_response",
    "random_conversation",
    "random_request",
    "random_response",
    "realistic_request",
    "realistic_response",
    "respond",
    "request_graph",
    "response_graph",
]
