"""Modbus core application.

This module plays the role of the paper's Modbus core application: it builds
well-formed logical request and response messages for function codes 1, 2, 3,
4, 5, 6, 15 and 16 (the message set required by the simply-modbus client the
paper mentions), with values drawn from an explicit random generator so that
experiments are reproducible.

The builders return :class:`~repro.core.message.Message` objects keyed by the
field names of the non-obfuscated specification; they are completely
independent of the transformations applied to the graphs.
"""

from __future__ import annotations

from random import Random

from ...core.message import Message
from .spec import (
    FUNCTION_CODES,
    READ_FUNCTION_CODES,
    WRITE_SINGLE_FUNCTION_CODES,
    block_name,
)

_COIL_ON = 0xFF00
_COIL_OFF = 0x0000


# ---------------------------------------------------------------------------
# request builders
# ---------------------------------------------------------------------------


def build_request(function_code: int, *, transaction_id: int = 0, unit_id: int = 1,
                  **fields: object) -> Message:
    """Build a request message for ``function_code``.

    ``fields`` are the PDU parameters of the function code block (for example
    ``start_address=0, quantity=8`` for a read request, or ``registers=[1, 2]``
    for a write-multiple-registers request).
    """
    if function_code not in FUNCTION_CODES:
        raise ValueError(f"unsupported function code {function_code}")
    name = block_name(function_code)
    message = Message()
    message.set("request_transaction_id", transaction_id)
    message.set("request_protocol_id", 0)
    message.set("request_payload.request_unit_id", unit_id)
    message.set("request_payload.function_code", function_code)
    prefix = f"request_payload.{name}_request_block"
    if function_code in READ_FUNCTION_CODES:
        message.set(f"{prefix}.{name}_start_address", int(fields["start_address"]))
        message.set(f"{prefix}.{name}_quantity", int(fields["quantity"]))
    elif function_code in WRITE_SINGLE_FUNCTION_CODES:
        message.set(f"{prefix}.{name}_address", int(fields["address"]))
        message.set(f"{prefix}.{name}_value", int(fields["value"]))
    elif function_code == 15:
        data = [int(byte) for byte in fields["data"]]  # type: ignore[union-attr]
        message.set(f"{prefix}.{name}_start_address", int(fields["start_address"]))
        message.set(f"{prefix}.{name}_quantity", int(fields["quantity"]))
        message.set(f"{prefix}.{name}_data", data)
    else:  # 16
        registers = [int(register) for register in fields["registers"]]  # type: ignore[union-attr]
        message.set(f"{prefix}.{name}_start_address", int(fields["start_address"]))
        encoded = [
            {f"{name}_register_hi": register >> 8, f"{name}_register_lo": register & 0xFF}
            for register in registers
        ]
        message.set(f"{prefix}.{name}_data_block.{name}_registers", encoded)
    return message


def build_response(function_code: int, *, transaction_id: int = 0, unit_id: int = 1,
                   **fields: object) -> Message:
    """Build a response message for ``function_code``."""
    if function_code not in FUNCTION_CODES:
        raise ValueError(f"unsupported function code {function_code}")
    name = block_name(function_code)
    message = Message()
    message.set("response_transaction_id", transaction_id)
    message.set("response_protocol_id", 0)
    message.set("response_payload.response_unit_id", unit_id)
    message.set("response_payload.function_code", function_code)
    prefix = f"response_payload.{name}_response_block"
    if function_code in (1, 2):
        status = [int(byte) for byte in fields["status"]]  # type: ignore[union-attr]
        message.set(f"{prefix}.{name}_status", status)
    elif function_code in (3, 4):
        registers = [int(register) for register in fields["registers"]]  # type: ignore[union-attr]
        message.set(f"{prefix}.{name}_registers", registers)
    elif function_code in WRITE_SINGLE_FUNCTION_CODES:
        message.set(f"{prefix}.{name}_address", int(fields["address"]))
        message.set(f"{prefix}.{name}_value", int(fields["value"]))
    else:  # 15 / 16
        message.set(f"{prefix}.{name}_start_address", int(fields["start_address"]))
        message.set(f"{prefix}.{name}_quantity", int(fields["quantity"]))
    return message


# ---------------------------------------------------------------------------
# random workload generation
# ---------------------------------------------------------------------------


def random_request(rng: Random, *, function_code: int | None = None,
                   transaction_id: int | None = None) -> Message:
    """Draw a random, well-formed request message."""
    function_code = function_code if function_code is not None else rng.choice(FUNCTION_CODES)
    transaction_id = (
        transaction_id if transaction_id is not None else rng.randrange(0, 0x10000)
    )
    unit_id = rng.randrange(1, 248)
    if function_code in READ_FUNCTION_CODES:
        return build_request(
            function_code,
            transaction_id=transaction_id,
            unit_id=unit_id,
            start_address=rng.randrange(0, 0xFFFF),
            quantity=rng.randrange(1, 126),
        )
    if function_code in WRITE_SINGLE_FUNCTION_CODES:
        value = rng.choice((_COIL_ON, _COIL_OFF)) if function_code == 5 else rng.randrange(0x10000)
        return build_request(
            function_code,
            transaction_id=transaction_id,
            unit_id=unit_id,
            address=rng.randrange(0, 0xFFFF),
            value=value,
        )
    if function_code == 15:
        coil_count = rng.randrange(1, 64)
        byte_count = (coil_count + 7) // 8
        return build_request(
            15,
            transaction_id=transaction_id,
            unit_id=unit_id,
            start_address=rng.randrange(0, 0xFFFF),
            quantity=coil_count,
            data=[rng.randrange(256) for _ in range(byte_count)],
        )
    register_count = rng.randrange(1, 32)
    return build_request(
        16,
        transaction_id=transaction_id,
        unit_id=unit_id,
        start_address=rng.randrange(0, 0xFFFF),
        registers=[rng.randrange(0x10000) for _ in range(register_count)],
    )


def random_response(rng: Random, *, function_code: int | None = None,
                    transaction_id: int | None = None) -> Message:
    """Draw a random, well-formed response message."""
    function_code = function_code if function_code is not None else rng.choice(FUNCTION_CODES)
    transaction_id = (
        transaction_id if transaction_id is not None else rng.randrange(0, 0x10000)
    )
    unit_id = rng.randrange(1, 248)
    if function_code in (1, 2):
        return build_response(
            function_code,
            transaction_id=transaction_id,
            unit_id=unit_id,
            status=[rng.randrange(256) for _ in range(rng.randrange(1, 9))],
        )
    if function_code in (3, 4):
        return build_response(
            function_code,
            transaction_id=transaction_id,
            unit_id=unit_id,
            registers=[rng.randrange(0x10000) for _ in range(rng.randrange(1, 32))],
        )
    if function_code in WRITE_SINGLE_FUNCTION_CODES:
        value = rng.choice((_COIL_ON, _COIL_OFF)) if function_code == 5 else rng.randrange(0x10000)
        return build_response(
            function_code,
            transaction_id=transaction_id,
            unit_id=unit_id,
            address=rng.randrange(0, 0xFFFF),
            value=value,
        )
    return build_response(
        function_code,
        transaction_id=transaction_id,
        unit_id=unit_id,
        start_address=rng.randrange(0, 0xFFFF),
        quantity=rng.randrange(1, 64),
    )


def realistic_request(rng: Random, function_code: int, transaction_id: int,
                      *, unit_id: int = 1) -> Message:
    """Build a request with value ranges typical of real Modbus deployments.

    Unlike :func:`random_request` (which draws uniformly over the full field
    ranges, as in the paper's cost experiments), this generator uses small
    addresses/quantities and sequential transaction identifiers, which is what
    captured Modbus traffic looks like.  The resilience experiment uses it so
    that the trace given to the PRE analyst is realistic.
    """
    if function_code in READ_FUNCTION_CODES:
        return build_request(
            function_code, transaction_id=transaction_id, unit_id=unit_id,
            start_address=rng.randrange(0, 64), quantity=rng.randrange(1, 12),
        )
    if function_code in WRITE_SINGLE_FUNCTION_CODES:
        value = rng.choice((_COIL_ON, _COIL_OFF)) if function_code == 5 else rng.randrange(0, 200)
        return build_request(
            function_code, transaction_id=transaction_id, unit_id=unit_id,
            address=rng.randrange(0, 64), value=value,
        )
    if function_code == 15:
        coil_count = rng.randrange(1, 17)
        return build_request(
            15, transaction_id=transaction_id, unit_id=unit_id,
            start_address=rng.randrange(0, 64), quantity=coil_count,
            data=[rng.randrange(256) for _ in range((coil_count + 7) // 8)],
        )
    return build_request(
        16, transaction_id=transaction_id, unit_id=unit_id,
        start_address=rng.randrange(0, 64),
        registers=[rng.randrange(0, 200) for _ in range(rng.randrange(1, 6))],
    )


def realistic_response(rng: Random, function_code: int, transaction_id: int,
                       *, unit_id: int = 1) -> Message:
    """Build a response with value ranges typical of real Modbus deployments."""
    if function_code in (1, 2):
        return build_response(
            function_code, transaction_id=transaction_id, unit_id=unit_id,
            status=[rng.randrange(256) for _ in range(rng.randrange(1, 3))],
        )
    if function_code in (3, 4):
        return build_response(
            function_code, transaction_id=transaction_id, unit_id=unit_id,
            registers=[rng.randrange(0, 200) for _ in range(rng.randrange(1, 6))],
        )
    if function_code in WRITE_SINGLE_FUNCTION_CODES:
        value = rng.choice((_COIL_ON, _COIL_OFF)) if function_code == 5 else rng.randrange(0, 200)
        return build_response(
            function_code, transaction_id=transaction_id, unit_id=unit_id,
            address=rng.randrange(0, 64), value=value,
        )
    return build_response(
        function_code, transaction_id=transaction_id, unit_id=unit_id,
        start_address=rng.randrange(0, 64), quantity=rng.randrange(1, 12),
    )


def matching_response(request: Message, rng: Random) -> Message:
    """Draw a response consistent with ``request`` (same function code and transaction)."""
    function_code = request.get("request_payload.function_code")
    transaction_id = request.get("request_transaction_id")
    return random_response(rng, function_code=function_code, transaction_id=transaction_id)


def respond(request: Message, rng: Random) -> Message:
    """Session-driver hook: a Modbus server answers every request it decodes."""
    return matching_response(request, rng)


def random_conversation(rng: Random, exchanges: int) -> list[tuple[str, Message]]:
    """Draw an alternating request/response conversation of ``exchanges`` exchanges."""
    conversation: list[tuple[str, Message]] = []
    for _ in range(exchanges):
        request = random_request(rng)
        conversation.append(("request", request))
        conversation.append(("response", matching_response(request, rng)))
    return conversation
