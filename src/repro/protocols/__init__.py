"""Protocol specifications and core applications used in the evaluation.

The paper evaluates the framework on two protocols: a binary protocol
(TCP-Modbus) and a text protocol (HTTP/1.1).  Each protocol subpackage
provides the message format graphs (the specification ``S`` of the paper) and
a *core application* that builds random, well-formed logical messages — the
role played by the simply-modbus-driven client and the simplified HTTP
application in the paper's experiments.
"""

from . import http, modbus

__all__ = ["http", "modbus"]
