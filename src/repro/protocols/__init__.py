"""Protocol specifications and core applications used in the evaluation.

The paper evaluates the framework on two protocols: a binary protocol
(TCP-Modbus) and a text protocol (HTTP/1.1).  Three further workloads extend
the evaluation beyond the paper: DNS (binary, length-prefixed label
sequences), MQTT (binary, variable-length header) and CoAP (delta-encoded
TLV options closed by a payload marker).  Each protocol
subpackage provides the message format graphs (the specification ``S`` of the
paper) and a *core application* that builds random, well-formed logical
messages — the role played by the simply-modbus-driven client and the
simplified HTTP application in the paper's experiments.

Protocol packages register themselves with :mod:`repro.protocols.registry` at
import time; consumers resolve them through ``registry.get(key)`` /
``registry.available()`` rather than importing the packages directly.
"""

from . import registry
from . import coap, dns, http, modbus, mqtt

__all__ = ["coap", "dns", "http", "modbus", "mqtt", "registry"]
