"""MQTT message format specifications (CONNECT / PUBLISH packet families).

MQTT is the variable-length-header workload added on top of the paper's two
case studies.  A packet is a one-byte fixed header (packet type and flags), a
remaining-length field covering everything that follows, and a variable header
plus payload whose layout depends on the packet type — the same
"one graph describes every message format" construction as the Modbus
function-code blocks:

* the remaining length is a derived LENGTH field backing the packet body,
* each packet family is an Optional block keyed on the fixed-header byte,
* MQTT strings (protocol name, client identifier, topic) are two-byte derived
  LENGTH prefixes followed by the text, and
* the QoS-0 PUBLISH payload stretches to the end of the remaining-length
  window (an END boundary, like the HTTP body).

Modelling notes
---------------
* The MQTT remaining length is a one-to-four byte varint on the wire; the
  format-graph vocabulary derives length fields as fixed-width integers, so it
  is modelled as a two-byte field — the same style of simplification as the
  paper's simplified HTTP application.  All other layouts follow MQTT 3.1.1.
* Two PUBLISH families are modelled: QoS 0 (no packet identifier, payload runs
  to the end of the packet) and QoS 1 (packet identifier, length-prefixed
  payload so the graph also exercises a bounded binary payload).
* PINGREQ is supported as the degenerate family with an empty body.
"""

from __future__ import annotations

from ...core.boundary import Boundary
from ...core.builder import (
    build_graph,
    bytes_field,
    optional,
    remaining_bytes,
    sequence,
    text_field,
    uint,
)
from ...core.graph import FormatGraph
from ...core.node import Node

#: Fixed-header byte of each modelled packet family (type nibble + flags).
CONNECT = 0x10
PUBLISH_QOS0 = 0x30
PUBLISH_QOS1 = 0x32
PINGREQ = 0xC0

#: Every packet family understood by the specification.
PACKET_TYPES = (CONNECT, PUBLISH_QOS0, PUBLISH_QOS1, PINGREQ)

#: Protocol name and level carried by CONNECT packets (MQTT 3.1.1).
PROTOCOL_NAME = "MQTT"
PROTOCOL_LEVEL = 4


def _mqtt_string(prefix: str, *, doc: str) -> list[Node]:
    """A two-byte length prefix followed by the UTF-8 text (MQTT string)."""
    return [
        uint(f"{prefix}_len", 2, doc=f"derived: length of the {doc}"),
        text_field(f"{prefix}", Boundary.length(f"{prefix}_len"), doc=doc),
    ]


def _connect_block() -> Node:
    body = sequence(
        "connect",
        [
            *_mqtt_string("connect_proto_name", doc="protocol name ('MQTT')"),
            uint("connect_proto_level", 1, doc="protocol level (4 for MQTT 3.1.1)"),
            uint("connect_flags", 1, doc="connect flag bits"),
            uint("connect_keepalive", 2, doc="keep-alive interval, seconds"),
            *_mqtt_string("connect_client_id", doc="client identifier"),
        ],
        doc="CONNECT variable header and payload",
    )
    return optional(
        "connect_block",
        body,
        presence_ref="packet_type",
        presence_value=CONNECT,
        doc="body of CONNECT packets",
    )


def _publish_qos1_block() -> Node:
    body = sequence(
        "publish_qos1",
        [
            *_mqtt_string("publish_qos1_topic", doc="topic name"),
            uint("publish_qos1_packet_id", 2, doc="packet identifier (QoS 1)"),
            uint("publish_qos1_payload_len", 2, doc="derived: length of the payload"),
            bytes_field(
                "publish_qos1_payload",
                Boundary.length("publish_qos1_payload_len"),
                doc="application payload",
            ),
        ],
        doc="PUBLISH (QoS 1) variable header and payload",
    )
    return optional(
        "publish_qos1_block",
        body,
        presence_ref="packet_type",
        presence_value=PUBLISH_QOS1,
        doc="body of QoS-1 PUBLISH packets",
    )


def _publish_qos0_block() -> Node:
    body = sequence(
        "publish_qos0",
        [
            *_mqtt_string("publish_qos0_topic", doc="topic name"),
            remaining_bytes(
                "publish_qos0_payload",
                doc="application payload, to the end of the packet",
            ),
        ],
        doc="PUBLISH (QoS 0) variable header and payload",
    )
    return optional(
        "publish_qos0_block",
        body,
        presence_ref="packet_type",
        presence_value=PUBLISH_QOS0,
        doc="body of QoS-0 PUBLISH packets",
    )


def packet_graph() -> FormatGraph:
    """Message format graph of every MQTT packet family the evaluation exercises.

    The QoS-0 PUBLISH block comes last because its payload is greedy within
    the remaining-length window.
    """
    body = sequence(
        "mqtt_body",
        [
            _connect_block(),
            _publish_qos1_block(),
            _publish_qos0_block(),
        ],
        boundary=Boundary.length("remaining_length"),
        doc="variable header and payload, covered by the remaining length",
    )
    root = sequence(
        "mqtt_packet",
        [
            uint("packet_type", 1, doc="fixed header: packet type and flags"),
            uint("remaining_length", 2,
                 doc="derived: number of body bytes (varint on real wire, "
                     "modelled as two bytes)"),
            body,
        ],
        doc="MQTT control packet",
    )
    return build_graph(root, name="mqtt_packet")
