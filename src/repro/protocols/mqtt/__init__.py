"""MQTT specification and core application (variable-length-header workload)."""

from .app import (
    build_connect,
    build_pingreq,
    build_publish,
    random_packet,
    random_payload,
    random_session,
    random_topic,
    respond,
)
from .spec import (
    CONNECT,
    PACKET_TYPES,
    PINGREQ,
    PROTOCOL_LEVEL,
    PROTOCOL_NAME,
    PUBLISH_QOS0,
    PUBLISH_QOS1,
    packet_graph,
)
from .. import registry

#: Alias kept so that the request-direction naming used by the other protocol
#: packages (and the shared fixtures) applies to MQTT as well.
request_graph = packet_graph
random_request = random_packet

SETUP = registry.register(
    registry.ProtocolSetup(
        key="mqtt",
        label="MQTT",
        graph_factory=packet_graph,
        message_generator=random_packet,
        responder=respond,
        description="MQTT CONNECT/PUBLISH packets (binary, variable-length header)",
    )
)

__all__ = [
    "CONNECT",
    "PACKET_TYPES",
    "PINGREQ",
    "PROTOCOL_LEVEL",
    "PROTOCOL_NAME",
    "PUBLISH_QOS0",
    "PUBLISH_QOS1",
    "SETUP",
    "build_connect",
    "build_pingreq",
    "build_publish",
    "packet_graph",
    "random_packet",
    "random_payload",
    "random_request",
    "random_session",
    "respond",
    "random_topic",
    "request_graph",
]
