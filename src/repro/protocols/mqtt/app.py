"""MQTT core application.

Builds random, well-formed logical MQTT packets (CONNECT, PUBLISH at QoS 0
and 1, PINGREQ) used as the workload of the MQTT experiments.  Topics and
client identifiers are drawn from pools of realistic names; payloads are short
opaque byte strings.

The builders return :class:`~repro.core.message.Message` objects keyed by the
field names of the non-obfuscated specification; derived fields (remaining
length, string lengths) never appear in the logical message.
"""

from __future__ import annotations

from random import Random

from ...core.message import Message
from .spec import (
    CONNECT,
    PACKET_TYPES,
    PINGREQ,
    PROTOCOL_LEVEL,
    PROTOCOL_NAME,
    PUBLISH_QOS0,
    PUBLISH_QOS1,
)

_CLIENT_IDS = ("sensor-01", "sensor-02", "gateway-a", "gateway-b", "probe-7",
               "meter-42", "repro-client")
_TOPIC_SEGMENTS = ("factory", "line", "cell", "sensors", "temperature",
                   "pressure", "humidity", "status", "alerts", "metrics")
_PAYLOAD_WORDS = (b"21.5", b"ok", b"37", b"low", b"high", b"0.93", b"ready",
                  b"fault", b"idle")


# ---------------------------------------------------------------------------
# packet builders
# ---------------------------------------------------------------------------


_CONNECT_PREFIX = "mqtt_body.connect_block"
_QOS0_PREFIX = "mqtt_body.publish_qos0_block"
_QOS1_PREFIX = "mqtt_body.publish_qos1_block"


def build_connect(client_id: str, *, keepalive: int = 60, flags: int = 0x02) -> Message:
    """Build a logical CONNECT packet (clean-session flag set by default)."""
    message = Message()
    message.set("packet_type", CONNECT)
    message.set(f"{_CONNECT_PREFIX}.connect_proto_name", PROTOCOL_NAME)
    message.set(f"{_CONNECT_PREFIX}.connect_proto_level", PROTOCOL_LEVEL)
    message.set(f"{_CONNECT_PREFIX}.connect_flags", flags)
    message.set(f"{_CONNECT_PREFIX}.connect_keepalive", keepalive)
    message.set(f"{_CONNECT_PREFIX}.connect_client_id", client_id)
    return message


def build_publish(topic: str, payload: bytes, *, qos: int = 0,
                  packet_id: int | None = None) -> Message:
    """Build a logical PUBLISH packet at QoS 0 or 1.

    QoS 1 packets carry a ``packet_id`` (default 1); QoS 0 packets must not.
    """
    message = Message()
    if qos == 0:
        if packet_id is not None:
            raise ValueError("QoS-0 PUBLISH packets carry no packet identifier")
        message.set("packet_type", PUBLISH_QOS0)
        message.set(f"{_QOS0_PREFIX}.publish_qos0_topic", topic)
        message.set(f"{_QOS0_PREFIX}.publish_qos0_payload", bytes(payload))
    elif qos == 1:
        message.set("packet_type", PUBLISH_QOS1)
        message.set(f"{_QOS1_PREFIX}.publish_qos1_topic", topic)
        message.set(f"{_QOS1_PREFIX}.publish_qos1_packet_id",
                    packet_id if packet_id is not None else 1)
        message.set(f"{_QOS1_PREFIX}.publish_qos1_payload", bytes(payload))
    else:
        raise ValueError(f"unsupported QoS level {qos} (modelled: 0 and 1)")
    return message


def build_pingreq() -> Message:
    """Build a logical PINGREQ packet (empty body)."""
    message = Message()
    message.set("packet_type", PINGREQ)
    return message


# ---------------------------------------------------------------------------
# random workload generation
# ---------------------------------------------------------------------------


def random_topic(rng: Random) -> str:
    """Draw a random slash-separated topic of two to four levels."""
    depth = rng.randrange(2, 5)
    return "/".join(rng.choice(_TOPIC_SEGMENTS) for _ in range(depth))


def random_payload(rng: Random) -> bytes:
    """Draw a short application payload."""
    words = [rng.choice(_PAYLOAD_WORDS) for _ in range(rng.randrange(1, 6))]
    return b" ".join(words)


def random_packet(rng: Random, *, packet_type: int | None = None) -> Message:
    """Draw a random, well-formed MQTT packet of any modelled family."""
    packet_type = packet_type if packet_type is not None else rng.choice(PACKET_TYPES)
    if packet_type == CONNECT:
        return build_connect(
            rng.choice(_CLIENT_IDS),
            keepalive=rng.randrange(10, 3600),
            flags=rng.choice((0x00, 0x02)),
        )
    if packet_type == PUBLISH_QOS0:
        return build_publish(random_topic(rng), random_payload(rng), qos=0)
    if packet_type == PUBLISH_QOS1:
        return build_publish(
            random_topic(rng),
            random_payload(rng),
            qos=1,
            packet_id=rng.randrange(1, 0x10000),
        )
    if packet_type == PINGREQ:
        return build_pingreq()
    raise ValueError(f"unsupported packet type 0x{packet_type:02X}")


def respond(packet: Message, rng: Random) -> Message | None:
    """Session-driver hook: the broker side of one MQTT session.

    PINGREQ is echoed back (standing in for PINGRESP, which the spec does
    not model), PUBLISH packets are forwarded to the session as QoS-0
    deliveries — the broker-to-subscriber leg — and CONNECT is absorbed
    (CONNACK is likewise out of the modelled packet families).
    """
    packet_type = packet.get("packet_type")
    if packet_type == PINGREQ:
        return build_pingreq()
    if packet_type == PUBLISH_QOS0:
        return build_publish(
            packet.get(f"{_QOS0_PREFIX}.publish_qos0_topic"),
            packet.get(f"{_QOS0_PREFIX}.publish_qos0_payload"),
            qos=0,
        )
    if packet_type == PUBLISH_QOS1:
        return build_publish(
            packet.get(f"{_QOS1_PREFIX}.publish_qos1_topic"),
            packet.get(f"{_QOS1_PREFIX}.publish_qos1_payload"),
            qos=0,
        )
    return None


def random_session(rng: Random, publishes: int) -> list[Message]:
    """Draw a plausible session: CONNECT, then ``publishes`` PUBLISH packets."""
    session = [random_packet(rng, packet_type=CONNECT)]
    for _ in range(publishes):
        session.append(
            random_packet(rng, packet_type=rng.choice((PUBLISH_QOS0, PUBLISH_QOS1)))
        )
    return session
