"""DNS core application.

Builds random, well-formed logical DNS queries and responses used as the
workload of the DNS experiments.  Domain names are drawn from pools of common
labels; record data is drawn with the length appropriate to the record type
(4 bytes for A, 16 for AAAA, a short opaque string otherwise).

As everywhere in :mod:`repro.protocols`, the builders return
:class:`~repro.core.message.Message` objects keyed by the field names of the
non-obfuscated specification and are completely independent of the
transformations applied to the graphs.
"""

from __future__ import annotations

from random import Random

from ...core.message import Message
from .spec import CLASS_IN, QUERY_FLAGS, RECORD_TYPES, RESPONSE_FLAGS

#: (domain, type, class) triple describing one question.
Question = tuple[str, int, int]

#: (domain, type, class, ttl, rdata) tuple describing one answer record.
Answer = tuple[str, int, int, int, bytes]

_LABEL_POOL = ("www", "api", "mail", "cdn", "static", "example", "repro", "corp",
               "internal", "edge", "eu", "us", "net", "org", "com", "io")
_TXT_WORDS = (b"v=spf1", b"include:example.com", b"all", b"ok", b"probe")

#: rdata size of the fixed-size record types (A and AAAA addresses).
_FIXED_RDATA_SIZES = {1: 4, 28: 16}


def split_labels(domain: str) -> list[str]:
    """Split ``domain`` into its non-empty labels (``"www.example.com"`` style)."""
    labels = [label for label in domain.split(".") if label]
    for label in labels:
        if len(label) > 63:
            raise ValueError(f"label {label!r} exceeds the 63-byte DNS limit")
    return labels


def _set_name(message: Message, list_path: str, prefix: str, domain: str) -> None:
    """Store ``domain`` as the label list rooted at ``list_path``."""
    message.set(list_path, [])
    for index, label in enumerate(split_labels(domain)):
        message.set(f"{list_path}[{index}].{prefix}_label_text", label)


# ---------------------------------------------------------------------------
# message builders
# ---------------------------------------------------------------------------


def build_query(questions: list[Question], *, query_id: int = 0,
                flags: int = QUERY_FLAGS, nscount: int = 0, arcount: int = 0) -> Message:
    """Build a logical DNS query carrying ``questions``.

    Each question is a ``(domain, qtype, qclass)`` triple; ``qdcount`` is a
    derived counter and never appears in the logical message.
    """
    message = Message()
    message.set("query_id", query_id)
    message.set("query_flags", flags)
    message.set("query_ancount", 0)
    message.set("query_nscount", nscount)
    message.set("query_arcount", arcount)
    message.set("query_questions", [])
    for index, (domain, qtype, qclass) in enumerate(questions):
        prefix = f"query_questions[{index}]"
        _set_name(message, f"{prefix}.query_question_name", "query_question", domain)
        message.set(f"{prefix}.query_qtype", qtype)
        message.set(f"{prefix}.query_qclass", qclass)
    return message


def build_response(questions: list[Question], answers: list[Answer], *,
                   response_id: int = 0, flags: int = RESPONSE_FLAGS,
                   nscount: int = 0, arcount: int = 0) -> Message:
    """Build a logical DNS response echoing ``questions`` and carrying ``answers``."""
    message = Message()
    message.set("response_id", response_id)
    message.set("response_flags", flags)
    message.set("response_nscount", nscount)
    message.set("response_arcount", arcount)
    message.set("response_questions", [])
    for index, (domain, qtype, qclass) in enumerate(questions):
        prefix = f"response_questions[{index}]"
        _set_name(message, f"{prefix}.response_question_name", "response_question", domain)
        message.set(f"{prefix}.response_qtype", qtype)
        message.set(f"{prefix}.response_qclass", qclass)
    message.set("response_answers", [])
    for index, (domain, rtype, rclass, ttl, rdata) in enumerate(answers):
        prefix = f"response_answers[{index}]"
        _set_name(message, f"{prefix}.answer_name", "answer", domain)
        message.set(f"{prefix}.answer_type", rtype)
        message.set(f"{prefix}.answer_class", rclass)
        message.set(f"{prefix}.answer_ttl", ttl)
        message.set(f"{prefix}.answer_rdata", bytes(rdata))
    return message


# ---------------------------------------------------------------------------
# random workload generation
# ---------------------------------------------------------------------------


def random_domain(rng: Random) -> str:
    """Draw a random domain of two to four labels."""
    depth = rng.randrange(2, 5)
    return ".".join(rng.choice(_LABEL_POOL) for _ in range(depth))


def random_rdata(rng: Random, record_type: int) -> bytes:
    """Draw record data sized appropriately for ``record_type``."""
    fixed = _FIXED_RDATA_SIZES.get(record_type)
    if fixed is not None:
        return bytes(rng.randrange(256) for _ in range(fixed))
    if record_type == 16:  # TXT: short readable strings
        return b" ".join(rng.choice(_TXT_WORDS) for _ in range(rng.randrange(1, 4)))
    return bytes(rng.randrange(256) for _ in range(rng.randrange(1, 17)))


def _random_question(rng: Random) -> Question:
    return (random_domain(rng), rng.choice(RECORD_TYPES), CLASS_IN)


def random_query(rng: Random, *, question_count: int | None = None,
                 query_id: int | None = None) -> Message:
    """Draw a random, well-formed DNS query."""
    count = question_count if question_count is not None else rng.randrange(1, 4)
    return build_query(
        [_random_question(rng) for _ in range(count)],
        query_id=query_id if query_id is not None else rng.randrange(0, 0x10000),
    )


def random_response(rng: Random, *, response_id: int | None = None) -> Message:
    """Draw a random, well-formed DNS response."""
    questions = [_random_question(rng) for _ in range(rng.randrange(1, 3))]
    answers: list[Answer] = []
    for domain, qtype, qclass in questions:
        for _ in range(rng.randrange(0, 3)):
            answers.append(
                (domain, qtype, qclass, rng.randrange(0, 86400), random_rdata(rng, qtype))
            )
    return build_response(
        questions,
        answers,
        response_id=response_id if response_id is not None else rng.randrange(0, 0x10000),
    )


def matching_response(query: Message, rng: Random) -> Message:
    """Draw a response answering every question of ``query``."""
    questions: list[Question] = []
    for index in range(query.list_length("query_questions")):
        prefix = f"query_questions[{index}]"
        labels = [
            query.get(f"{prefix}.query_question_name[{j}].query_question_label_text")
            for j in range(query.list_length(f"{prefix}.query_question_name"))
        ]
        questions.append(
            (".".join(labels), query.get(f"{prefix}.query_qtype"),
             query.get(f"{prefix}.query_qclass"))
        )
    answers = [
        (domain, qtype, qclass, rng.randrange(60, 3600), random_rdata(rng, qtype))
        for domain, qtype, qclass in questions
    ]
    return build_response(questions, answers, response_id=query.get("query_id"))


def respond(query: Message, rng: Random) -> Message:
    """Session-driver hook: a resolver answers every question of the query."""
    return matching_response(query, rng)


def random_conversation(rng: Random, exchanges: int) -> list[tuple[str, Message]]:
    """Draw an alternating query/response DNS conversation."""
    conversation: list[tuple[str, Message]] = []
    for _ in range(exchanges):
        query = random_query(rng)
        conversation.append(("request", query))
        conversation.append(("response", matching_response(query, rng)))
    return conversation
