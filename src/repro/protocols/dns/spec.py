"""DNS message format specifications.

DNS is the binary, length-prefixed workload added on top of the paper's two
case studies: domain names are *label sequences* — each label is a one-byte
length prefix followed by that many characters, and the sequence is terminated
by a zero byte.  This maps directly onto the format-graph vocabulary:

* a label is a Sequence of a derived one-byte LENGTH field and a text terminal
  bounded by it,
* a name is a Repetition of labels whose DELIMITED boundary is the ``\\x00``
  terminator (the same construction as the empty CRLF line that ends the HTTP
  header block),
* the header counts (``qdcount``, ``ancount``) are derived COUNTER fields
  backing the question and answer Tabular sections, like the Modbus byte
  counts.

Modelling notes
---------------
* Name compression (pointer labels, RFC 1035 §4.1.4) is not modelled: every
  name is spelled out in full, which is also what queries on the wire look
  like.
* The query graph carries ``nscount``/``arcount`` as plain logical fields (the
  core application sets them to 0); the response graph models the answer
  section and leaves authority/additional records out of scope, mirroring the
  simplifications of the paper's "simplified HTTP" application.
* ``rdata`` is an opaque byte string bounded by the derived ``rdlength``
  field, so record payloads of any type round-trip unchanged.
"""

from __future__ import annotations

from ...core.boundary import Boundary
from ...core.builder import (
    build_graph,
    bytes_field,
    repetition,
    sequence,
    tabular,
    text_field,
    uint,
)
from ...core.graph import FormatGraph
from ...core.node import Node

#: Record types exercised by the core application (A, NS, CNAME, PTR, MX, TXT, AAAA).
RECORD_TYPES = (1, 2, 5, 12, 15, 16, 28)

#: The Internet class (IN), the only class the evaluation uses.
CLASS_IN = 1

#: Terminator of a label sequence: the zero-length root label.
NAME_TERMINATOR = b"\x00"

#: Flag words used by the core application (standard query / standard response).
QUERY_FLAGS = 0x0100
RESPONSE_FLAGS = 0x8180


def _name(prefix: str) -> Node:
    """A domain name: labels (length byte + text) terminated by a zero byte."""
    label = sequence(
        f"{prefix}_label",
        [
            uint(f"{prefix}_label_len", 1, doc="derived: length of the label"),
            text_field(
                f"{prefix}_label_text",
                Boundary.length(f"{prefix}_label_len"),
                doc="one domain-name label",
            ),
        ],
        doc="one length-prefixed label",
    )
    return repetition(
        f"{prefix}_name",
        label,
        boundary=Boundary.delimited(NAME_TERMINATOR),
        doc="label sequence terminated by the zero-length root label",
    )


def _header(kind: str, *, question_counter: str, answer_counter: str | None) -> list[Node]:
    """The twelve-byte DNS header of a ``kind`` (query/response) message."""
    fields = [
        uint(f"{kind}_id", 2, doc="transaction identifier"),
        uint(f"{kind}_flags", 2, doc="flag word (QR, opcode, RD, RA, rcode)"),
        uint(question_counter, 2, doc="derived: number of question entries"),
    ]
    if answer_counter is None:
        fields.append(uint(f"{kind}_ancount", 2, doc="number of answer records"))
    else:
        fields.append(uint(answer_counter, 2, doc="derived: number of answer records"))
    fields.extend(
        [
            uint(f"{kind}_nscount", 2, doc="number of authority records"),
            uint(f"{kind}_arcount", 2, doc="number of additional records"),
        ]
    )
    return fields


def _question(prefix: str) -> Node:
    """One entry of the question section: name, type, class."""
    return sequence(
        f"{prefix}_question",
        [
            _name(f"{prefix}_question"),
            uint(f"{prefix}_qtype", 2, doc="query type (A, NS, CNAME, ...)"),
            uint(f"{prefix}_qclass", 2, doc="query class (IN)"),
        ],
        doc="one question entry",
    )


def query_graph() -> FormatGraph:
    """Message format graph of DNS queries (header + question section)."""
    root = sequence(
        "dns_query",
        [
            *_header("query", question_counter="query_qdcount", answer_counter=None),
            tabular(
                "query_questions",
                _question("query"),
                counter="query_qdcount",
                doc="question section",
            ),
        ],
        doc="DNS query message",
    )
    return build_graph(root, name="dns_query")


def _answer() -> Node:
    """One resource record of the answer section."""
    return sequence(
        "answer_record",
        [
            _name("answer"),
            uint("answer_type", 2, doc="record type"),
            uint("answer_class", 2, doc="record class (IN)"),
            uint("answer_ttl", 4, doc="time to live, seconds"),
            uint("answer_rdlength", 2, doc="derived: length of the record data"),
            bytes_field(
                "answer_rdata",
                Boundary.length("answer_rdlength"),
                doc="record data (opaque bytes)",
            ),
        ],
        doc="one answer resource record",
    )


def response_graph() -> FormatGraph:
    """Message format graph of DNS responses (header + questions + answers)."""
    root = sequence(
        "dns_response",
        [
            *_header(
                "response",
                question_counter="response_qdcount",
                answer_counter="response_ancount",
            ),
            tabular(
                "response_questions",
                _question("response"),
                counter="response_qdcount",
                doc="echoed question section",
            ),
            tabular(
                "response_answers",
                _answer(),
                counter="response_ancount",
                doc="answer section",
            ),
        ],
        doc="DNS response message",
    )
    return build_graph(root, name="dns_response")
