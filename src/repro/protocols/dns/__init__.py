"""DNS specification and core application (binary, length-prefixed workload)."""

from .app import (
    build_query,
    build_response,
    matching_response,
    random_conversation,
    random_domain,
    random_query,
    random_rdata,
    random_response,
    respond,
    split_labels,
)
from .spec import (
    CLASS_IN,
    NAME_TERMINATOR,
    QUERY_FLAGS,
    RECORD_TYPES,
    RESPONSE_FLAGS,
    query_graph,
    response_graph,
)
from .. import registry

#: Alias kept so that the request/response naming used by the other protocol
#: packages (and the shared fixtures) applies to DNS as well.
request_graph = query_graph
random_request = random_query

SETUP = registry.register(
    registry.ProtocolSetup(
        key="dns",
        label="DNS",
        graph_factory=query_graph,
        message_generator=random_query,
        response_graph_factory=response_graph,
        response_generator=random_response,
        responder=respond,
        description="DNS queries/responses (binary, length-prefixed label sequences)",
    )
)

__all__ = [
    "CLASS_IN",
    "NAME_TERMINATOR",
    "QUERY_FLAGS",
    "RECORD_TYPES",
    "RESPONSE_FLAGS",
    "SETUP",
    "build_query",
    "build_response",
    "matching_response",
    "query_graph",
    "random_conversation",
    "random_domain",
    "random_query",
    "random_rdata",
    "random_request",
    "random_response",
    "respond",
    "request_graph",
    "response_graph",
    "split_labels",
]
