"""Terminal value kinds, byte-level codecs and invertible value operations.

Terminal nodes of a message format graph carry values of one of three kinds:

* ``UINT`` — fixed-width unsigned integers (big or little endian),
* ``BYTES`` — raw byte strings,
* ``TEXT`` — textual fields, stored as ``str`` and encoded with Latin-1 so
  that any byte value round-trips (real protocols in the evaluation, Modbus
  and HTTP, only use ASCII).

Aggregation transformations of the paper (ConstAdd, ConstSub, ConstXor and the
value-combination half of SplitAdd/SplitSub/SplitXor/SplitCat) operate on
these values.  :class:`ValueOp` is the invertible per-value operation attached
to a terminal's *codec chain*, and :func:`combine_split` /
:func:`choose_split` implement the two-way value synthesis used by the Split*
transformations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from random import Random
from typing import Union

from .errors import SerializationError

Value = Union[int, bytes, str]


class ValueKind(str, enum.Enum):
    """Kind of the value carried by a Terminal node."""

    UINT = "uint"
    BYTES = "bytes"
    TEXT = "text"


class Endian(str, enum.Enum):
    """Byte order of UINT terminals."""

    BIG = "big"
    LITTLE = "little"


_TEXT_ENCODING = "latin-1"


# ---------------------------------------------------------------------------
# raw encode / decode
# ---------------------------------------------------------------------------


def encode_uint(value: int, size: int, endian: Endian = Endian.BIG) -> bytes:
    """Encode an unsigned integer on ``size`` bytes."""
    if size <= 0:
        raise SerializationError(f"uint size must be positive, got {size}")
    if not isinstance(value, int):
        raise SerializationError(f"expected an int, got {type(value).__name__}")
    modulus = 1 << (8 * size)
    if not 0 <= value < modulus:
        raise SerializationError(f"value {value} does not fit in {size} byte(s)")
    return value.to_bytes(size, endian.value)


def decode_uint(data: bytes, endian: Endian = Endian.BIG) -> int:
    """Decode an unsigned integer from its byte representation."""
    return int.from_bytes(data, endian.value)


def encode_value(value: Value, kind: ValueKind, *, size: int | None = None,
                 endian: Endian = Endian.BIG) -> bytes:
    """Encode a logical value of the given ``kind`` into bytes.

    ``size`` is mandatory for ``UINT`` values and optional for the others (it
    is only used to check fixed-size constraints).
    """
    if kind is ValueKind.UINT:
        if size is None:
            raise SerializationError("UINT terminals require a fixed size")
        return encode_uint(int(value), size, endian)
    if kind is ValueKind.BYTES:
        if isinstance(value, (bytes, bytearray)):
            data = bytes(value)
        elif isinstance(value, str):
            data = value.encode(_TEXT_ENCODING)
        else:
            raise SerializationError(f"cannot encode {type(value).__name__} as bytes")
    elif kind is ValueKind.TEXT:
        if isinstance(value, str):
            data = value.encode(_TEXT_ENCODING)
        elif isinstance(value, (bytes, bytearray)):
            data = bytes(value)
        else:
            raise SerializationError(f"cannot encode {type(value).__name__} as text")
    else:  # pragma: no cover - exhaustive enum
        raise SerializationError(f"unknown value kind {kind!r}")
    if size is not None and len(data) != size:
        raise SerializationError(
            f"fixed-size field expects {size} byte(s), value has {len(data)}"
        )
    return data


def decode_value(data: bytes, kind: ValueKind, *, endian: Endian = Endian.BIG) -> Value:
    """Decode bytes into a logical value of the given ``kind``."""
    if kind is ValueKind.UINT:
        return decode_uint(data, endian)
    if kind is ValueKind.BYTES:
        return bytes(data)
    if kind is ValueKind.TEXT:
        return data.decode(_TEXT_ENCODING)
    raise SerializationError(f"unknown value kind {kind!r}")  # pragma: no cover


def default_value(kind: ValueKind) -> Value:
    """Neutral value used for padding-free defaults of a kind."""
    if kind is ValueKind.UINT:
        return 0
    if kind is ValueKind.BYTES:
        return b""
    return ""


def value_byte_length(value: Value, kind: ValueKind, *, size: int | None = None) -> int:
    """Length in bytes of the encoded value (without applying value ops)."""
    if kind is ValueKind.UINT:
        if size is None:
            raise SerializationError("UINT terminals require a fixed size")
        return size
    return len(encode_value(value, kind))


# ---------------------------------------------------------------------------
# invertible value operations (codec chain of aggregation transformations)
# ---------------------------------------------------------------------------


class ValueOpKind(str, enum.Enum):
    """Arithmetic family of a :class:`ValueOp`."""

    ADD = "add"
    SUB = "sub"
    XOR = "xor"


@dataclass(frozen=True)
class ValueOp:
    """One invertible value operation of a terminal's codec chain.

    ``bytewise`` operations apply the constant to each byte modulo 256 and are
    used for BYTES/TEXT terminals; non-bytewise operations apply the constant
    to the whole unsigned integer modulo ``2**(8*width)``.
    """

    kind: ValueOpKind
    constant: int
    bytewise: bool = False
    width: int | None = None

    def apply(self, value: Value, value_kind: ValueKind) -> Value:
        """Obfuscating direction (applied before encoding the value)."""
        return self._run(value, value_kind, inverse=False)

    def invert(self, value: Value, value_kind: ValueKind) -> Value:
        """Deobfuscating direction (applied after decoding the value)."""
        return self._run(value, value_kind, inverse=True)

    # -- internals ----------------------------------------------------------

    def _run(self, value: Value, value_kind: ValueKind, *, inverse: bool) -> Value:
        if self.bytewise:
            data = encode_value(value, value_kind)
            out = bytes(self._byte_op(byte, inverse) for byte in data)
            return decode_value(out, value_kind)
        if value_kind is not ValueKind.UINT:
            raise SerializationError(
                "non-bytewise value operations only apply to UINT terminals"
            )
        if self.width is None:
            raise SerializationError("integer value operations require a width")
        modulus = 1 << (8 * self.width)
        return self._int_op(int(value), modulus, inverse)

    def _byte_op(self, byte: int, inverse: bool) -> int:
        constant = self.constant & 0xFF
        if self.kind is ValueOpKind.XOR:
            return byte ^ constant
        if self.kind is ValueOpKind.ADD:
            return (byte - constant) % 256 if inverse else (byte + constant) % 256
        # SUB
        return (byte + constant) % 256 if inverse else (byte - constant) % 256

    def _int_op(self, value: int, modulus: int, inverse: bool) -> int:
        constant = self.constant % modulus
        if self.kind is ValueOpKind.XOR:
            return value ^ constant
        if self.kind is ValueOpKind.ADD:
            return (value - constant) % modulus if inverse else (value + constant) % modulus
        # SUB
        return (value + constant) % modulus if inverse else (value - constant) % modulus


def apply_chain(value: Value, value_kind: ValueKind, chain: tuple[ValueOp, ...]) -> Value:
    """Apply a codec chain in obfuscating order."""
    for op in chain:
        value = op.apply(value, value_kind)
    return value


def invert_chain(value: Value, value_kind: ValueKind, chain: tuple[ValueOp, ...]) -> Value:
    """Invert a codec chain (deobfuscating order: last applied, first undone)."""
    for op in reversed(chain):
        value = op.invert(value, value_kind)
    return value


# ---------------------------------------------------------------------------
# Split* value synthesis
# ---------------------------------------------------------------------------


class SynthesisOp(str, enum.Enum):
    """How a Split* transformation combines two wire values into one logical value."""

    ADD = "add"
    SUB = "sub"
    XOR = "xor"
    CAT = "cat"


@dataclass(frozen=True)
class Synthesis:
    """Value-combination rule attached to a Sequence node created by a Split*.

    The sequence has exactly two terminal children.  During serialization the
    first child receives a randomly drawn share and the second child the value
    that makes the combination reconstruct the logical value; during parsing
    the combination is evaluated and stored at the node's origin path.
    """

    op: SynthesisOp
    kind: ValueKind
    width: int | None = None

    def combine(self, first: Value, second: Value) -> Value:
        """Recompute the logical value from the two wire values (parse side)."""
        if self.op is SynthesisOp.CAT:
            left = first if isinstance(first, (bytes, str)) else bytes(first)
            right = second if isinstance(second, (bytes, str)) else bytes(second)
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            left_b = left.encode(_TEXT_ENCODING) if isinstance(left, str) else bytes(left)
            right_b = right.encode(_TEXT_ENCODING) if isinstance(right, str) else bytes(right)
            merged = left_b + right_b
            return merged.decode(_TEXT_ENCODING) if self.kind is ValueKind.TEXT else merged
        if self.width is None:
            raise SerializationError("integer synthesis requires a width")
        modulus = 1 << (8 * self.width)
        a, b = int(first), int(second)
        if self.op is SynthesisOp.ADD:
            return (a + b) % modulus
        if self.op is SynthesisOp.SUB:
            return (a - b) % modulus
        return a ^ b

    def split(self, value: Value, rng: Random, *, split_at: int | None = None
              ) -> tuple[Value, Value]:
        """Draw the two wire values reconstructing ``value`` (serialize side).

        For integer syntheses the first share is drawn uniformly at random;
        for concatenation the cut position is either ``split_at`` (fixed-size
        splits decided at transform time) or drawn at random.
        """
        if self.op is SynthesisOp.CAT:
            data = value if isinstance(value, (bytes, str)) else bytes(value)
            if split_at is None:
                split_at = rng.randint(0, len(data))
            split_at = max(0, min(split_at, len(data)))
            return data[:split_at], data[split_at:]
        if self.width is None:
            raise SerializationError("integer synthesis requires a width")
        modulus = 1 << (8 * self.width)
        logical = int(value) % modulus
        share = rng.randrange(modulus)
        if self.op is SynthesisOp.ADD:
            return share, (logical - share) % modulus
        if self.op is SynthesisOp.SUB:
            return share, (share - logical) % modulus
        return share, logical ^ share
