"""Logical field paths.

A :class:`FieldPath` identifies a field of the *logical* message model, i.e.
the message as the core application sees it, independently of any obfuscating
transformation.  A path is a sequence of steps:

* a ``str`` step selects a member of a dictionary (a Sequence child),
* an ``int`` step selects an element of a list (a Repetition/Tabular element),
* the :data:`INDEX` sentinel is an *unbound* list index.  It is used in the
  ``origin`` attribute of graph nodes that live under a Repetition or Tabular
  node; the wire runtime binds it to the concrete element index while walking
  the repetition.

Examples
--------
``FieldPath.parse("header.transaction_id")`` → ``('header', 'transaction_id')``

``FieldPath.parse("headers[*].name")`` → ``('headers', INDEX, 'name')``

``FieldPath.parse("registers[2]")`` → ``('registers', 2)``
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Sequence, Union

from .errors import MessageError


class _Index:
    """Singleton sentinel representing an unbound repetition index."""

    _instance: "_Index | None" = None

    def __new__(cls) -> "_Index":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "*"

    def __deepcopy__(self, memo: dict) -> "_Index":
        return self

    def __copy__(self) -> "_Index":
        return self


#: Unbound repetition index marker used inside :class:`FieldPath` steps.
INDEX = _Index()

Step = Union[str, int, _Index]

_STEP_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)((?:\[(?:\d+|\*)\])*)")
_BRACKET_RE = re.compile(r"\[(\d+|\*)\]")


class FieldPath:
    """An immutable, hashable sequence of logical field path steps."""

    __slots__ = ("_steps", "_has_index")

    def __init__(self, steps: Iterable[Step] = ()):
        checked: list[Step] = []
        for step in steps:
            if isinstance(step, (str, int)) or step is INDEX:
                checked.append(step)
            else:
                raise MessageError(f"invalid field path step: {step!r}")
        self._steps = tuple(checked)
        self._has_index = any(step is INDEX for step in checked)

    # -- construction -------------------------------------------------------

    @classmethod
    def _trusted(cls, steps: tuple[Step, ...], has_index: bool) -> "FieldPath":
        """Internal constructor for steps that are already validated.

        Path binding runs once per terminal per message on the wire hot path;
        skipping re-validation there is a measurable win.
        """
        path = object.__new__(cls)
        path._steps = steps
        path._has_index = has_index
        return path

    @classmethod
    def parse(cls, text: str) -> "FieldPath":
        """Parse a dotted path such as ``"headers[*].name"``."""
        if text == "":
            return cls(())
        steps: list[Step] = []
        for part in text.split("."):
            match = _STEP_RE.fullmatch(part)
            if match is None:
                raise MessageError(f"invalid field path segment: {part!r} in {text!r}")
            steps.append(match.group(1))
            for bracket in _BRACKET_RE.findall(match.group(2)):
                steps.append(INDEX if bracket == "*" else int(bracket))
        return cls(steps)

    @classmethod
    def of(cls, value: "FieldPath | str | Iterable[Step]") -> "FieldPath":
        """Coerce strings, step iterables or paths into a :class:`FieldPath`."""
        if isinstance(value, FieldPath):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        return cls(value)

    # -- combinators --------------------------------------------------------

    def child(self, step: Step) -> "FieldPath":
        """Return a new path extended with one step."""
        return FieldPath(self._steps + (step,))

    def extend(self, steps: Iterable[Step]) -> "FieldPath":
        """Return a new path extended with several steps."""
        return FieldPath(self._steps + tuple(steps))

    def parent(self) -> "FieldPath":
        """Return the path without its final step."""
        if not self._steps:
            raise MessageError("the empty path has no parent")
        return FieldPath(self._steps[:-1])

    def resolve(self, indices: Sequence[int]) -> "FieldPath":
        """Replace unbound :data:`INDEX` markers with concrete indices.

        Markers are replaced left to right with the values of ``indices``;
        the number of markers must not exceed ``len(indices)``.  Extra
        indices (from deeper nesting than this path uses) are ignored.
        Concrete paths are returned unchanged (paths are immutable).
        """
        if not self._has_index:
            return self
        resolved: list[Step] = []
        cursor = 0
        for step in self._steps:
            if step is INDEX:
                if cursor >= len(indices):
                    raise MessageError(
                        f"cannot resolve {self}: needs more than {len(indices)} bound indices"
                    )
                resolved.append(indices[cursor])
                cursor += 1
            else:
                resolved.append(step)
        return FieldPath._trusted(tuple(resolved), False)

    def startswith(self, prefix: "FieldPath") -> bool:
        """True when ``prefix`` is a (non-strict) prefix of this path."""
        return self._steps[: len(prefix._steps)] == prefix._steps

    # -- inspection ---------------------------------------------------------

    @property
    def steps(self) -> tuple[Step, ...]:
        return self._steps

    @property
    def is_concrete(self) -> bool:
        """True when the path contains no unbound :data:`INDEX` marker."""
        return not self._has_index

    def index_arity(self) -> int:
        """Number of unbound :data:`INDEX` markers in the path."""
        return sum(1 for step in self._steps if step is INDEX)

    def leaf_name(self) -> str | None:
        """Return the final string step, or ``None`` if the path ends on an index."""
        if self._steps and isinstance(self._steps[-1], str):
            return self._steps[-1]
        return None

    # -- dunder protocol ----------------------------------------------------

    def __iter__(self) -> Iterator[Step]:
        return iter(self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __bool__(self) -> bool:
        return bool(self._steps)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldPath):
            return self._steps == other._steps
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._steps)

    def __repr__(self) -> str:
        return f"FieldPath({str(self)!r})"

    def __str__(self) -> str:
        out: list[str] = []
        for step in self._steps:
            if isinstance(step, str):
                if out:
                    out.append(".")
                out.append(step)
            elif step is INDEX:
                out.append("[*]")
            else:
                out.append(f"[{step}]")
        return "".join(out)


#: The empty path, i.e. the whole message.
ROOT_PATH = FieldPath(())
