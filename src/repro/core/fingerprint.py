"""Canonical graph signatures and fingerprints.

An obfuscated message format graph *is* the shared secret of the paper's
threat model: two endpoints interoperate exactly when they hold the same
transformed format.  This module gives that identity a stable, process- and
machine-independent name: :func:`graph_signature` renders every structural and
obfuscation attribute of a graph into one canonical text (a superset of the
DSL — codec chains, synthesis rules, mirroring and padding included), and
:func:`graph_fingerprint` hashes it.

Two graphs with equal fingerprints serialize and parse identically; the plan
layer (:mod:`repro.transforms.plan`) fingerprints its source graph and its
replayed result with these functions, and the codec-plan cache
(:mod:`repro.wire.plan`) uses the fingerprint as a cache key that survives
replays and process boundaries.
"""

from __future__ import annotations

import hashlib

from .graph import FormatGraph
from .node import Node


def _chain_text(node: Node) -> str:
    if not node.codec_chain:
        return "-"
    return ",".join(
        f"{op.kind.value}:{op.constant}:{int(op.bytewise)}:{op.width}"
        for op in node.codec_chain
    )


def _synthesis_text(node: Node) -> str:
    if node.synthesis is None:
        return "-"
    return f"{node.synthesis.op.value}:{node.synthesis.kind.value}:{node.synthesis.width}"


def _node_line(node: Node, depth: int) -> str:
    fields = (
        str(depth),
        node.name,
        node.type.value,
        node.boundary.describe(),
        node.value_kind.value if node.value_kind is not None else "-",
        node.endian.value,
        str(node.origin) if node.origin is not None else "-",
        node.presence_ref if node.presence_ref is not None else "-",
        repr(node.presence_value),
        _chain_text(node),
        _synthesis_text(node),
        str(node.split_at),
        str(int(node.mirrored)),
        str(int(node.is_pad)),
    )
    return "|".join(fields)


def graph_signature(graph: FormatGraph) -> str:
    """Canonical textual rendering of every wire-relevant attribute of ``graph``.

    Pre-order node lines carrying name, type, boundary, value encoding,
    origin, presence condition, codec chain, synthesis rule, split position,
    mirroring and padding flags.  Two graphs with equal signatures are
    byte-for-byte interchangeable on the wire.
    """
    lines = [f"graph|{graph.name}"]

    def visit(node: Node, depth: int) -> None:
        lines.append(_node_line(node, depth))
        for child in node.children:
            visit(child, depth + 1)

    visit(graph.root, 0)
    return "\n".join(lines) + "\n"


def graph_fingerprint(graph: FormatGraph) -> str:
    """SHA-256 hex digest of :func:`graph_signature` — the graph's stable identity."""
    return hashlib.sha256(graph_signature(graph).encode("utf-8")).hexdigest()
