"""Structural validation of message format graphs.

The rules implemented here combine the consistency requirements of the paper
(Section V-A: the boundary method must be consistent with the node type) with
the referential constraints the wire runtime needs to serialize and parse
messages deterministically (references must resolve, must be readable before
they are needed, derived fields must not clash with user data, ...).

Both original specifications and transformed graphs are validated: every
transformation is required to keep the graph valid, which is checked by the
transformation engine and by the test suite.
"""

from __future__ import annotations

from .boundary import BoundaryKind
from .errors import GraphError
from .graph import FormatGraph, is_greedy, parse_window_known
from .node import Node, NodeType
from .values import ValueKind

_TERMINAL_BOUNDARIES = frozenset(
    {BoundaryKind.FIXED, BoundaryKind.DELIMITED, BoundaryKind.LENGTH, BoundaryKind.END}
)
_SEQUENCE_BOUNDARIES = frozenset(
    {BoundaryKind.DELEGATED, BoundaryKind.LENGTH, BoundaryKind.END}
)
_REPETITION_BOUNDARIES = frozenset(
    {BoundaryKind.DELIMITED, BoundaryKind.LENGTH, BoundaryKind.END, BoundaryKind.COUNTER}
)


def validate_graph(graph: FormatGraph) -> None:
    """Raise :class:`GraphError` when ``graph`` violates any structural rule."""
    node_map = graph.node_map()  # also detects duplicate names
    order = graph.pre_order_index()
    ref_targets = _collect_ref_targets(graph)

    for node in graph.nodes():
        _check_parent_links(node)
        _check_type_shape(node)
        _check_boundary_compatibility(node)
        _check_terminal_details(node, ref_targets)
        _check_references(graph, node, node_map, order)
        _check_obfuscation_metadata(node)

    _check_length_target_uniqueness(graph)
    _check_window_layout(graph)


# ---------------------------------------------------------------------------
# individual rules
# ---------------------------------------------------------------------------


def _collect_ref_targets(graph: FormatGraph) -> set[str]:
    """Names of the terminals targeted by a LENGTH or COUNTER boundary."""
    targets: set[str] = set()
    for node in graph.nodes():
        if node.boundary.kind in (BoundaryKind.LENGTH, BoundaryKind.COUNTER):
            targets.add(node.boundary.ref)  # type: ignore[arg-type]
    return targets


def _check_parent_links(node: Node) -> None:
    for child in node.children:
        if child.parent is not node:
            raise GraphError(
                f"node {child.name!r} has a stale parent link (expected {node.name!r})"
            )


def _check_type_shape(node: Node) -> None:
    if node.type is NodeType.TERMINAL:
        if node.children:
            raise GraphError(f"terminal {node.name!r} cannot have children")
        return
    if node.type is NodeType.SEQUENCE:
        if not node.children:
            raise GraphError(f"sequence {node.name!r} must have at least one child")
        return
    # Optional, Repetition and Tabular wrap exactly one sub-node.
    if len(node.children) != 1:
        raise GraphError(
            f"{node.type.value} node {node.name!r} must have exactly one child, "
            f"got {len(node.children)}"
        )


def _check_boundary_compatibility(node: Node) -> None:
    kind = node.boundary.kind
    if node.type is NodeType.TERMINAL and kind not in _TERMINAL_BOUNDARIES:
        raise GraphError(f"terminal {node.name!r} cannot use a {kind.value} boundary")
    if node.type is NodeType.SEQUENCE and kind not in _SEQUENCE_BOUNDARIES:
        raise GraphError(f"sequence {node.name!r} cannot use a {kind.value} boundary")
    if node.type is NodeType.OPTIONAL and kind is not BoundaryKind.DELEGATED:
        raise GraphError(f"optional {node.name!r} must use a delegated boundary")
    if node.type is NodeType.REPETITION and kind not in _REPETITION_BOUNDARIES:
        raise GraphError(f"repetition {node.name!r} cannot use a {kind.value} boundary")
    if node.type is NodeType.TABULAR and kind is not BoundaryKind.COUNTER:
        raise GraphError(f"tabular {node.name!r} must use a counter boundary")


def _check_terminal_details(node: Node, ref_targets: set[str]) -> None:
    if node.type is not NodeType.TERMINAL:
        return
    if node.value_kind is ValueKind.UINT and node.boundary.kind is not BoundaryKind.FIXED:
        raise GraphError(f"uint terminal {node.name!r} requires a fixed boundary")
    if node.is_pad:
        if node.boundary.kind is not BoundaryKind.FIXED:
            raise GraphError(f"pad terminal {node.name!r} requires a fixed boundary")
        if node.origin is not None:
            raise GraphError(f"pad terminal {node.name!r} cannot carry a logical origin")
    if node.name in ref_targets:
        if node.value_kind is not ValueKind.UINT or node.boundary.kind is not BoundaryKind.FIXED:
            raise GraphError(
                f"terminal {node.name!r} is a length/counter field and must be a fixed-size uint"
            )
        if node.origin is not None:
            raise GraphError(
                f"terminal {node.name!r} is a derived length/counter field and cannot carry "
                f"a logical origin"
            )


def _check_references(
    graph: FormatGraph,
    node: Node,
    node_map: dict[str, Node],
    order: dict[str, int],
) -> None:
    for ref in node.referenced_names():
        target = node_map.get(ref)
        if target is None:
            raise GraphError(f"node {node.name!r} references unknown node {ref!r}")
        if target.type is not NodeType.TERMINAL:
            raise GraphError(f"node {node.name!r} references non-terminal node {ref!r}")
        if order[target.name] >= order[node.name]:
            raise GraphError(
                f"node {node.name!r} references {ref!r} which is serialized after it"
            )
        _check_reference_scoping(node, target)


def _check_reference_scoping(node: Node, target: Node) -> None:
    """Every variable-arity ancestor of the target must also enclose the referencing node.

    Otherwise the parser could not tell which instance of the target's value to
    use (repetitions) or whether the value exists at all (optionals).
    """
    node_ancestors = {id(ancestor) for ancestor in node.ancestors()}
    for ancestor in target.ancestors():
        if ancestor.type in (NodeType.REPETITION, NodeType.TABULAR, NodeType.OPTIONAL):
            if id(ancestor) not in node_ancestors:
                raise GraphError(
                    f"node {node.name!r} references {target.name!r} across the "
                    f"{ancestor.type.value} node {ancestor.name!r}"
                )


def _check_obfuscation_metadata(node: Node) -> None:
    if node.synthesis is not None:
        if node.type is not NodeType.SEQUENCE:
            raise GraphError(f"synthesis node {node.name!r} must be a sequence")
        if not all(child.type is NodeType.TERMINAL for child in node.children):
            raise GraphError(f"synthesis node {node.name!r} must have terminal children")
        derived = {
            child.boundary.ref
            for child in node.children
            if child.boundary.kind is BoundaryKind.LENGTH
        }
        value_children = [child for child in node.children if child.name not in derived]
        if len(value_children) != 2:
            raise GraphError(
                f"synthesis node {node.name!r} must have exactly two value-carrying "
                f"sub-nodes (found {len(value_children)})"
            )
        if node.origin is None:
            raise GraphError(f"synthesis node {node.name!r} must carry a logical origin")
    if node.mirrored:
        if node.boundary.kind is BoundaryKind.DELIMITED:
            raise GraphError(f"mirrored node {node.name!r} cannot use a delimited boundary")
        if not parse_window_known(node):
            raise GraphError(
                f"mirrored node {node.name!r} has no parse-time determinable extent"
            )
    for op in node.codec_chain:
        if node.type is not NodeType.TERMINAL:
            raise GraphError(f"only terminals may carry a codec chain ({node.name!r})")
        if op.bytewise and node.boundary.kind is BoundaryKind.DELIMITED:
            raise GraphError(
                f"bytewise value operation on delimited terminal {node.name!r} could "
                f"collide with the delimiter"
            )
        if not op.bytewise:
            if node.value_kind is not ValueKind.UINT:
                raise GraphError(
                    f"integer value operation on non-uint terminal {node.name!r}"
                )
            if op.width != node.boundary.size:
                raise GraphError(
                    f"integer value operation width mismatch on terminal {node.name!r}"
                )


def _check_window_layout(graph: FormatGraph) -> None:
    """Greedy nodes (END/remaining-bytes semantics) must sit in tail position.

    A node whose parsing consumes the rest of its enclosing window (END
    terminals and repetitions, presence-less Optionals, sequences containing
    one) must not be followed by any sibling content in the same window,
    otherwise the parser would swallow that content.  Nodes that open their
    own window (Length boundary, mirrored regions) reset the rule for their
    children.
    """

    def visit(node: Node, tail_allowed: bool) -> None:
        if is_greedy(node) and not tail_allowed:
            raise GraphError(
                f"greedy node {node.name!r} is not in tail position of its window"
            )
        opens_window = node.boundary.kind is BoundaryKind.LENGTH or node.mirrored
        child_tail_base = True if opens_window else tail_allowed
        if node.type is NodeType.SEQUENCE:
            for index, child in enumerate(node.children):
                visit(child, child_tail_base and index == len(node.children) - 1)
        elif node.type is NodeType.OPTIONAL:
            visit(node.children[0], child_tail_base)
        elif node.type in (NodeType.REPETITION, NodeType.TABULAR):
            # Elements are never in tail position: another element (or the
            # terminator) may follow the current one.
            visit(node.children[0], False)

    visit(graph.root, True)


def _check_length_target_uniqueness(graph: FormatGraph) -> None:
    """A terminal may back at most one LENGTH boundary (counters may be shared)."""
    length_sources: dict[str, str] = {}
    for node in graph.nodes():
        if node.boundary.kind is BoundaryKind.LENGTH:
            ref = node.boundary.ref  # type: ignore[assignment]
            previous = length_sources.get(ref)
            if previous is not None:
                raise GraphError(
                    f"terminal {ref!r} is the length of both {previous!r} and {node.name!r}"
                )
            length_sources[ref] = node.name
