"""Programmatic construction of message format graphs.

The factory functions below are the Python counterpart of the text
specification DSL (:mod:`repro.spec`): they build the same :class:`Node`
objects, assign logical origins and validate the result.  Protocol modules
(:mod:`repro.protocols`) use this API to define the Modbus and HTTP
specifications; the DSL parser produces graphs through the same functions so
both front-ends stay consistent.
"""

from __future__ import annotations

from typing import Sequence as SequenceType

from .boundary import Boundary, BoundaryKind
from .errors import GraphError
from .fieldpath import INDEX, FieldPath
from .graph import FormatGraph
from .node import Node, NodeType
from .validate import validate_graph
from .values import Endian, Value, ValueKind


# ---------------------------------------------------------------------------
# terminal factories
# ---------------------------------------------------------------------------


def uint(name: str, size: int, *, endian: Endian | str = Endian.BIG, doc: str = "") -> Node:
    """Fixed-size unsigned integer terminal."""
    return Node(
        name,
        NodeType.TERMINAL,
        Boundary.fixed(size),
        value_kind=ValueKind.UINT,
        endian=Endian(endian),
        doc=doc,
    )


def bytes_field(name: str, boundary: Boundary, *, doc: str = "") -> Node:
    """Raw byte-string terminal with an explicit boundary."""
    return Node(name, NodeType.TERMINAL, boundary, value_kind=ValueKind.BYTES, doc=doc)


def text_field(name: str, boundary: Boundary, *, doc: str = "") -> Node:
    """Textual terminal with an explicit boundary."""
    return Node(name, NodeType.TERMINAL, boundary, value_kind=ValueKind.TEXT, doc=doc)


def fixed_bytes(name: str, size: int, *, doc: str = "") -> Node:
    """Raw byte-string terminal of a fixed size."""
    return bytes_field(name, Boundary.fixed(size), doc=doc)


def delimited_text(name: str, delimiter: bytes, *, doc: str = "") -> Node:
    """Textual terminal terminated by ``delimiter``."""
    return text_field(name, Boundary.delimited(delimiter), doc=doc)


def remaining_bytes(name: str, *, doc: str = "") -> Node:
    """Raw byte-string terminal covering the remainder of the enclosing window."""
    return bytes_field(name, Boundary.end(), doc=doc)


# ---------------------------------------------------------------------------
# composite factories
# ---------------------------------------------------------------------------


def sequence(
    name: str,
    children: SequenceType[Node],
    *,
    boundary: Boundary | None = None,
    doc: str = "",
) -> Node:
    """Sequence node (ordered concatenation of its sub-nodes)."""
    return Node(
        name,
        NodeType.SEQUENCE,
        boundary if boundary is not None else Boundary.delegated(),
        children=list(children),
        doc=doc,
    )


def optional(
    name: str,
    child: Node,
    *,
    presence_ref: str | None = None,
    presence_value: Value | None = None,
    doc: str = "",
) -> Node:
    """Optional node, present depending on another field or on remaining bytes."""
    return Node(
        name,
        NodeType.OPTIONAL,
        Boundary.delegated(),
        children=[child],
        presence_ref=presence_ref,
        presence_value=presence_value,
        doc=doc,
    )


def repetition(
    name: str,
    child: Node,
    *,
    boundary: Boundary | None = None,
    doc: str = "",
) -> Node:
    """Repetition node (zero or more copies of its sub-node)."""
    return Node(
        name,
        NodeType.REPETITION,
        boundary if boundary is not None else Boundary.end(),
        children=[child],
        doc=doc,
    )


def tabular(name: str, child: Node, *, counter: str, doc: str = "") -> Node:
    """Tabular node (a repetition whose count is given by the ``counter`` terminal)."""
    return Node(
        name,
        NodeType.TABULAR,
        Boundary.counter(counter),
        children=[child],
        doc=doc,
    )


# ---------------------------------------------------------------------------
# graph assembly
# ---------------------------------------------------------------------------


def assign_origins(graph: FormatGraph) -> None:
    """Assign logical field paths (``origin``) to every node of an original graph.

    The logical path of a node mirrors the specification structure: Sequence
    members contribute their name, Repetition/Tabular nodes contribute an
    unbound index, and the single children of Optional/Repetition/Tabular
    nodes are transparent.  Padding terminals and derived length/counter
    fields carry no origin because they are not part of the logical message.
    """
    derived = {
        node.boundary.ref
        for node in graph.nodes()
        if node.boundary.kind in (BoundaryKind.LENGTH, BoundaryKind.COUNTER)
    }

    def visit(node: Node, path: FieldPath) -> None:
        if node.is_pad or node.name in derived:
            node.origin = None
        else:
            node.origin = path
        for child in node.children:
            if node.type is NodeType.SEQUENCE:
                visit(child, path.child(child.name))
            elif node.type in (NodeType.REPETITION, NodeType.TABULAR):
                visit(child, path.child(INDEX))
            else:  # Optional nodes are transparent
                visit(child, path)

    visit(graph.root, FieldPath())


def build_graph(root: Node, name: str, *, validate: bool = True) -> FormatGraph:
    """Wrap ``root`` into a validated :class:`FormatGraph` with origins assigned."""
    if root.parent is not None:
        raise GraphError("the root node passed to build_graph must not have a parent")
    graph = FormatGraph(root, name=name)
    assign_origins(graph)
    if validate:
        validate_graph(graph)
    return graph
