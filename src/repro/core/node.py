"""Nodes of the message format graph.

A node corresponds to one node of the paper's message format graph
(Section V-A).  It is defined by a name, a type, a boundary method, a list of
sub-nodes and a parent.  Terminals additionally carry a value kind and byte
order; nodes may also carry obfuscation metadata added by the transformations
(codec chain, synthesis rule, mirroring flag, padding flag).
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, Optional, Sequence

from .boundary import Boundary, BoundaryKind
from .errors import GraphError
from .fieldpath import FieldPath
from .values import Endian, Synthesis, Value, ValueKind, ValueOp


class NodeType(str, enum.Enum):
    """The five node types of the message format graph."""

    TERMINAL = "terminal"
    SEQUENCE = "sequence"
    OPTIONAL = "optional"
    REPETITION = "repetition"
    TABULAR = "tabular"


#: Node types that own sub-nodes.
COMPOSITE_TYPES = frozenset(
    {NodeType.SEQUENCE, NodeType.OPTIONAL, NodeType.REPETITION, NodeType.TABULAR}
)


class Node:
    """One node of a message format graph.

    Attributes
    ----------
    name:
        Unique identifier of the node within its graph.  LENGTH/COUNTER
        boundaries and presence conditions reference nodes by name.
    type:
        One of the five :class:`NodeType` values.
    boundary:
        How the byte extent of the node is determined on the wire.
    children:
        Sub-nodes (empty for terminals).
    value_kind / endian:
        Value encoding of Terminal nodes.
    origin:
        Logical field path this node carries (set on every node of the
        original specification and preserved by the transformations so that
        the accessor interface stays stable).
    presence_ref / presence_value:
        For Optional nodes: the node is present on the wire when the terminal
        named ``presence_ref`` has the value ``presence_value``.  When
        ``presence_ref`` is ``None`` the node is present whenever bytes remain
        in the enclosing window (parse side) or whenever the logical message
        carries data under its origin (serialize side).
    codec_chain:
        Invertible value operations applied to the terminal value before
        encoding (ConstAdd/ConstSub/ConstXor transformations).
    synthesis:
        Value-combination rule of a Sequence created by a Split* transformation.
    split_at:
        Fixed cut position of a SplitCat applied to a fixed-size terminal.
    mirrored:
        The node's serialization is reversed byte-wise (ReadFromEnd).
    is_pad:
        The node is a padding terminal inserted by PadInsert: its value is
        drawn at random during serialization and discarded during parsing.
    """

    __slots__ = (
        "name",
        "type",
        "boundary",
        "children",
        "parent",
        "value_kind",
        "endian",
        "origin",
        "presence_ref",
        "presence_value",
        "codec_chain",
        "synthesis",
        "split_at",
        "mirrored",
        "is_pad",
        "doc",
    )

    def __init__(
        self,
        name: str,
        type: NodeType,
        boundary: Boundary,
        *,
        children: Sequence["Node"] | None = None,
        value_kind: ValueKind | None = None,
        endian: Endian = Endian.BIG,
        origin: FieldPath | None = None,
        presence_ref: str | None = None,
        presence_value: Value | None = None,
        codec_chain: tuple[ValueOp, ...] = (),
        synthesis: Synthesis | None = None,
        split_at: int | None = None,
        mirrored: bool = False,
        is_pad: bool = False,
        doc: str = "",
    ):
        self.name = name
        self.type = type
        self.boundary = boundary
        self.children: list[Node] = []
        self.parent: Optional[Node] = None
        self.value_kind = value_kind
        self.endian = endian
        self.origin = origin
        self.presence_ref = presence_ref
        self.presence_value = presence_value
        self.codec_chain = tuple(codec_chain)
        self.synthesis = synthesis
        self.split_at = split_at
        self.mirrored = mirrored
        self.is_pad = is_pad
        self.doc = doc
        for child in children or ():
            self.add_child(child)
        self._check_shape()

    # -- structural helpers --------------------------------------------------

    def _check_shape(self) -> None:
        if self.type is NodeType.TERMINAL:
            if self.children:
                raise GraphError(f"terminal node {self.name!r} cannot have children")
            if self.value_kind is None:
                raise GraphError(f"terminal node {self.name!r} requires a value kind")
        elif self.value_kind is not None:
            raise GraphError(f"composite node {self.name!r} cannot carry a value kind")

    @property
    def is_terminal(self) -> bool:
        return self.type is NodeType.TERMINAL

    @property
    def is_composite(self) -> bool:
        return self.type in COMPOSITE_TYPES

    def add_child(self, child: "Node") -> "Node":
        """Append ``child`` as the last sub-node and set its parent."""
        if self.type is NodeType.TERMINAL:
            raise GraphError(f"terminal node {self.name!r} cannot have children")
        child.parent = self
        self.children.append(child)
        return child

    def insert_child(self, index: int, child: "Node") -> "Node":
        """Insert ``child`` at ``index`` among the sub-nodes."""
        if self.type is NodeType.TERMINAL:
            raise GraphError(f"terminal node {self.name!r} cannot have children")
        child.parent = self
        self.children.insert(index, child)
        return child

    def remove_child(self, child: "Node") -> None:
        """Detach ``child`` from this node."""
        self.children.remove(child)
        child.parent = None

    def replace_child(self, old: "Node", new: "Node") -> "Node":
        """Replace sub-node ``old`` by ``new`` at the same position."""
        index = self.index_of(old)
        new.parent = self
        old.parent = None
        self.children[index] = new
        return new

    def index_of(self, child: "Node") -> int:
        """Position of ``child`` among the sub-nodes."""
        for index, candidate in enumerate(self.children):
            if candidate is child:
                return index
        raise GraphError(f"{child.name!r} is not a child of {self.name!r}")

    # -- traversal -----------------------------------------------------------

    def iter_subtree(self) -> Iterator["Node"]:
        """Pre-order depth-first traversal of the subtree rooted at this node."""
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def find(self, name: str) -> Optional["Node"]:
        """Find a node by name in this subtree."""
        for node in self.iter_subtree():
            if node.name == name:
                return node
        return None

    def ancestors(self) -> Iterator["Node"]:
        """Yield the chain of parents, closest first."""
        current = self.parent
        while current is not None:
            yield current
            current = current.parent

    def depth(self) -> int:
        """Number of ancestors above this node."""
        return sum(1 for _ in self.ancestors())

    def root(self) -> "Node":
        """Topmost ancestor of this node."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    # -- copying -------------------------------------------------------------

    def clone(self, *, rename: Callable[[str], str] | None = None) -> "Node":
        """Deep-copy the subtree rooted at this node.

        ``rename`` optionally maps every node name to a new one (used when a
        transformation duplicates a subtree and must keep names unique).
        """
        new_name = rename(self.name) if rename else self.name
        copy = Node(
            new_name,
            self.type,
            self.boundary,
            value_kind=self.value_kind,
            endian=self.endian,
            origin=self.origin,
            presence_ref=self.presence_ref,
            presence_value=self.presence_value,
            codec_chain=self.codec_chain,
            synthesis=self.synthesis,
            split_at=self.split_at,
            mirrored=self.mirrored,
            is_pad=self.is_pad,
            doc=self.doc,
        )
        for child in self.children:
            copy.add_child(child.clone(rename=rename))
        return copy

    # -- references ----------------------------------------------------------

    def referenced_names(self) -> list[str]:
        """Names of the nodes this node's boundary/presence refer to."""
        refs: list[str] = []
        if self.boundary.kind in (BoundaryKind.LENGTH, BoundaryKind.COUNTER):
            refs.append(self.boundary.ref)  # type: ignore[arg-type]
        if self.presence_ref is not None:
            refs.append(self.presence_ref)
        return refs

    # -- rendering -----------------------------------------------------------

    def describe(self) -> str:
        """One-line description used in diagnostics."""
        bits = [self.type.value, self.boundary.describe()]
        if self.value_kind is not None:
            bits.append(self.value_kind.value)
        if self.mirrored:
            bits.append("mirrored")
        if self.is_pad:
            bits.append("pad")
        if self.synthesis is not None:
            bits.append(f"synthesis:{self.synthesis.op.value}")
        if self.codec_chain:
            bits.append(f"chain:{len(self.codec_chain)}")
        return f"{self.name} <{' '.join(bits)}>"

    def __repr__(self) -> str:
        return f"Node({self.describe()})"
