"""Exception hierarchy for the ProtoObf reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while the
sub-classes keep the failure domains (specification parsing, graph validation,
wire encoding/decoding, transformation application, code generation) separate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class SpecError(ReproError):
    """A message-format specification (DSL text) could not be parsed.

    Carries the line/column of the offending token when available so that
    specification authors get actionable diagnostics.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class GraphError(ReproError):
    """A message format graph violates a structural or referential constraint."""


class MessageError(ReproError):
    """A logical message field path could not be resolved or assigned."""


class SerializationError(ReproError):
    """A logical message could not be serialized against a format graph."""


class ParseError(ReproError):
    """A byte buffer could not be parsed against a format graph."""

    def __init__(self, message: str, offset: int | None = None, node: str | None = None):
        details = []
        if node is not None:
            details.append(f"node={node!r}")
        if offset is not None:
            details.append(f"offset={offset}")
        suffix = f" [{', '.join(details)}]" if details else ""
        super().__init__(message + suffix)
        self.offset = offset
        self.node = node


class StreamError(ParseError):
    """A byte *stream* could not be decoded into framed messages.

    Raised by the incremental wire decoder on stream-level failures that have
    no whole-message counterpart: an abrupt end of stream in the middle of a
    message, or trailing bytes after the last complete message that do not
    start a valid new one.  Subclasses :class:`ParseError` so existing
    handlers of wire decoding failures keep working.
    """

    def __init__(self, message: str, offset: int | None = None,
                 node: str | None = None, message_index: int | None = None):
        if message_index is not None:
            message = f"stream message #{message_index}: {message}"
        super().__init__(message, offset=offset, node=node)
        self.message_index = message_index


class BudgetExceeded(StreamError):
    """A per-session resource budget was violated while decoding a stream.

    Raised by the incremental decoders and the session pumps when a peer
    outgrows one of the :class:`~repro.net.governance.ResourceBudget` limits:
    buffered stream bytes, pending decoded messages, a declared record/field
    size, or decode work per feed.  Carries the *name* of the violated
    resource plus the limit and the observed value, so overload diagnoses can
    be attributed to a specific counter.  Subclasses :class:`StreamError`:
    a budget violation kills the stream exactly like any other stream-level
    failure, and every existing handler keeps working.
    """

    def __init__(self, resource: str, *, limit: int, actual: int,
                 message: str | None = None, offset: int | None = None,
                 node: str | None = None, message_index: int | None = None):
        if message is None:
            message = (f"resource budget exceeded: {resource} of {actual} "
                       f"is over the {limit} limit")
        super().__init__(message, offset=offset, node=node,
                         message_index=message_index)
        self.resource = resource
        self.limit = limit
        self.actual = actual


class TransformError(ReproError):
    """A transformation failed while being applied to a format graph."""


class NotApplicableError(TransformError):
    """A transformation's applicability constraints are not met on the target node."""


class CodegenError(ReproError):
    """The code generator could not emit or load a serialization library."""
