"""The message format graph.

A :class:`FormatGraph` wraps the root node of a message format specification
(the graph ``G1`` of the paper) or any graph obtained from it by applying
obfuscating transformations (``G2`` … ``Gn+1``).  It offers name lookup,
dependency queries, fresh-name generation for transformation-created nodes,
cloning and structural statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .boundary import BoundaryKind
from .errors import GraphError
from .node import Node, NodeType


@dataclass(frozen=True)
class GraphStats:
    """Structural statistics of a format graph."""

    node_count: int
    terminal_count: int
    composite_count: int
    max_depth: int
    pad_count: int
    mirrored_count: int
    codec_op_count: int
    synthesis_count: int


class FormatGraph:
    """A message format graph (original or obfuscated)."""

    def __init__(self, root: Node, name: str = "protocol"):
        if root.parent is not None:
            raise GraphError("the root node of a graph cannot have a parent")
        self.root = root
        self.name = name
        self._fresh_counter = 0
        #: Fingerprint of the :class:`~repro.transforms.plan.ObfuscationPlan`
        #: this graph was replayed from (or had extracted from it), when known.
        #: Stamped by the plan layer; cleared by :func:`repro.wire.plan.invalidate`
        #: whenever a transformation rewrites the graph in place.  The codec-plan
        #: cache keys stamped graphs by this value, so two replays of one plan —
        #: in the same process or across processes — share one compiled plan slot.
        self.plan_fingerprint: str | None = None

    # -- traversal and lookup -------------------------------------------------

    def nodes(self) -> Iterator[Node]:
        """Pre-order depth-first traversal of all nodes (serialization order)."""
        return self.root.iter_subtree()

    def node_map(self) -> dict[str, Node]:
        """Mapping from node name to node; raises on duplicate names."""
        mapping: dict[str, Node] = {}
        for node in self.nodes():
            if node.name in mapping:
                raise GraphError(f"duplicate node name {node.name!r} in graph {self.name!r}")
            mapping[node.name] = node
        return mapping

    def find(self, name: str) -> Node | None:
        """Return the node called ``name`` or ``None``."""
        for node in self.nodes():
            if node.name == name:
                return node
        return None

    def require(self, name: str) -> Node:
        """Return the node called ``name`` or raise :class:`GraphError`."""
        node = self.find(name)
        if node is None:
            raise GraphError(f"graph {self.name!r} has no node named {name!r}")
        return node

    def terminals(self) -> Iterator[Node]:
        """All Terminal nodes in serialization order."""
        return (node for node in self.nodes() if node.is_terminal)

    def composites(self) -> Iterator[Node]:
        """All composite nodes in serialization order."""
        return (node for node in self.nodes() if node.is_composite)

    def pre_order_index(self) -> dict[str, int]:
        """Position of each node in the pre-order (serialization) ordering."""
        return {node.name: index for index, node in enumerate(self.nodes())}

    # -- references ------------------------------------------------------------

    def ref_targets(self) -> dict[str, list[str]]:
        """Map each referenced node name to the names of the nodes referencing it."""
        targets: dict[str, list[str]] = {}
        for node in self.nodes():
            for ref in node.referenced_names():
                targets.setdefault(ref, []).append(node.name)
        return targets

    def is_ref_target(self, name: str) -> bool:
        """True when some node's boundary or presence condition references ``name``."""
        return name in self.ref_targets()

    def referencing_nodes(self, name: str) -> list[Node]:
        """Nodes whose boundary/presence references the node called ``name``."""
        mapping = self.node_map()
        return [mapping[source] for source in self.ref_targets().get(name, [])]

    # -- naming ----------------------------------------------------------------

    def fresh_name(self, prefix: str) -> str:
        """Return a node name with the given prefix that is unused in the graph."""
        existing = {node.name for node in self.nodes()}
        while True:
            self._fresh_counter += 1
            candidate = f"{prefix}_{self._fresh_counter}"
            if candidate not in existing:
                return candidate

    # -- copying ---------------------------------------------------------------

    def clone(self) -> "FormatGraph":
        """Deep copy of the graph (transformations operate on clones).

        ``plan_fingerprint`` is deliberately not carried over: clones exist to
        be mutated, and a stale stamp would alias the clone's codec plan with
        the original's.  The plan layer re-stamps replayed clones itself.
        """
        copy = FormatGraph(self.root.clone(), name=self.name)
        copy._fresh_counter = self._fresh_counter
        return copy

    # -- statistics ------------------------------------------------------------

    def stats(self) -> GraphStats:
        """Structural statistics used by the potency metrics and tests."""
        node_count = terminal_count = pad_count = mirrored_count = 0
        codec_op_count = synthesis_count = 0
        max_depth = 0
        for node in self.nodes():
            node_count += 1
            max_depth = max(max_depth, node.depth())
            if node.is_terminal:
                terminal_count += 1
            if node.is_pad:
                pad_count += 1
            if node.mirrored:
                mirrored_count += 1
            codec_op_count += len(node.codec_chain)
            if node.synthesis is not None:
                synthesis_count += 1
        return GraphStats(
            node_count=node_count,
            terminal_count=terminal_count,
            composite_count=node_count - terminal_count,
            max_depth=max_depth,
            pad_count=pad_count,
            mirrored_count=mirrored_count,
            codec_op_count=codec_op_count,
            synthesis_count=synthesis_count,
        )

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"FormatGraph({self.name!r}, nodes={stats.node_count}, "
            f"terminals={stats.terminal_count})"
        )


# ---------------------------------------------------------------------------
# size reasoning
# ---------------------------------------------------------------------------


def static_size(node: Node) -> int | None:
    """Serialized size of ``node`` when it is statically known, else ``None``.

    The size is static for fixed terminals and for composites whose children
    are all statically sized (Optional, Repetition and Tabular nodes are never
    statically sized because their element count or presence varies).
    """
    if node.type is NodeType.TERMINAL:
        if node.boundary.kind is BoundaryKind.FIXED:
            return node.boundary.size
        return None
    if node.type in (NodeType.OPTIONAL, NodeType.REPETITION, NodeType.TABULAR):
        return None
    # Sequence: sum of children when every child is static.
    total = 0
    for child in node.children:
        child_size = static_size(child)
        if child_size is None:
            return None
        total += child_size
    if node.boundary.kind is BoundaryKind.FIXED and node.boundary.size != total:
        return None
    return total


def parse_window_known(node: Node) -> bool:
    """True when the parser can delimit ``node``'s byte extent before reading it.

    This is the applicability condition of ReadFromEnd: the whole region must
    be available up-front so it can be reversed before parsing.
    """
    if node.boundary.kind in (BoundaryKind.FIXED, BoundaryKind.LENGTH, BoundaryKind.END):
        return True
    return static_size(node) is not None


def is_greedy(node: Node) -> bool:
    """True when parsing ``node`` consumes the rest of its enclosing window.

    Greedy nodes (END-bounded terminals and repetitions, Optionals whose
    presence is decided by "bytes remain", and sequences containing such a
    node) can only appear in tail position: anything serialized after them in
    the same window would be swallowed during parsing.  The window-layout
    validation rule and the ordering transformations rely on this predicate.
    """
    kind = node.boundary.kind
    if kind in (
        BoundaryKind.FIXED,
        BoundaryKind.LENGTH,
        BoundaryKind.DELIMITED,
        BoundaryKind.COUNTER,
    ):
        return False
    if node.type is NodeType.TERMINAL:
        return True  # END-bounded terminal
    if node.type is NodeType.REPETITION:
        return kind is BoundaryKind.END
    if node.type is NodeType.TABULAR:
        return False
    if node.type is NodeType.OPTIONAL:
        return node.presence_ref is None or is_greedy(node.children[0])
    # Sequence with a DELEGATED or END boundary: greedy when any child is.
    return any(is_greedy(child) for child in node.children)
