"""Field boundary methods of the message format graph.

The paper (Section V-A) defines six boundary methods describing how the
length of a field is determined on the wire:

* ``FIXED``     — the field has a fixed size defined in the specification,
* ``DELIMITED`` — the field ends with a predefined byte sequence,
* ``LENGTH``    — the length is given by the value of another (earlier) node,
* ``COUNTER``   — for Tabular nodes, the number of repetitions is given by the
  value of another node,
* ``END``       — the field extends to the end of the enclosing window,
* ``DELEGATED`` — the length is the sum of the lengths of the sub-nodes.

For Repetition nodes, a ``DELIMITED`` boundary is interpreted as a terminator:
the repetition stops when the enclosing stream starts with the delimiter,
which is then consumed (this models, e.g., the empty CRLF line that terminates
the HTTP header block).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import GraphError


class BoundaryKind(str, enum.Enum):
    """The six boundary methods of the message format graph."""

    FIXED = "fixed"
    DELIMITED = "delimited"
    LENGTH = "length"
    COUNTER = "counter"
    END = "end"
    DELEGATED = "delegated"


@dataclass(frozen=True)
class Boundary:
    """A boundary method with its parameters.

    Exactly one of ``size`` (FIXED), ``delimiter`` (DELIMITED) or ``ref``
    (LENGTH / COUNTER) is set depending on ``kind``; END and DELEGATED carry
    no parameter.
    """

    kind: BoundaryKind
    size: int | None = None
    delimiter: bytes | None = None
    ref: str | None = None

    def __post_init__(self) -> None:
        if self.kind is BoundaryKind.FIXED:
            if self.size is None or self.size < 0:
                raise GraphError("FIXED boundary requires a non-negative size")
            if self.delimiter is not None or self.ref is not None:
                raise GraphError("FIXED boundary only takes a size")
        elif self.kind is BoundaryKind.DELIMITED:
            if not self.delimiter:
                raise GraphError("DELIMITED boundary requires a non-empty delimiter")
            if self.size is not None or self.ref is not None:
                raise GraphError("DELIMITED boundary only takes a delimiter")
        elif self.kind in (BoundaryKind.LENGTH, BoundaryKind.COUNTER):
            if not self.ref:
                raise GraphError(f"{self.kind.name} boundary requires a node reference")
            if self.size is not None or self.delimiter is not None:
                raise GraphError(f"{self.kind.name} boundary only takes a node reference")
        else:  # END / DELEGATED
            if self.size is not None or self.delimiter is not None or self.ref is not None:
                raise GraphError(f"{self.kind.name} boundary takes no parameter")

    # -- constructors --------------------------------------------------------

    @staticmethod
    def fixed(size: int) -> "Boundary":
        """Field of a fixed ``size`` in bytes."""
        return Boundary(BoundaryKind.FIXED, size=size)

    @staticmethod
    def delimited(delimiter: bytes) -> "Boundary":
        """Field terminated by ``delimiter`` (which is consumed but not part of the value)."""
        return Boundary(BoundaryKind.DELIMITED, delimiter=bytes(delimiter))

    @staticmethod
    def length(ref: str) -> "Boundary":
        """Field whose byte length is the value of the terminal named ``ref``."""
        return Boundary(BoundaryKind.LENGTH, ref=ref)

    @staticmethod
    def counter(ref: str) -> "Boundary":
        """Tabular whose element count is the value of the terminal named ``ref``."""
        return Boundary(BoundaryKind.COUNTER, ref=ref)

    @staticmethod
    def end() -> "Boundary":
        """Field extending to the end of the enclosing window."""
        return Boundary(BoundaryKind.END)

    @staticmethod
    def delegated() -> "Boundary":
        """Composite whose length is the sum of its children's lengths."""
        return Boundary(BoundaryKind.DELEGATED)

    # -- helpers -------------------------------------------------------------

    def with_ref(self, ref: str) -> "Boundary":
        """Return a copy of a LENGTH/COUNTER boundary pointing at another node."""
        if self.kind not in (BoundaryKind.LENGTH, BoundaryKind.COUNTER):
            raise GraphError("only LENGTH/COUNTER boundaries reference a node")
        return Boundary(self.kind, ref=ref)

    def describe(self) -> str:
        """Short human-readable rendering used in specs and diagnostics."""
        if self.kind is BoundaryKind.FIXED:
            return f"fixed({self.size})"
        if self.kind is BoundaryKind.DELIMITED:
            return f"delimited({self.delimiter!r})"
        if self.kind is BoundaryKind.LENGTH:
            return f"length({self.ref})"
        if self.kind is BoundaryKind.COUNTER:
            return f"counter({self.ref})"
        return self.kind.value
