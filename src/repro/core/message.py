"""The logical message model.

A :class:`Message` is the protocol message as the *core application* sees it:
a nested structure of dictionaries (Sequence nodes), lists (Repetition and
Tabular nodes) and scalar values (Terminal nodes), keyed by the field names of
the original, non-obfuscated specification.

The message model is deliberately independent of any obfuscating
transformation: the same message serializes to different byte strings under
different obfuscated graphs, and parsing any of those byte strings yields the
same message back.  This is the "stable accessor interface" requirement of the
paper (Section VI).
"""

from __future__ import annotations

import copy as _copy
from typing import Any, Iterator

from .errors import MessageError
from .fieldpath import INDEX, FieldPath


class Message:
    """A logical protocol message (nested dict/list/scalar structure)."""

    __slots__ = ("_data",)

    def __init__(self, data: dict[str, Any] | None = None):
        self._data: dict[str, Any] = data if data is not None else {}

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Message":
        """Build a message from a plain nested dictionary (deep-copied)."""
        return cls(_copy.deepcopy(data))

    def copy(self) -> "Message":
        """Deep copy of the message."""
        return Message(_copy.deepcopy(self._data))

    @property
    def raw(self) -> dict[str, Any]:
        """The live underlying nested dictionary (no copy).

        Mutations are visible through the message; the wire runtime's compiled
        accessors navigate this structure directly.
        """
        return self._data

    # -- field access ---------------------------------------------------------

    def get(self, path: FieldPath | str, default: Any = None) -> Any:
        """Value stored at ``path`` or ``default`` when absent."""
        resolved = self._concrete(path)
        container: Any = self._data
        for step in resolved.steps:
            if isinstance(step, str):
                if not isinstance(container, dict) or step not in container:
                    return default
                container = container[step]
            else:
                if not isinstance(container, list) or not 0 <= step < len(container):
                    return default
                container = container[step]
        return container

    def has(self, path: FieldPath | str) -> bool:
        """True when a value (possibly ``None``) exists at ``path``."""
        sentinel = object()
        return self.get(path, sentinel) is not sentinel

    def set(self, path: FieldPath | str, value: Any) -> None:
        """Store ``value`` at ``path``, creating intermediate containers as needed."""
        resolved = self._concrete(path)
        if not resolved:
            raise MessageError("cannot assign the message root; use from_dict instead")
        container: Any = self._data
        steps = resolved.steps
        last = len(steps) - 1
        for position in range(last):
            step = steps[position]
            if isinstance(step, str):
                if not isinstance(container, dict):
                    raise MessageError(f"expected a dict at {steps[:position]!r}")
                container = self._descend_dict(container, step, steps[position + 1])
            else:
                if not isinstance(container, list):
                    raise MessageError(f"expected a list at {steps[:position]!r}")
                while len(container) <= step:
                    container.append(None)
                container = self._descend_list(container, step, steps[position + 1])
        step = steps[last]
        if isinstance(step, str):
            if not isinstance(container, dict):
                raise MessageError(f"expected a dict at {steps[:last]!r}")
            container[step] = value
        else:
            if not isinstance(container, list):
                raise MessageError(f"expected a list at {steps[:last]!r}")
            while len(container) <= step:
                container.append(None)
            container[step] = value

    def delete(self, path: FieldPath | str) -> None:
        """Remove the value at ``path`` (no-op when absent)."""
        resolved = self._concrete(path)
        if not resolved:
            raise MessageError("cannot delete the message root")
        parent = self.get(resolved.parent(), None) if len(resolved) > 1 else self._data
        last = resolved.steps[-1]
        if isinstance(parent, dict) and isinstance(last, str):
            parent.pop(last, None)
        elif isinstance(parent, list) and isinstance(last, int) and 0 <= last < len(parent):
            parent[last] = None

    def list_length(self, path: FieldPath | str) -> int:
        """Number of elements of the list stored at ``path`` (0 when absent)."""
        value = self.get(path)
        if value is None:
            return 0
        if not isinstance(value, list):
            raise MessageError(f"field {FieldPath.of(path)} is not a list")
        return len(value)

    # -- iteration and export ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Deep copy of the underlying nested dictionary."""
        return _copy.deepcopy(self._data)

    def leaves(self) -> Iterator[tuple[FieldPath, Any]]:
        """Iterate over (path, value) pairs of every scalar leaf."""
        yield from self._walk(FieldPath(), self._data)

    def _walk(self, prefix: FieldPath, value: Any) -> Iterator[tuple[FieldPath, Any]]:
        if isinstance(value, dict):
            for key in value:
                yield from self._walk(prefix.child(key), value[key])
        elif isinstance(value, list):
            for index, item in enumerate(value):
                yield from self._walk(prefix.child(index), item)
        else:
            yield prefix, value

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _concrete(path: FieldPath | str) -> FieldPath:
        resolved = FieldPath.of(path)
        if not resolved.is_concrete:
            raise MessageError(f"path {resolved} still contains unbound indices")
        return resolved

    @staticmethod
    def _descend_dict(container: dict, step: str, next_step: Any) -> Any:
        existing = container.get(step)
        if isinstance(existing, (dict, list)):
            return existing
        created: Any = [] if isinstance(next_step, int) or next_step is INDEX else {}
        container[step] = created
        return created

    @staticmethod
    def _descend_list(container: list, step: int, next_step: Any) -> Any:
        existing = container[step]
        if isinstance(existing, (dict, list)):
            return existing
        created: Any = [] if isinstance(next_step, int) or next_step is INDEX else {}
        container[step] = created
        return created

    # -- dunder protocol ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Message):
            return self._data == other._data
        if isinstance(other, dict):
            return self._data == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - messages are mutable
        raise TypeError("Message objects are mutable and unhashable")

    def __repr__(self) -> str:
        return f"Message({self._data!r})"
