"""Core data model of the ProtoObf reproduction.

This package contains the message format graph (nodes, boundaries, value
kinds), the logical message model and the graph construction/validation
helpers.  Everything else in the library (transformations, wire runtime, code
generator, protocols) is built on top of these types.
"""

from .boundary import Boundary, BoundaryKind
from .builder import (
    assign_origins,
    build_graph,
    bytes_field,
    delimited_text,
    fixed_bytes,
    optional,
    remaining_bytes,
    repetition,
    sequence,
    tabular,
    text_field,
    uint,
)
from .errors import (
    CodegenError,
    GraphError,
    MessageError,
    NotApplicableError,
    ParseError,
    ReproError,
    SerializationError,
    SpecError,
    TransformError,
)
from .fieldpath import INDEX, ROOT_PATH, FieldPath
from .graph import FormatGraph, GraphStats, parse_window_known, static_size
from .message import Message
from .node import COMPOSITE_TYPES, Node, NodeType
from .validate import validate_graph
from .values import (
    Endian,
    Synthesis,
    SynthesisOp,
    Value,
    ValueKind,
    ValueOp,
    ValueOpKind,
    apply_chain,
    decode_uint,
    decode_value,
    default_value,
    encode_uint,
    encode_value,
    invert_chain,
)

__all__ = [
    "Boundary",
    "BoundaryKind",
    "COMPOSITE_TYPES",
    "CodegenError",
    "Endian",
    "FieldPath",
    "FormatGraph",
    "GraphError",
    "GraphStats",
    "INDEX",
    "Message",
    "MessageError",
    "Node",
    "NodeType",
    "NotApplicableError",
    "ParseError",
    "ROOT_PATH",
    "ReproError",
    "SerializationError",
    "SpecError",
    "Synthesis",
    "SynthesisOp",
    "TransformError",
    "Value",
    "ValueKind",
    "ValueOp",
    "ValueOpKind",
    "apply_chain",
    "assign_origins",
    "build_graph",
    "bytes_field",
    "decode_uint",
    "decode_value",
    "default_value",
    "delimited_text",
    "encode_uint",
    "encode_value",
    "fixed_bytes",
    "invert_chain",
    "optional",
    "parse_window_known",
    "remaining_bytes",
    "repetition",
    "sequence",
    "static_size",
    "tabular",
    "text_field",
    "uint",
    "validate_graph",
]
