"""Message framing policies of the live transport layer.

Two framings move protocol messages across a byte stream:

* **native** — messages ride back-to-back with no envelope; the receiver
  frames them with the incremental :class:`~repro.wire.streaming.StreamingDecoder`.
  Requires the format graph to be *self-framing*
  (:func:`~repro.wire.streaming.is_self_framing`): its parse must never
  consult the end of the stream.
* **record** — each message is wrapped in a 4-byte big-endian length-prefixed
  record (the TLS-record / websocket-frame construction).  Works for every
  graph, including stream-greedy ones like HTTP with its END-bounded body.

``"auto"`` picks native when the graph allows it and record otherwise, which
is what the session layer defaults to.  The capture layer always records the
*payload* bytes — the protocol message exactly as the PRE substrate expects
it — never the record envelope.

Record framing additionally carries **rotation control records**: an
all-ones length prefix (``0xFFFFFFFF``, invalid as a payload length) followed
by a short key identifier.  A rotation record tells the receiver "every
record after this boundary is serialized under the plan registered as
``key_id``" — the plan itself is never on the wire; both endpoints must hold
it in their :class:`~repro.net.rotation.PlanBook` (the shared secret of the
paper's threat model).  Native framing has no envelope to carry control
records, so rotation-capable sessions always use record framing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.errors import BudgetExceeded, ParseError, StreamError
from ..core.graph import FormatGraph
from ..wire.plan import CodecPlan, plan_for
from ..wire.streaming import DecodedMessage, StreamingDecoder, is_self_framing

#: Width of the record-framing length prefix (bytes, big-endian).
RECORD_HEADER = 4

#: Upper bound on one record's payload; guards against desynchronized or
#: hostile peers allocating unbounded buffers.
MAX_RECORD_SIZE = 1 << 24

#: Length-prefix value marking a rotation control record.  Far above
#: MAX_RECORD_SIZE, so it can never be a legitimate payload length.
ROTATION_SENTINEL = (1 << (8 * RECORD_HEADER)) - 1

#: Width of the key-identifier length field of a rotation control record.
ROTATION_KEY_HEADER = 2

#: Length-prefix value marking a busy/retry-after control record — the typed
#: refusal an overloaded server sheds new admissions with.  Also far above
#: any legal payload length (record-size limits must stay below it).
BUSY_SENTINEL = ROTATION_SENTINEL - 1

#: Width of the retry-after field of a busy control record (milliseconds,
#: big-endian, saturating).
BUSY_RETRY_HEADER = 2

FRAMINGS = ("auto", "native", "record")


def resolve_framing(graph: FormatGraph, mode: str = "auto") -> str:
    """Resolve a framing mode for ``graph`` (``"native"`` or ``"record"``)."""
    if mode not in FRAMINGS:
        raise ValueError(f"unknown framing {mode!r}; expected one of {FRAMINGS}")
    if mode == "auto":
        return "native" if is_self_framing(graph) else "record"
    if mode == "native" and not is_self_framing(graph):
        raise StreamError(
            f"graph {graph.name!r} is not self-framing (greedy nodes consult "
            f"the stream end); use record framing"
        )
    return mode


def encode_record(payload: bytes, *, max_size: int = MAX_RECORD_SIZE) -> bytes:
    """Wrap ``payload`` in a length-prefixed record."""
    if len(payload) >= max_size:
        raise StreamError(
            f"record payload of {len(payload)} bytes exceeds the "
            f"{max_size}-byte limit"
        )
    return len(payload).to_bytes(RECORD_HEADER, "big") + payload


@dataclass(frozen=True)
class CorruptRecord:
    """A framed record whose payload would not parse, skipped under resync.

    Only emitted by a :class:`RecordDecoder` constructed with ``resync=True``:
    the record envelope was intact (plausible length prefix, all payload bytes
    arrived), but the payload failed strict parsing — the signature of
    in-flight byte corruption rather than desynchronization.  The decoder
    reports the damaged record in stream order and *resynchronizes at the
    next record boundary*, which the length prefix locates exactly.  Header
    damage (an implausible length) stays a hard :class:`StreamError`: once
    the prefix itself lies, there is no trustworthy next boundary.
    """

    #: the undecodable payload bytes, as delivered.
    raw: bytes
    #: payload-offset extent of the skipped record.
    start: int
    end: int
    #: the strict parse failure that condemned the payload.
    error: StreamError


@dataclass(frozen=True)
class RotationEvent:
    """A plan switch observed in a record stream, at its exact boundary.

    Emitted by :class:`RecordDecoder` in stream order between the decoded
    messages, so a consumer replying to a batch of messages serializes each
    reply under the key that was in force when *that* message was decoded.
    """

    key_id: str


def encode_rotation(key_id: str) -> bytes:
    """Wire bytes of a rotation control record announcing ``key_id``."""
    encoded = key_id.encode("utf-8")
    if not encoded or len(encoded) >= 1 << (8 * ROTATION_KEY_HEADER):
        raise StreamError(
            f"rotation key id must encode to 1..{(1 << (8 * ROTATION_KEY_HEADER)) - 1} "
            f"bytes, got {len(encoded)}"
        )
    return (
        ROTATION_SENTINEL.to_bytes(RECORD_HEADER, "big")
        + len(encoded).to_bytes(ROTATION_KEY_HEADER, "big")
        + encoded
    )


@dataclass(frozen=True)
class BusyEvent:
    """An overloaded peer shed this admission, advising when to retry.

    Emitted by :class:`RecordDecoder` when a busy control record
    (:func:`encode_busy`) arrives.  The session layer converts it into a
    retryable :class:`~repro.net.governance.ServerBusy`, which a client's
    :class:`~repro.net.resilience.RetryPolicy` backs off on.
    """

    #: server's advisory backoff hint, in seconds.
    retry_after: float


def encode_busy(retry_after: float = 0.0) -> bytes:
    """Wire bytes of a busy control record advising ``retry_after`` seconds."""
    if retry_after < 0:
        raise StreamError(f"retry_after cannot be negative ({retry_after})")
    millis = min(round(retry_after * 1000), (1 << (8 * BUSY_RETRY_HEADER)) - 1)
    return (
        BUSY_SENTINEL.to_bytes(RECORD_HEADER, "big")
        + millis.to_bytes(BUSY_RETRY_HEADER, "big")
    )


class RecordDecoder:
    """Incremental decoder of length-prefixed records carrying wire messages.

    The record-framing counterpart of
    :class:`~repro.wire.streaming.StreamingDecoder`, with the same
    ``feed()`` / ``feed_eof()`` surface: each completed record's payload is
    parsed as one whole message (strict), and the reported stream offsets
    are *payload* offsets so captures and decoders agree on extents.

    With a ``key_resolver`` the decoder additionally understands rotation
    control records (:func:`encode_rotation`): the resolver maps the announced
    key id to the new format graph, the decoder swaps its parser at that exact
    record boundary, and a :class:`RotationEvent` is emitted in stream order
    so the consumer can rotate its own sending side in step.  Without a
    resolver a rotation record is a hard :class:`StreamError` — an endpoint
    that does not hold the plan book cannot follow the key change.

    With ``resync=True`` an undecodable record *payload* is reported as a
    :class:`CorruptRecord` event instead of failing the stream, and decoding
    resumes at the next record boundary — the recovery the length-prefixed
    envelope makes possible.  Header-level damage (an implausible length
    prefix) remains terminal either way.

    ``max_record_size`` bounds one record's *declared* payload size,
    per-instance (default :data:`MAX_RECORD_SIZE`); the declaration is
    validated the moment the 4 header bytes arrive — before a single payload
    byte is buffered toward it — and a violation raises a typed
    :class:`~repro.core.errors.BudgetExceeded`.  ``budget`` (duck-typed,
    usually a :class:`~repro.net.governance.ResourceBudget`) supplies that
    limit via ``max_declared_bytes`` plus ``max_stream_bytes`` (cap on the
    decoder's buffered backlog) and ``max_steps_per_feed`` (cap on records
    decoded from one fed chunk).
    """

    def __init__(self, graph: FormatGraph, *, plan: CodecPlan | None = None,
                 key_resolver: "Callable[[str], FormatGraph] | None" = None,
                 resync: bool = False, max_record_size: int | None = None,
                 budget=None, parser_factory=None):
        if max_record_size is None:
            max_record_size = getattr(budget, "max_declared_bytes", None)
        if max_record_size is None:
            max_record_size = MAX_RECORD_SIZE
        if not 0 < max_record_size < BUSY_SENTINEL:
            raise StreamError(
                f"max_record_size must be in 1..{BUSY_SENTINEL - 1} "
                f"({max_record_size}): the control-record sentinels live above"
            )
        self.graph = graph
        #: graph -> parser-like (``parse(payload, strict=True)``); lets a
        #: session swap in the specialized compiled codec tier, including
        #: across rotations (the factory is re-invoked per rotated-to graph).
        self._parser_factory = parser_factory
        self._parser = self._make_parser(graph, plan)
        self._key_resolver = key_resolver
        self.resync = resync
        self.max_record_size = max_record_size
        self._max_stream = getattr(budget, "max_stream_bytes", None)
        self._max_steps = getattr(budget, "max_steps_per_feed", None)
        #: records skipped under resync (mirrors the CorruptRecord events).
        self.corrupt_count = 0
        #: payload bytes discarded by resync skips.
        self.skipped_bytes = 0
        #: rotation control records followed (plan switches in this stream).
        self.rotations = 0
        #: key id of the plan currently in force (None until the first rotation).
        self.current_key: str | None = None
        self._buffer = bytearray()
        self._eof = False
        self._decoded = 0
        self._steps = 0
        self._payload_offset = 0
        self._failed: StreamError | None = None

    def _make_parser(self, graph: FormatGraph, plan: "CodecPlan | None" = None):
        if self._parser_factory is not None:
            return self._parser_factory(graph)
        from ..wire.parser import Parser  # local: keeps module import light

        return Parser(graph, plan=plan if plan is not None else plan_for(graph))

    @property
    def needs_more(self) -> bool:
        return len(self._buffer) > 0

    @property
    def buffered(self) -> int:
        """Bytes currently buffered toward the next record."""
        return len(self._buffer)

    @property
    def decoded_count(self) -> int:
        return self._decoded

    def counters(self) -> dict:
        """Decode accounting of this stream (diagnosis / bench reporting)."""
        return {
            "records": self._decoded,
            "rotations": self.rotations,
            "corrupt_skipped": self.corrupt_count,
            "skipped_bytes": self.skipped_bytes,
            "buffered": len(self._buffer),
        }

    def feed(self, data: bytes) -> "list[DecodedMessage | RotationEvent | CorruptRecord | BusyEvent]":
        self._check_failed()
        if self._eof:
            raise StreamError("cannot feed bytes after end-of-stream")
        if (self._max_stream is not None
                and len(self._buffer) + len(data) > self._max_stream):
            raise self._fail(BudgetExceeded(
                "stream_bytes", limit=self._max_stream,
                actual=len(self._buffer) + len(data),
                message_index=self._decoded,
            ))
        self._steps = 0
        self._buffer += data
        return self._drain()

    def feed_eof(self) -> "list[DecodedMessage | RotationEvent | CorruptRecord | BusyEvent]":
        self._check_failed()
        self._eof = True
        self._steps = 0
        completed = self._drain()
        if self._buffer:
            raise self._fail(StreamError(
                f"stream ended inside a record ({len(self._buffer)} byte(s) "
                f"buffered)", message_index=self._decoded,
            ))
        return completed

    def rotate_to(self, graph: FormatGraph, *, plan: CodecPlan | None = None,
                  key_id: str | None = None) -> None:
        """Switch to decoding ``graph`` from the next record on.

        Used by an endpoint rotating its *receiving* direction locally (the
        client after announcing a rotation): refuses to switch while bytes of
        the old dialect are still buffered — rotate at a quiescent message
        boundary.  Inbound rotation control records switch the parser
        directly instead, because bytes buffered *behind* the control record
        already belong to the new dialect.
        """
        if self._buffer:
            raise StreamError(
                f"cannot rotate the decoder with {len(self._buffer)} byte(s) "
                f"of the previous dialect still buffered; drain in-flight "
                f"records first"
            )
        self.graph = graph
        self._parser = self._make_parser(graph, plan)
        self.current_key = key_id

    def _drain(self) -> "list[DecodedMessage | RotationEvent | CorruptRecord | BusyEvent]":
        completed: "list[DecodedMessage | RotationEvent | CorruptRecord | BusyEvent]" = []
        while True:
            if len(self._buffer) < RECORD_HEADER:
                break
            size = int.from_bytes(self._buffer[:RECORD_HEADER], "big")
            if size == ROTATION_SENTINEL:
                header = RECORD_HEADER + ROTATION_KEY_HEADER
                if len(self._buffer) < header:
                    break
                key_size = int.from_bytes(
                    self._buffer[RECORD_HEADER:header], "big"
                )
                if len(self._buffer) < header + key_size:
                    break
                key_id = bytes(self._buffer[header:header + key_size]).decode(
                    "utf-8", errors="replace"
                )
                del self._buffer[:header + key_size]
                if self._key_resolver is None:
                    raise self._fail(StreamError(
                        f"peer announced a rotation to key {key_id!r} but this "
                        f"endpoint holds no plan book",
                        message_index=self._decoded,
                    ))
                try:
                    graph = self._key_resolver(key_id)
                except KeyError as exc:
                    raise self._fail(StreamError(
                        f"peer rotated to unknown key {key_id!r}",
                        message_index=self._decoded,
                    )) from exc
                # Swap directly: any bytes buffered behind the control record
                # were serialized under the new dialect by stream order.
                self.graph = graph
                self._parser = self._make_parser(graph)
                self.current_key = key_id
                self.rotations += 1
                completed.append(RotationEvent(key_id))
                continue
            if size == BUSY_SENTINEL:
                header = RECORD_HEADER + BUSY_RETRY_HEADER
                if len(self._buffer) < header:
                    break
                millis = int.from_bytes(self._buffer[RECORD_HEADER:header], "big")
                del self._buffer[:header]
                completed.append(BusyEvent(retry_after=millis / 1000.0))
                continue
            if size >= self.max_record_size:
                # The declaration alone condemns the record: fail before a
                # single payload byte is buffered toward it.
                raise self._fail(BudgetExceeded(
                    "record_bytes", limit=self.max_record_size, actual=size,
                    message=(
                        f"record of {size} bytes exceeds the "
                        f"{self.max_record_size}-byte limit "
                        f"(stream desynchronized?)"
                    ),
                    message_index=self._decoded,
                ))
            if len(self._buffer) < RECORD_HEADER + size:
                break
            self._steps += 1
            if self._max_steps is not None and self._steps > self._max_steps:
                raise self._fail(BudgetExceeded(
                    "decode_steps", limit=self._max_steps, actual=self._steps,
                    message_index=self._decoded,
                ))
            payload = bytes(self._buffer[RECORD_HEADER : RECORD_HEADER + size])
            del self._buffer[: RECORD_HEADER + size]
            try:
                message = self._parser.parse(payload, strict=True)
            except ParseError as exc:
                wrapped = StreamError(
                    f"undecodable record payload: {exc}",
                    message_index=self._decoded,
                )
                wrapped.offset, wrapped.node = exc.offset, exc.node
                if self.resync:
                    # The envelope still frames the stream: report the damaged
                    # record and resynchronize at the next record boundary.
                    start = self._payload_offset
                    self._payload_offset += size
                    self.corrupt_count += 1
                    self.skipped_bytes += size
                    completed.append(CorruptRecord(
                        raw=payload, start=start, end=self._payload_offset,
                        error=wrapped,
                    ))
                    continue
                raise self._fail(wrapped) from exc
            start = self._payload_offset
            self._payload_offset += size
            completed.append(DecodedMessage(
                message=message, raw=payload, start=start, end=self._payload_offset,
            ))
            self._decoded += 1
        return completed

    def _fail(self, error: StreamError) -> StreamError:
        self._failed = error
        return error

    def _check_failed(self) -> None:
        # Re-raise the *original* stored error: diagnosis code downstream
        # relies on message_index/offset/node surviving repeated feeds.
        if self._failed is not None:
            raise self._failed


def make_decoder(graph: FormatGraph, framing: str, *,
                 plan: CodecPlan | None = None,
                 key_resolver: "Callable[[str], FormatGraph] | None" = None,
                 resync: bool = False, budget=None,
                 max_record_size: int | None = None,
                 parser_factory=None):
    """Instantiate the incremental decoder matching a resolved framing.

    ``key_resolver`` enables rotation control records; only record framing
    carries them (native framing has no envelope for control traffic).
    ``resync`` asks for corrupt-payload recovery at record boundaries — a
    record-framing capability; a native stream has no boundary to resume at,
    so requesting resync there is an error rather than a silent downgrade.
    ``budget`` (a :class:`~repro.net.governance.ResourceBudget` or any
    duck-typed equivalent) threads per-session limits into either decoder;
    ``max_record_size`` additionally overrides the record-size ceiling.
    ``parser_factory`` (graph → object with ``parse(payload, strict=True)``)
    swaps whole-record parsing to an alternative codec tier — the specialized
    compiled modules in practice.  Record framing only: native framing parses
    incrementally and keeps the interpreted streaming decoder.
    """
    if framing == "native":
        if key_resolver is not None:
            raise StreamError(
                "native framing cannot carry rotation control records; "
                "use record framing for rotation-capable sessions"
            )
        if resync:
            raise StreamError(
                "native framing cannot resynchronize after corruption "
                "(no record boundary to resume at); use record framing"
            )
        return StreamingDecoder(graph, plan=plan, budget=budget)
    if framing == "record":
        return RecordDecoder(graph, plan=plan, key_resolver=key_resolver,
                             resync=resync, budget=budget,
                             max_record_size=max_record_size,
                             parser_factory=parser_factory)
    raise ValueError(f"unresolved framing {framing!r}")


def frame_payload(payload: bytes, framing: str) -> bytes:
    """Wire bytes actually written for one message payload."""
    if framing == "native":
        return payload
    if framing == "record":
        return encode_record(payload)
    raise ValueError(f"unresolved framing {framing!r}")


__all__ = [
    "BUSY_RETRY_HEADER",
    "BUSY_SENTINEL",
    "FRAMINGS",
    "MAX_RECORD_SIZE",
    "RECORD_HEADER",
    "ROTATION_KEY_HEADER",
    "ROTATION_SENTINEL",
    "BusyEvent",
    "CorruptRecord",
    "RecordDecoder",
    "RotationEvent",
    "encode_busy",
    "encode_record",
    "encode_rotation",
    "frame_payload",
    "make_decoder",
    "resolve_framing",
]
