"""Message framing policies of the live transport layer.

Two framings move protocol messages across a byte stream:

* **native** — messages ride back-to-back with no envelope; the receiver
  frames them with the incremental :class:`~repro.wire.streaming.StreamingDecoder`.
  Requires the format graph to be *self-framing*
  (:func:`~repro.wire.streaming.is_self_framing`): its parse must never
  consult the end of the stream.
* **record** — each message is wrapped in a 4-byte big-endian length-prefixed
  record (the TLS-record / websocket-frame construction).  Works for every
  graph, including stream-greedy ones like HTTP with its END-bounded body.

``"auto"`` picks native when the graph allows it and record otherwise, which
is what the session layer defaults to.  The capture layer always records the
*payload* bytes — the protocol message exactly as the PRE substrate expects
it — never the record envelope.
"""

from __future__ import annotations

from ..core.errors import ParseError, StreamError
from ..core.graph import FormatGraph
from ..wire.plan import CodecPlan, plan_for
from ..wire.streaming import DecodedMessage, StreamingDecoder, is_self_framing

#: Width of the record-framing length prefix (bytes, big-endian).
RECORD_HEADER = 4

#: Upper bound on one record's payload; guards against desynchronized or
#: hostile peers allocating unbounded buffers.
MAX_RECORD_SIZE = 1 << 24

FRAMINGS = ("auto", "native", "record")


def resolve_framing(graph: FormatGraph, mode: str = "auto") -> str:
    """Resolve a framing mode for ``graph`` (``"native"`` or ``"record"``)."""
    if mode not in FRAMINGS:
        raise ValueError(f"unknown framing {mode!r}; expected one of {FRAMINGS}")
    if mode == "auto":
        return "native" if is_self_framing(graph) else "record"
    if mode == "native" and not is_self_framing(graph):
        raise StreamError(
            f"graph {graph.name!r} is not self-framing (greedy nodes consult "
            f"the stream end); use record framing"
        )
    return mode


def encode_record(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length-prefixed record."""
    if len(payload) >= MAX_RECORD_SIZE:
        raise StreamError(
            f"record payload of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_SIZE}-byte limit"
        )
    return len(payload).to_bytes(RECORD_HEADER, "big") + payload


class RecordDecoder:
    """Incremental decoder of length-prefixed records carrying wire messages.

    The record-framing counterpart of
    :class:`~repro.wire.streaming.StreamingDecoder`, with the same
    ``feed()`` / ``feed_eof()`` surface: each completed record's payload is
    parsed as one whole message (strict), and the reported stream offsets
    are *payload* offsets so captures and decoders agree on extents.
    """

    def __init__(self, graph: FormatGraph, *, plan: CodecPlan | None = None):
        from ..wire.parser import Parser  # local: keeps module import light

        self.graph = graph
        self._parser = Parser(graph, plan=plan if plan is not None else plan_for(graph))
        self._buffer = bytearray()
        self._eof = False
        self._decoded = 0
        self._payload_offset = 0
        self._failed: StreamError | None = None

    @property
    def needs_more(self) -> bool:
        return len(self._buffer) > 0

    @property
    def decoded_count(self) -> int:
        return self._decoded

    def feed(self, data: bytes) -> list[DecodedMessage]:
        self._check_failed()
        if self._eof:
            raise StreamError("cannot feed bytes after end-of-stream")
        self._buffer += data
        return self._drain()

    def feed_eof(self) -> list[DecodedMessage]:
        self._check_failed()
        self._eof = True
        completed = self._drain()
        if self._buffer:
            raise self._fail(StreamError(
                f"stream ended inside a record ({len(self._buffer)} byte(s) "
                f"buffered)", message_index=self._decoded,
            ))
        return completed

    def _drain(self) -> list[DecodedMessage]:
        completed: list[DecodedMessage] = []
        while True:
            if len(self._buffer) < RECORD_HEADER:
                break
            size = int.from_bytes(self._buffer[:RECORD_HEADER], "big")
            if size >= MAX_RECORD_SIZE:
                raise self._fail(StreamError(
                    f"record of {size} bytes exceeds the {MAX_RECORD_SIZE}-byte "
                    f"limit (stream desynchronized?)", message_index=self._decoded,
                ))
            if len(self._buffer) < RECORD_HEADER + size:
                break
            payload = bytes(self._buffer[RECORD_HEADER : RECORD_HEADER + size])
            del self._buffer[: RECORD_HEADER + size]
            try:
                message = self._parser.parse(payload, strict=True)
            except ParseError as exc:
                wrapped = StreamError(
                    f"undecodable record payload: {exc}",
                    message_index=self._decoded,
                )
                wrapped.offset, wrapped.node = exc.offset, exc.node
                raise self._fail(wrapped) from exc
            start = self._payload_offset
            self._payload_offset += size
            completed.append(DecodedMessage(
                message=message, raw=payload, start=start, end=self._payload_offset,
            ))
            self._decoded += 1
        return completed

    def _fail(self, error: StreamError) -> StreamError:
        self._failed = error
        return error

    def _check_failed(self) -> None:
        if self._failed is not None:
            raise StreamError(
                f"decoder already failed: {self._failed}"
            ) from self._failed


def make_decoder(graph: FormatGraph, framing: str, *,
                 plan: CodecPlan | None = None):
    """Instantiate the incremental decoder matching a resolved framing."""
    if framing == "native":
        return StreamingDecoder(graph, plan=plan)
    if framing == "record":
        return RecordDecoder(graph, plan=plan)
    raise ValueError(f"unresolved framing {framing!r}")


def frame_payload(payload: bytes, framing: str) -> bytes:
    """Wire bytes actually written for one message payload."""
    if framing == "native":
        return payload
    if framing == "record":
        return encode_record(payload)
    raise ValueError(f"unresolved framing {framing!r}")


__all__ = [
    "FRAMINGS",
    "MAX_RECORD_SIZE",
    "RECORD_HEADER",
    "RecordDecoder",
    "encode_record",
    "frame_payload",
    "make_decoder",
    "resolve_framing",
]
