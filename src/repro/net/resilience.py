"""Deterministic session-resilience primitives for the live transport layer.

The endpoints of :mod:`repro.net` speak over the hostile link of
:mod:`repro.net.faults`, but until this module they were fair-weather: no
operation had a deadline, a cut session stayed dead, and teardown drained
forever against a stalled peer.  This module supplies the recovery
vocabulary — and keeps every recovery decision **seeded and replayable**, in
the repo's bit-identical idiom: a given seed replays an identical retry
schedule, and a session's recovery history is a :class:`ResilienceTrace`
whose JSON form is byte-identical across runs of the same seed (no wall
clock ever enters the trace).

* :class:`Clock` — the injectable time source.  :class:`RealClock` is the
  event loop's monotonic time; :class:`VirtualClock` is manually advanced,
  so timeout and drain tests run flake-free without a single real sleep.
* :class:`Deadline` / :class:`TimeoutConfig` — absolute budgets derived from
  a clock, and the per-operation timeout knobs (connect, per-request,
  idle-read, drain) the endpoints consume.
* :class:`RetryPolicy` — bounded attempts with exponential backoff whose
  jitter draws from a seeded :class:`~random.Random`: the delay schedule is
  a pure function of the seed.
* :class:`CircuitBreaker` — trips open after consecutive failures, refuses
  fast while open, half-opens after a cooldown measured on the injected
  clock.
* :class:`ResilienceTrace` — the ordered, typed record of every recovery
  decision (retry, reconnect, resync, timeout, rotation resume, breaker
  trip, drain cancel) that the chaos-soak gate diffs across seeded reruns.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import json
import math
from dataclasses import dataclass, field, replace
from random import Random

from ..core.errors import ReproError


class ResilienceError(ReproError):
    """A resilience-policy violation (bad configuration, exhausted budget)."""


class DeadlineExceeded(ResilienceError, TimeoutError):
    """An operation overran its deadline (also catchable as TimeoutError)."""

    def __init__(self, operation: str, timeout: float):
        super().__init__(f"{operation} exceeded its {timeout:g}s deadline")
        self.operation = operation
        self.timeout = timeout


class CircuitOpen(ResilienceError):
    """The circuit breaker is open: the operation was refused, not attempted."""


class RetriesExhausted(ResilienceError):
    """Every attempt a retry policy allowed has failed."""

    def __init__(self, operation: str, attempts: int, last: BaseException):
        super().__init__(
            f"{operation} failed after {attempts} attempt(s): "
            f"{type(last).__name__}: {last}"
        )
        self.operation = operation
        self.attempts = attempts
        self.last = last


# ---------------------------------------------------------------------------
# clocks
# ---------------------------------------------------------------------------


class RealClock:
    """Event-loop monotonic time; the production clock."""

    def now(self) -> float:
        return asyncio.get_event_loop().time()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(max(0.0, delay))

    async def wait_for(self, awaitable, timeout: "float | None"):
        """``asyncio.wait_for`` with ``None`` meaning *no deadline*."""
        if timeout is None:
            return await awaitable
        return await asyncio.wait_for(awaitable, timeout)


class VirtualClock:
    """A manually advanced clock: timeouts without real time.

    ``sleep``/``wait_for`` suspend on futures that only resolve when the test
    calls :meth:`advance` (or :meth:`run`, which auto-advances to the next
    scheduled wake-up).  Tests of idle reaping, drain deadlines and retry
    backoff therefore run in microseconds and can never flake on scheduler
    jitter — the satellite requirement "virtual clock, no sleeps".
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._sequence = itertools.count()
        #: heap of (due time, tiebreak, future)
        self._sleepers: list[tuple[float, int, asyncio.Future]] = []

    def now(self) -> float:
        return self._now

    async def sleep(self, delay: float) -> None:
        if delay <= 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_event_loop().create_future()
        heapq.heappush(self._sleepers,
                       (self._now + delay, next(self._sequence), future))
        await future

    async def wait_for(self, awaitable, timeout: "float | None"):
        if timeout is None:
            return await awaitable
        task = asyncio.ensure_future(awaitable)
        timer = asyncio.ensure_future(self.sleep(timeout))
        try:
            done, _ = await asyncio.wait(
                {task, timer}, return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            for pending in (task, timer):
                pending.cancel()
            await asyncio.gather(task, timer, return_exceptions=True)
            raise
        if task in done:
            timer.cancel()
            await asyncio.gather(timer, return_exceptions=True)
            return task.result()
        task.cancel()
        await asyncio.gather(task, return_exceptions=True)
        raise asyncio.TimeoutError(
            f"virtual wait_for overran its {timeout:g}s timeout")

    async def _settle(self, rounds: int = 10) -> None:
        # Let already-runnable coroutines reach their next await.
        for _ in range(rounds):
            await asyncio.sleep(0)

    async def advance(self, delta: float) -> None:
        """Move time forward, waking every sleeper whose due time passed."""
        await self._settle()
        target = self._now + max(0.0, delta)
        while self._sleepers and self._sleepers[0][0] <= target:
            due, _, future = heapq.heappop(self._sleepers)
            self._now = max(self._now, due)
            if not future.done():
                future.set_result(None)
            await self._settle()
        self._now = target
        await self._settle()

    async def run(self, awaitable, *, limit: int = 10_000):
        """Drive ``awaitable`` to completion, auto-advancing to each wake-up.

        Raises :class:`ResilienceError` when the task is blocked with nothing
        scheduled on the clock (a genuine hang a timeout should have bounded)
        or after ``limit`` advances (a runaway retry loop).
        """
        task = asyncio.ensure_future(awaitable)
        for _ in range(limit):
            await self._settle()
            if task.done():
                return task.result()
            if not self._sleepers:
                await self._settle(50)
                if task.done():
                    return task.result()
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
                raise ResilienceError(
                    "virtual clock has nothing scheduled but the task is "
                    "still pending — an unbounded wait a deadline should cover"
                )
            await self.advance(self._sleepers[0][0] - self._now)
        task.cancel()
        await asyncio.gather(task, return_exceptions=True)
        raise ResilienceError(f"virtual clock exceeded {limit} advances")


#: Anything with now()/sleep()/wait_for() — RealClock, VirtualClock.
Clock = RealClock


# ---------------------------------------------------------------------------
# deadlines and timeout configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Deadline:
    """An absolute time budget measured on an injected clock."""

    clock: "RealClock | VirtualClock"
    at: "float | None"
    operation: str = "operation"

    @classmethod
    def after(cls, clock, timeout: "float | None", *,
              operation: str = "operation") -> "Deadline":
        """A deadline ``timeout`` seconds from now (``None`` = unbounded)."""
        at = None if timeout is None else clock.now() + timeout
        return cls(clock=clock, at=at, operation=operation)

    def remaining(self) -> "float | None":
        """Seconds left (clamped at 0); ``None`` when unbounded."""
        if self.at is None:
            return None
        return max(0.0, self.at - self.clock.now())

    @property
    def expired(self) -> bool:
        return self.at is not None and self.clock.now() >= self.at

    async def wait_for(self, awaitable):
        """Run ``awaitable`` under whatever budget remains."""
        remaining = self.remaining()
        try:
            return await self.clock.wait_for(awaitable, remaining)
        except (asyncio.TimeoutError, TimeoutError) as exc:
            raise DeadlineExceeded(
                self.operation,
                remaining if remaining is not None else math.inf,
            ) from exc


@dataclass(frozen=True)
class TimeoutConfig:
    """Per-operation timeout knobs of a resilient endpoint (seconds).

    ``None`` disables the bound.  Only ``drain`` carries a default: an
    unbounded teardown drain is how a slow-loris peer hangs a test suite,
    so :meth:`ObfuscatedClient.close` and ``ObfuscatedServer.stop`` are
    bounded out of the box while connect/request/idle stay opt-in
    (pre-resilience sessions keep their exact behavior).
    """

    #: dial budget of connect_tcp / reconnect attempts.
    connect: "float | None" = None
    #: budget of one request() round trip (send + await reply).
    request: "float | None" = None
    #: longest silence tolerated while awaiting inbound bytes.
    idle_read: "float | None" = None
    #: teardown budget for draining in-flight data / sessions.
    drain: "float | None" = 5.0

    def deadline(self, clock, which: str) -> Deadline:
        """An absolute deadline for one named knob, measured on ``clock``."""
        return Deadline.after(clock, getattr(self, which),
                              operation=f"{which} phase")


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with seeded exponential backoff.

    The delay before retry *n* (1-based) is
    ``min(max_delay, base_delay * multiplier**(n-1))`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1]`` out of ``Random(seed)``.
    Draws happen in a fixed order, one per retry, so :meth:`delays` is a pure
    function of the policy — the same seed replays the identical schedule,
    which is what lets the chaos-soak gate diff recovery traces bit-for-bit.
    """

    #: total tries including the first (1 = no retries).
    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    #: fraction of each delay randomized away (0 = fully deterministic).
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ResilienceError(f"attempts must be >= 1 ({self.attempts})")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ResilienceError("delays cannot be negative")
        if self.multiplier < 1.0:
            raise ResilienceError(f"multiplier must be >= 1 ({self.multiplier})")
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(f"jitter must be within [0, 1] ({self.jitter})")

    def reseed(self, seed: int) -> "RetryPolicy":
        return replace(self, seed=seed)

    def delays(self) -> tuple[float, ...]:
        """The full backoff schedule (one delay per retry, attempts-1 long)."""
        rng = Random(self.seed)
        schedule = []
        for retry in range(self.attempts - 1):
            delay = min(self.max_delay,
                        self.base_delay * self.multiplier ** retry)
            if self.jitter:
                delay *= 1.0 - self.jitter * rng.random()
            schedule.append(round(delay, 9))
        return tuple(schedule)


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Trips open after consecutive failures; recovers via half-open probes.

    States follow the classic machine: **closed** (operations flow, failures
    count), **open** (operations are refused with :class:`CircuitOpen` until
    ``reset_timeout`` elapses on the injected clock), **half-open** (one
    probe allowed; success closes, failure re-opens).  All transitions are
    recorded on an attached :class:`ResilienceTrace` so breaker trips are
    diagnosable events, never silent refusals.
    """

    def __init__(self, *, failure_threshold: int = 3,
                 reset_timeout: float = 1.0,
                 clock: "RealClock | VirtualClock | None" = None,
                 trace: "ResilienceTrace | None" = None):
        if failure_threshold < 1:
            raise ResilienceError(
                f"failure_threshold must be >= 1 ({failure_threshold})")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock if clock is not None else RealClock()
        self.trace = trace
        self.state = "closed"
        self.failures = 0
        self.trips = 0
        self._opened_at: float | None = None

    def _record(self, event: str, **details) -> None:
        if self.trace is not None:
            self.trace.record(event, **details)

    def allow(self) -> bool:
        """May an operation proceed right now?  (Half-opens after cooldown.)"""
        if self.state == "open":
            if (self._opened_at is not None
                    and self.clock.now() - self._opened_at >= self.reset_timeout):
                self.state = "half_open"
                self._record("breaker_half_open")
                return True
            return False
        return True

    def check(self, operation: str = "operation") -> None:
        """Raise :class:`CircuitOpen` unless the operation may proceed."""
        if not self.allow():
            raise CircuitOpen(
                f"{operation} refused: circuit breaker is open after "
                f"{self.failures} consecutive failure(s)"
            )

    def record_success(self) -> None:
        if self.state != "closed":
            self._record("breaker_close")
        self.state = "closed"
        self.failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.failure_threshold:
            if self.state != "open":
                self.trips += 1
                self._record("breaker_trip", failures=self.failures)
            self.state = "open"
            self._opened_at = self.clock.now()


# ---------------------------------------------------------------------------
# recovery traces
# ---------------------------------------------------------------------------


@dataclass
class ResilienceTrace:
    """The ordered, typed history of one endpoint's recovery decisions.

    Events are ``(kind, details)`` pairs carrying only *logical* data —
    attempt numbers, chosen backoff delays, key ids, typed error names —
    never wall-clock readings, so :meth:`to_json` of two runs under the same
    seed is byte-identical.  This is the artifact the chaos-soak benchmark's
    determinism guard compares.
    """

    events: list[dict] = field(default_factory=list)

    def record(self, kind: str, **details) -> dict:
        event = {"kind": kind, **details}
        self.events.append(event)
        return event

    def kinds(self) -> tuple[str, ...]:
        return tuple(event["kind"] for event in self.events)

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event["kind"] == kind)

    def to_json(self) -> str:
        return json.dumps(self.events, sort_keys=True, separators=(",", ":"))


async def retry_operation(operation, policy: RetryPolicy, *,
                          clock: "RealClock | VirtualClock | None" = None,
                          breaker: "CircuitBreaker | None" = None,
                          trace: "ResilienceTrace | None" = None,
                          retryable: tuple = (ConnectionError, OSError,
                                              asyncio.TimeoutError, TimeoutError),
                          label: str = "operation",
                          on_retry=None):
    """Run ``operation()`` under a retry policy, breaker and trace.

    ``operation`` is a zero-argument coroutine function called once per
    attempt.  Retryable failures consume one backoff delay from the policy's
    seeded schedule (slept on the injected clock) and are recorded on the
    trace; ``on_retry(attempt, error)`` — when given — runs before each
    re-attempt (the endpoints hook their re-dial there).  A breaker that is
    open refuses immediately with :class:`CircuitOpen` (never counted as an
    attempt); exhausting the schedule raises :class:`RetriesExhausted`
    carrying the last failure.
    """
    clock = clock if clock is not None else RealClock()
    delays = policy.delays()
    last: BaseException | None = None
    for attempt in range(1, policy.attempts + 1):
        if breaker is not None:
            breaker.check(label)
        try:
            result = await operation()
        except retryable as exc:
            last = exc
            if breaker is not None:
                breaker.record_failure()
            if attempt > len(delays):
                break
            delay = delays[attempt - 1]
            if trace is not None:
                trace.record("retry", op=label, attempt=attempt,
                             delay=delay, error=type(exc).__name__)
            await clock.sleep(delay)
            if on_retry is not None:
                await on_retry(attempt, exc)
        else:
            if breaker is not None:
                breaker.record_success()
            return result
    raise RetriesExhausted(label, policy.attempts, last)


__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "Clock",
    "Deadline",
    "DeadlineExceeded",
    "RealClock",
    "ResilienceError",
    "ResilienceTrace",
    "RetriesExhausted",
    "RetryPolicy",
    "TimeoutConfig",
    "VirtualClock",
    "retry_operation",
]
