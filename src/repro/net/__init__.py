"""Live transport layer: obfuscated protocol traffic over real byte streams.

Everything below the experiments so far ran on in-memory byte lists; this
package is the missing transport: framed streams, concurrent asyncio
sessions, an obfuscation gateway and capture objects that feed live traffic
straight into the PRE resilience study.

* :mod:`repro.net.framing` — native back-to-back framing (incremental
  streaming decoder) vs. length-prefixed records for stream-greedy graphs;
* :mod:`repro.net.session` — :class:`ObfuscatedServer` /
  :class:`ObfuscatedClient` speaking any registry protocol over TCP or the
  in-process duplex transport, driving the protocols' responder hooks;
* :mod:`repro.net.proxy` — :class:`ObfuscatedProxy`, the transparent
  plain↔obfuscated gateway;
* :mod:`repro.net.rotation` — :class:`SessionKey` / :class:`PlanBook`, the
  pre-shared obfuscation plans that endpoints rotate through mid-session;
* :mod:`repro.net.faults` — :class:`FaultPlan` / :class:`FaultInjector` /
  :class:`FaultyWriter`, the seeded hostile link (loss, reordering,
  duplication, corruption, truncation, slow-loris, connection cut,
  indefinite stall) under any session, and :class:`ChaosSchedule`, the
  seeded per-reconnect composition of connection-level faults;
* :mod:`repro.net.resilience` — the deterministic session-resilience layer:
  injectable clocks (:class:`RealClock` / :class:`VirtualClock`),
  :class:`Deadline` / :class:`TimeoutConfig`, seeded-backoff
  :class:`RetryPolicy`, :class:`CircuitBreaker` and the seed-replayable
  :class:`ResilienceTrace` of every recovery decision;
* :mod:`repro.net.governance` — resource governance:
  :class:`ResourceBudget` per-session memory/work limits (typed
  :class:`BudgetExceeded` violations) and the watermark-driven
  :class:`LoadGovernor` (``healthy → degraded → shedding`` overload states,
  heaviest-session read pausing, typed :class:`ServerBusy` admission sheds);
* :mod:`repro.net.capture` — :class:`Capture` records of the wire traffic
  (JSONL-portable, accepted by ``run_resilience`` and ``infer_formats``).

The incremental wire decoding itself lives in :mod:`repro.wire.streaming`.
"""

from ..wire.streaming import (
    DecodedMessage,
    StreamingDecoder,
    decode_stream,
    is_self_framing,
    stream_greedy_nodes,
)
from .capture import Capture, CaptureError, CaptureRecord
from .faults import (
    ChaosSchedule,
    FaultCounters,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultyWriter,
    faulty_memory_pipe,
)
from .resilience import (
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    RealClock,
    ResilienceError,
    ResilienceTrace,
    RetriesExhausted,
    RetryPolicy,
    TimeoutConfig,
    VirtualClock,
    retry_operation,
)
from .framing import (
    BusyEvent,
    CorruptRecord,
    RecordDecoder,
    RotationEvent,
    encode_busy,
    encode_record,
    encode_rotation,
    resolve_framing,
)
from .governance import (
    BudgetExceeded,
    GovernanceError,
    LoadGovernor,
    ResourceBudget,
    ServerBusy,
)
from .proxy import ObfuscatedProxy, ProxyStats
from .rotation import PlanBook, SessionKey, derive_session_key
from .session import (
    MemoryWriter,
    MeteredReader,
    ObfuscatedClient,
    ObfuscatedServer,
    SessionStats,
    connect_memory,
    memory_pipe,
)

__all__ = [
    "BudgetExceeded",
    "BusyEvent",
    "Capture",
    "CaptureError",
    "CaptureRecord",
    "ChaosSchedule",
    "CircuitBreaker",
    "CircuitOpen",
    "CorruptRecord",
    "Deadline",
    "DeadlineExceeded",
    "DecodedMessage",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultyWriter",
    "GovernanceError",
    "LoadGovernor",
    "MemoryWriter",
    "MeteredReader",
    "ObfuscatedClient",
    "ObfuscatedProxy",
    "ObfuscatedServer",
    "PlanBook",
    "ProxyStats",
    "RealClock",
    "RecordDecoder",
    "ResilienceError",
    "ResilienceTrace",
    "ResourceBudget",
    "RetriesExhausted",
    "RetryPolicy",
    "RotationEvent",
    "ServerBusy",
    "SessionKey",
    "SessionStats",
    "StreamingDecoder",
    "TimeoutConfig",
    "VirtualClock",
    "connect_memory",
    "decode_stream",
    "derive_session_key",
    "encode_busy",
    "encode_record",
    "encode_rotation",
    "faulty_memory_pipe",
    "is_self_framing",
    "memory_pipe",
    "resolve_framing",
    "retry_operation",
    "stream_greedy_nodes",
]
