"""Resource governance: per-session budgets, overload detection, load shedding.

PR 6 made the transport survive hostile *bytes* and PR 7 hostile *timing*;
this module handles hostile *volume*.  Without it a single peer can grow the
server's buffers without bound — declare a huge record and drip bytes toward
it, pack thousands of messages into one chunk, or simply outpace its consumer
— and take every other session down with it.  Two mechanisms restore the
graceful degradation the resilience study measures:

* a :class:`ResourceBudget` caps what one session may cost: buffered stream
  bytes, pending decoded messages, declared record/field sizes (validated
  *before* any buffering toward them) and decode work per feed.  The limits
  are enforced inside :class:`~repro.wire.streaming.StreamSource` /
  :class:`~repro.wire.streaming.StreamingDecoder`,
  :class:`~repro.net.framing.RecordDecoder` and the session pumps; every
  violation raises a typed :class:`BudgetExceeded` naming the resource, so
  an overload diagnosis is always attributable to a counter.

* a :class:`LoadGovernor` watches the *aggregate* — buffered bytes summed
  over all registered sessions, plus the session count — against low/high
  watermarks and moves the server through ``healthy → degraded → shedding``.
  Degraded servers pause reading on their heaviest sessions (real
  backpressure: the pump stops pulling, the transport's flow control pushes
  back to the sender) instead of buffering; shedding servers refuse new
  admissions with a typed busy/retry-after control record
  (:func:`~repro.net.framing.encode_busy`) that a resilient
  :class:`~repro.net.session.ObfuscatedClient` converts into
  :class:`ServerBusy` — a retryable condition its PR 7
  :class:`~repro.net.resilience.RetryPolicy` backs off on.

Everything is deterministic: the governor holds no clock and no randomness —
state transitions are a pure function of the accounting sequence — so an
overload soak replays byte-identically under the virtual clock, which is
exactly what ``benchmarks/test_bench_overload_soak.py`` pins.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, fields

from ..core.errors import BudgetExceeded, ReproError

__all__ = [
    "BudgetExceeded",
    "GovernanceError",
    "LoadGovernor",
    "ResourceBudget",
    "ServerBusy",
    "SessionLoad",
]

#: Governor states, in order of increasing distress.
GOVERNOR_STATES = ("healthy", "degraded", "shedding")


class GovernanceError(ReproError):
    """A budget or governor configuration is malformed."""


class ServerBusy(ConnectionError):
    """The peer shed this admission with a busy/retry-after control record.

    Subclasses :class:`ConnectionError`, so a client with a
    :class:`~repro.net.resilience.RetryPolicy` treats the shed exactly like
    a transport death: back off on the seeded schedule, reconnect, re-drive.
    ``retry_after`` carries the server's advisory hint from the wire.
    """

    def __init__(self, retry_after: float = 0.0, message: str | None = None):
        if message is None:
            message = (f"server overloaded: admission shed "
                       f"(retry after {retry_after:g}s)")
        super().__init__(message)
        self.retry_after = retry_after


# ---------------------------------------------------------------------------
# per-session budgets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResourceBudget:
    """What one session is allowed to cost, as hard typed limits.

    ``None`` disables the corresponding limit.  The budget object is passed
    to decoders and pumps by reference (duck-typed attributes, so the wire
    layer never imports the net layer); it is immutable, JSON round-trippable
    and fingerprintable like a :class:`~repro.net.faults.FaultPlan` — budget
    profiles are replayable experiment inputs, not tuning folklore.
    """

    #: max bytes buffered per stream (decoder backlog + queued messages).
    max_stream_bytes: int | None = 1 << 20
    #: max decoded-but-undelivered messages parked in a session pump.
    max_pending_messages: int | None = 1024
    #: max *declared* record/field size — validated against the declaration
    #: itself, before a single byte is buffered toward it.
    max_declared_bytes: int | None = 1 << 24
    #: max messages decoded from one fed chunk (work bound per feed).
    max_steps_per_feed: int | None = 4096

    def __post_init__(self) -> None:
        for name in ("max_stream_bytes", "max_pending_messages",
                     "max_declared_bytes", "max_steps_per_feed"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise GovernanceError(f"{name} must be >= 1 or None ({value})")

    # -- canned profiles -------------------------------------------------------

    @classmethod
    def standard(cls) -> "ResourceBudget":
        """The default production profile (generous but bounded)."""
        return cls()

    @classmethod
    def strict(cls) -> "ResourceBudget":
        """A tight profile for small-message protocols and hostile edges."""
        return cls(max_stream_bytes=1 << 16, max_pending_messages=64,
                   max_declared_bytes=1 << 13, max_steps_per_feed=256)

    @classmethod
    def unbounded(cls) -> "ResourceBudget":
        """No limits — the pre-governance behaviour, kept as a control."""
        return cls(max_stream_bytes=None, max_pending_messages=None,
                   max_declared_bytes=None, max_steps_per_feed=None)

    def describe(self) -> str:
        parts = []
        for entry in fields(self):
            value = getattr(self, entry.name)
            short = entry.name.replace("max_", "").replace("_bytes", "")
            parts.append(f"{short}={'∞' if value is None else value}")
        return " ".join(parts)

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ResourceBudget":
        known = {entry.name for entry in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise GovernanceError(
                f"unknown budget field(s): {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise GovernanceError(f"malformed budget: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ResourceBudget":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise GovernanceError(f"budget is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise GovernanceError("budget JSON must be an object")
        return cls.from_dict(payload)

    @property
    def fingerprint(self) -> str:
        """Stable short identifier of the profile (canonical-JSON digest)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# server-level overload control
# ---------------------------------------------------------------------------


class SessionLoad:
    """One session's load handle under a :class:`LoadGovernor`.

    The session's pump reports its buffered bytes through :meth:`update`
    after every accounting change, and awaits :meth:`readable` before each
    transport read — when the governor pauses this session, the pump simply
    stops pulling and the transport's own flow control does the rest.
    """

    __slots__ = ("session", "order", "buffered", "paused", "_governor",
                 "_readable")

    def __init__(self, session: str, order: int, governor: "LoadGovernor"):
        self.session = session
        #: registration sequence number (the deterministic pause tie-break).
        self.order = order
        self.buffered = 0
        self.paused = False
        self._governor = governor
        self._readable = asyncio.Event()
        self._readable.set()

    def update(self, buffered: int) -> None:
        """Report this session's current buffered bytes to the governor."""
        if buffered != self.buffered:
            self.buffered = buffered
            self._governor.reassess()

    async def readable(self) -> None:
        """Wait until the governor allows this session to read again."""
        await self._readable.wait()

    def _pause(self) -> None:
        self.paused = True
        self._readable.clear()

    def _resume(self) -> None:
        self.paused = False
        self._readable.set()


class LoadGovernor:
    """Watermark-driven overload state machine over a server's sessions.

    Tracks the aggregate buffered bytes and the session count of every
    registered :class:`SessionLoad` against low/high watermarks:

    * ``healthy`` — below every low watermark; all sessions read freely.
    * ``degraded`` — a low watermark is crossed; the governor pauses reading
      on the *heaviest* sessions (largest buffers first, registration order
      as the tie-break) until the unpaused aggregate fits back under
      ``low_bytes`` — backpressure lands on the sessions causing the load.
    * ``shedding`` — a high watermark is crossed; new admissions are refused
      with a typed busy record (:meth:`should_shed` /
      ``ObfuscatedServer``) while existing sessions keep draining.

    The governor holds no clock and draws no randomness: its state is a pure
    function of the accounting-call sequence, so overload behaviour replays
    deterministically.  ``retry_after`` is the advisory hint carried by shed
    responses.  Transitions, pauses and sheds are counted and, when a
    ``trace`` is attached, recorded as typed events.
    """

    def __init__(self, *, low_bytes: int = 256 << 10,
                 high_bytes: int = 1 << 20,
                 low_sessions: int | None = None,
                 high_sessions: int | None = None,
                 retry_after: float = 0.25,
                 trace=None):
        if not 0 < low_bytes <= high_bytes:
            raise GovernanceError(
                f"need 0 < low_bytes <= high_bytes "
                f"({low_bytes} / {high_bytes})"
            )
        if (low_sessions is not None and high_sessions is not None
                and low_sessions > high_sessions):
            raise GovernanceError(
                f"need low_sessions <= high_sessions "
                f"({low_sessions} / {high_sessions})"
            )
        for name, value in (("low_sessions", low_sessions),
                            ("high_sessions", high_sessions)):
            if value is not None and value < 1:
                raise GovernanceError(f"{name} must be >= 1 ({value})")
        if retry_after < 0:
            raise GovernanceError(f"retry_after cannot be negative ({retry_after})")
        self.low_bytes = low_bytes
        self.high_bytes = high_bytes
        self.low_sessions = low_sessions
        self.high_sessions = high_sessions
        #: advisory backoff hint carried by shed busy records.
        self.retry_after = retry_after
        #: optional ResilienceTrace receiving typed overload events.
        self.trace = trace
        self.state = "healthy"
        self._loads: list[SessionLoad] = []
        self._orders = itertools.count(1)
        #: admissions refused while shedding.
        self.sheds = 0
        #: pause / resume edges applied to session reads.
        self.pauses = 0
        self.resumes = 0
        #: state changes across the governor's lifetime.
        self.transitions = 0
        self.peak_aggregate = 0
        self.peak_sessions = 0

    # -- registration ----------------------------------------------------------

    @property
    def aggregate(self) -> int:
        """Buffered bytes summed over every registered session."""
        return sum(load.buffered for load in self._loads)

    @property
    def session_count(self) -> int:
        return len(self._loads)

    def register(self, session: str) -> SessionLoad:
        """Admit one session into the accounting; returns its load handle."""
        load = SessionLoad(session, next(self._orders), self)
        self._loads.append(load)
        self.reassess()
        return load

    def unregister(self, load: SessionLoad) -> None:
        """Drop a completed session from the accounting (always resumes it)."""
        if load.paused:
            load._resume()
        try:
            self._loads.remove(load)
        except ValueError:  # pragma: no cover - double unregister is benign
            return
        self.reassess()

    # -- the state machine -----------------------------------------------------

    def should_shed(self) -> bool:
        """True when a new admission must be refused right now."""
        return self.state == "shedding"

    def note_shed(self, session: str) -> None:
        """Account one refused admission (typed trace event included)."""
        self.sheds += 1
        if self.trace is not None:
            self.trace.record("shed", session=session, state=self.state,
                              aggregate=self.aggregate,
                              sessions=self.session_count)

    def reassess(self) -> None:
        """Recompute the state and the pause set from current accounting."""
        aggregate = self.aggregate
        sessions = len(self._loads)
        self.peak_aggregate = max(self.peak_aggregate, aggregate)
        self.peak_sessions = max(self.peak_sessions, sessions)
        state = "healthy"
        if (aggregate >= self.high_bytes
                or (self.high_sessions is not None
                    and sessions >= self.high_sessions)):
            state = "shedding"
        elif (aggregate >= self.low_bytes
                or (self.low_sessions is not None
                    and sessions >= self.low_sessions)):
            state = "degraded"
        if state != self.state:
            self.transitions += 1
            if self.trace is not None:
                self.trace.record("overload", state=state,
                                  aggregate=aggregate, sessions=sessions)
            self.state = state
        self._rebalance(aggregate)

    def _rebalance(self, aggregate: int) -> None:
        """Pause the heaviest sessions until the rest fits under ``low_bytes``.

        Healthy governors resume everyone.  Under pressure the sessions are
        ranked by buffered bytes (registration order breaks ties — fully
        deterministic) and the heaviest are paused until the unpaused
        aggregate fits back under the low watermark; pausing stops their
        pumps from reading, which stops their buffers from growing and lets
        the transport's flow control push back on the actual offenders.
        """
        if self.state == "healthy":
            for load in self._loads:
                if load.paused:
                    load._resume()
                    self.resumes += 1
            return
        remaining = aggregate
        ranked = sorted(self._loads, key=lambda l: (-l.buffered, l.order))
        for load in ranked:
            if remaining > self.low_bytes and load.buffered > 0:
                if not load.paused:
                    load._pause()
                    self.pauses += 1
                remaining -= load.buffered
            elif load.paused:
                load._resume()
                self.resumes += 1

    def counters(self) -> dict:
        """JSON-friendly accounting snapshot (diagnosis / bench reporting)."""
        return {
            "state": self.state,
            "aggregate": self.aggregate,
            "sessions": self.session_count,
            "peak_aggregate": self.peak_aggregate,
            "peak_sessions": self.peak_sessions,
            "sheds": self.sheds,
            "pauses": self.pauses,
            "resumes": self.resumes,
            "transitions": self.transitions,
        }
