"""Transparent obfuscation gateway between two format-graph pairs.

An :class:`ObfuscatedProxy` terminates sessions speaking one wire format and
re-speaks them upstream in another — typically *plain* on the listen side and
*obfuscated* on the upstream side (or the reverse, as a de-obfuscating edge).
Because every wire format of a protocol decodes to the same logical
:class:`~repro.core.message.Message`, bridging is parse → re-serialize per
direction; no per-protocol code is involved.

This is the deployment story of the paper's framework: unmodified core
applications keep speaking the plain protocol while the obfuscated dialect —
a different randomly drawn graph per deployment — runs only between the two
gateways an observer can sniff.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from random import Random

from ..core.errors import BudgetExceeded
from ..core.graph import FormatGraph
from ..protocols import registry
from ..wire.plan import plan_for
from ..wire.serializer import Serializer
from .capture import Capture
from .faults import FaultPlan, FaultyWriter
from .framing import CorruptRecord, frame_payload, make_decoder, resolve_framing
from .resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RealClock,
    ResilienceTrace,
    RetryPolicy,
    TimeoutConfig,
    retry_operation,
)
from .governance import ResourceBudget
from .session import _MessagePump, half_close


@dataclass
class ProxyStats:
    """Per-session bridging accounting (message counts per direction)."""

    session: str
    requests: int = 0
    responses: int = 0
    #: corrupt records skipped by framing resync (resync-enabled proxies).
    resyncs: int = 0
    #: failed upstream dial attempts behind this session.
    dial_failures: int = 0
    #: upstream dials re-driven by the retry policy.
    retries: int = 0
    #: high-water mark of bytes buffered by the heaviest bridge pump.
    peak_buffered: int = 0
    #: typed resource-budget violations that killed this bridge.
    budget_violations: int = 0
    error: str | None = None


class _Leg:
    """One side of the bridge: graphs, framings and codecs of a graph pair."""

    def __init__(self, request_graph: FormatGraph, response_graph: FormatGraph,
                 framing: str, seed: int):
        self.request_graph = request_graph
        self.response_graph = response_graph
        self.request_plan = plan_for(request_graph)
        self.response_plan = plan_for(response_graph)
        self.request_framing = resolve_framing(request_graph, framing)
        self.response_framing = resolve_framing(response_graph, framing)
        self.request_serializer = Serializer(request_graph, rng=Random(seed),
                                             plan=self.request_plan)
        self.response_serializer = Serializer(response_graph, rng=Random(seed),
                                              plan=self.response_plan)


class ObfuscatedProxy:
    """Bridges sessions between a *listen* and an *upstream* wire format.

    ``listen_*``/``upstream_*`` graphs default to the protocol's plain
    specification; pass obfuscated graphs on one side to build the gateway.
    An attached :class:`~repro.net.capture.Capture` records the traffic the
    proxy serializes on the upstream leg (the obfuscated segment an on-path
    observer sees), with full ground truth since the proxy re-serialized it.
    """

    def __init__(self, protocol: "str | registry.ProtocolSetup", *,
                 listen_request_graph: FormatGraph | None = None,
                 listen_response_graph: FormatGraph | None = None,
                 upstream_request_graph: FormatGraph | None = None,
                 upstream_response_graph: FormatGraph | None = None,
                 framing: str = "auto",
                 seed: int = 0,
                 capture: Capture | None = None,
                 record_spans: bool | None = None,
                 resync: bool = False,
                 timeouts: TimeoutConfig | None = None,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 budget: ResourceBudget | None = None,
                 clock=None):
        self.setup = (registry.get(protocol) if isinstance(protocol, str)
                      else protocol)
        #: per-session resource limits threaded into both bridge pumps.
        self.budget = budget
        #: skip corrupt records at record boundaries instead of failing the
        #: bridge; applies to record-framed legs (native streams have no
        #: boundary to resume at).
        self.resync = resync
        plain_request = self.setup.reference_graph("request")
        plain_response = (self.setup.reference_graph("response")
                          if self.setup.response_graph_factory is not None
                          else plain_request)
        self.listen = _Leg(
            listen_request_graph if listen_request_graph is not None else plain_request,
            listen_response_graph if listen_response_graph is not None else plain_response,
            framing, seed,
        )
        self.upstream = _Leg(
            upstream_request_graph if upstream_request_graph is not None else plain_request,
            upstream_response_graph if upstream_response_graph is not None else plain_response,
            framing, seed,
        )
        self.capture = capture
        self.record_spans = (capture is not None if record_spans is None
                             else record_spans)
        if self.capture is not None and self.capture.protocol is None:
            self.capture.protocol = self.setup.key
        self._session_ids = itertools.count(1)
        self.completed: list[ProxyStats] = []
        self._tcp_server: asyncio.AbstractServer | None = None
        self._upstream_factory = None
        #: upstream dial resilience: per-dial deadline, seeded retry/backoff,
        #: and a circuit breaker refusing fast while the upstream is down.
        self.timeouts = timeouts if timeouts is not None else TimeoutConfig()
        self.retry = retry
        self._clock = clock if clock is not None else RealClock()
        self.trace = ResilienceTrace()
        self.breaker = breaker
        if self.breaker is not None and self.breaker.trace is None:
            self.breaker.trace = self.trace
        #: failed upstream dials across the proxy's lifetime.
        self.dial_failures = 0

    # -- bridging --------------------------------------------------------------

    async def bridge(self, client_reader, client_writer,
                     upstream_reader, upstream_writer, *,
                     session_id: str | None = None,
                     upstream_faults: FaultPlan | None = None,
                     dial_stats: "ProxyStats | None" = None) -> ProxyStats:
        """Pump both directions of one session until both sides hit EOF.

        ``upstream_faults`` puts a seeded hostile link under the proxy's
        upstream write leg — the obfuscated segment the threat model exposes.
        ``dial_stats`` carries the dial-retry accounting of the connection
        phase into this session's completed entry.
        """
        if dial_stats is not None:
            stats = dial_stats
            session = stats.session
        else:
            session = (session_id if session_id is not None
                       else f"proxy-{next(self._session_ids)}")
            stats = ProxyStats(session)
        if upstream_faults is not None:
            upstream_writer = FaultyWriter(upstream_writer, upstream_faults)

        async def pump_requests():
            pump = _MessagePump(
                client_reader,
                make_decoder(self.listen.request_graph,
                             self.listen.request_framing,
                             plan=self.listen.request_plan,
                             resync=(self.resync
                                     and self.listen.request_framing == "record"),
                             budget=self.budget),
                budget=self.budget, stats=stats,
            )
            try:
                while True:
                    decoded = await pump.next()
                    if decoded is None:
                        break
                    if isinstance(decoded, CorruptRecord):
                        stats.resyncs += 1
                        continue
                    payload, spans = self._encode_upstream(decoded.message)
                    self._capture(session, "request", payload, decoded.message,
                                  spans)
                    upstream_writer.write(
                        frame_payload(payload, self.upstream.request_framing))
                    await upstream_writer.drain()
                    stats.requests += 1
            finally:
                half_close(upstream_writer)

        async def pump_responses():
            pump = _MessagePump(
                upstream_reader,
                make_decoder(self.upstream.response_graph,
                             self.upstream.response_framing,
                             plan=self.upstream.response_plan,
                             resync=(self.resync
                                     and self.upstream.response_framing == "record"),
                             budget=self.budget),
                budget=self.budget, stats=stats,
            )
            try:
                while True:
                    decoded = await pump.next()
                    if decoded is None:
                        break
                    if isinstance(decoded, CorruptRecord):
                        stats.resyncs += 1
                        continue
                    payload = self.listen.response_serializer.serialize(decoded.message)
                    client_writer.write(
                        frame_payload(payload, self.listen.response_framing))
                    await client_writer.drain()
                    stats.responses += 1
            finally:
                half_close(client_writer)

        pumps = (asyncio.ensure_future(pump_requests()),
                 asyncio.ensure_future(pump_responses()))
        try:
            await asyncio.gather(*pumps)
        except BaseException as exc:
            # One direction failed: reel in the sibling pump so it cannot
            # keep mutating stats (or log unretrieved exceptions) after the
            # session was recorded as completed.
            for pump in pumps:
                pump.cancel()
            await asyncio.gather(*pumps, return_exceptions=True)
            if isinstance(exc, BudgetExceeded):
                stats.budget_violations += 1
                self.trace.record("budget", resource=exc.resource,
                                  session=session)
            if isinstance(exc, Exception):
                stats.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self.completed.append(stats)
        return stats

    def _encode_upstream(self, message) -> tuple[bytes, "list | None"]:
        """Serialize one bridged request (with spans when the capture wants them)."""
        if self.capture is not None and self.record_spans:
            return self.upstream.request_serializer.serialize_with_spans(message)
        return self.upstream.request_serializer.serialize(message), None

    def _capture(self, session, direction, payload, message, spans=None) -> None:
        if self.capture is not None:
            self.capture.record(session=session, direction=direction,
                                data=payload, spans=spans, logical=message)

    # -- TCP front-end ---------------------------------------------------------

    async def dial_upstream(self, host: str, port: int, *,
                            stats: "ProxyStats | None" = None):
        """Dial the upstream under the connect deadline, retry policy and breaker.

        Every failed attempt is counted (``stats.dial_failures`` and the
        proxy-wide ``dial_failures``) and recorded on the breaker; an open
        breaker refuses immediately with
        :class:`~repro.net.resilience.CircuitOpen` — the fast-fail that
        protects a dying upstream from a dial storm.
        """

        async def once():
            deadline = Deadline.after(self._clock, self.timeouts.connect,
                                      operation="upstream connect")
            try:
                return await deadline.wait_for(asyncio.open_connection(host, port))
            except (OSError, DeadlineExceeded) as exc:
                self.dial_failures += 1
                if stats is not None:
                    stats.dial_failures += 1
                self.trace.record("dial_failure", error=type(exc).__name__)
                raise

        if self.retry is None:
            if self.breaker is not None:
                self.breaker.check("upstream dial")
                try:
                    result = await once()
                except (OSError, asyncio.TimeoutError, TimeoutError):
                    self.breaker.record_failure()
                    raise
                self.breaker.record_success()
                return result
            return await once()

        async def note_retry(attempt, exc):
            if stats is not None:
                stats.retries += 1

        return await retry_operation(
            once, self.retry, clock=self._clock, breaker=self.breaker,
            trace=self.trace, label="upstream_dial", on_retry=note_retry,
        )

    async def start_tcp(self, upstream_host: str, upstream_port: int,
                        host: str = "127.0.0.1", port: int = 0
                        ) -> tuple[str, int]:
        """Listen on ``host:port``, bridging every session to ``upstream``."""

        async def handle(reader, writer):
            session = f"proxy-{next(self._session_ids)}"
            stats = ProxyStats(session)
            try:
                up_reader, up_writer = await self.dial_upstream(
                    upstream_host, upstream_port, stats=stats)
            except Exception as exc:
                # A failed upstream dial is a diagnosed, recorded session —
                # never a silent drop — and the rejected client connection is
                # torn down completely, not left half-closed.
                stats.error = f"{type(exc).__name__}: {exc}"
                self.completed.append(stats)
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, ConnectionError):  # pragma: no cover
                    pass
                return
            try:
                await self.bridge(reader, writer, up_reader, up_writer,
                                  session_id=session, dial_stats=stats)
            except Exception:
                pass
            finally:
                for stream_writer in (writer, up_writer):
                    try:
                        stream_writer.close()
                    except Exception:  # pragma: no cover
                        pass

        self._tcp_server = await asyncio.start_server(handle, host, port)
        sockname = self._tcp_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop(self) -> None:
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None


