"""Per-direction traffic captures: the bridge from live transport to PRE.

A :class:`Capture` plays the role of the paper's network sniffer: it records
the exact wire bytes exchanged between obfuscated endpoints, per direction and
per session, with timestamps.  Because the capturing endpoints also *know* the
ground truth — the logical message they serialized and the field spans the
serializer emitted — a capture taken in-process doubles as a fully labelled
trace: :func:`repro.experiments.run_resilience` and
:func:`repro.pre.infer_formats` accept it directly, so the resilience study
runs against genuinely transported traffic instead of a pre-built byte list.

Captures export to and import from JSONL (one record per line, payload
hex-encoded), so traces recorded on one machine can be analysed on another.
An *attacker-view* export (``redact=True``) drops the ground-truth fields and
keeps only what a sniffer would see: session, direction, timestamp, bytes.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.errors import ReproError
from ..core.fieldpath import FieldPath
from ..core.message import Message
from ..wire.spans import FieldSpan


class CaptureError(ReproError):
    """A capture could not be recorded, exported or re-imported."""


@dataclass(frozen=True)
class CaptureRecord:
    """One captured wire message.

    ``data`` is exactly the serialized message as it crossed the transport
    (record-framing envelopes excluded — the capture stores protocol bytes,
    which is what the PRE substrate consumes).  ``spans`` and ``logical`` are
    the serializing endpoint's ground truth; they are ``None`` on records
    captured from the receiving side only (sniffer view).
    """

    #: position in the capture's append order (stable across export/import).
    seq: int
    #: identifier of the transport session the message belongs to.
    session: str
    #: protocol direction: ``"request"`` (client→server) or ``"response"``.
    direction: str
    #: capture timestamp (``time.time()``).
    timestamp: float
    #: the wire bytes of the message.
    data: bytes
    #: ground-truth wire field spans (serializing side only).
    spans: tuple[FieldSpan, ...] | None = None
    #: ground-truth logical message content (serializing side only).
    logical: Message | None = None
    #: fingerprint of the obfuscation plan in force when the record crossed
    #: the transport (``None`` for plain/unstamped formats).  Under mid-session
    #: key rotation this is what partitions a trace into its dialects.
    plan_fingerprint: str | None = None

    def has_truth(self) -> bool:
        """True when the record carries serializer-side ground truth."""
        return self.spans is not None and self.logical is not None


class Capture:
    """An append-only log of wire messages crossing a transport.

    One :class:`Capture` may be shared by several endpoints (server, many
    clients, a proxy leg): records interleave in capture order and carry
    their session identifier.  All consumption helpers preserve that order.
    """

    def __init__(self, *, protocol: str | None = None):
        #: registry key of the captured protocol, when known (used by
        #: ``run_resilience(capture=...)`` to default its ``protocol``).
        self.protocol = protocol
        self._records: list[CaptureRecord] = []

    # -- recording -------------------------------------------------------------

    def record(self, *, session: str, direction: str, data: bytes,
               spans: Iterable[FieldSpan] | None = None,
               logical: Message | None = None,
               timestamp: float | None = None,
               plan_fingerprint: str | None = None) -> CaptureRecord:
        """Append one wire message to the capture."""
        entry = CaptureRecord(
            seq=len(self._records),
            session=session,
            direction=direction,
            timestamp=time.time() if timestamp is None else timestamp,
            data=bytes(data),
            spans=None if spans is None else tuple(spans),
            logical=logical,
            plan_fingerprint=plan_fingerprint,
        )
        self._records.append(entry)
        return entry

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CaptureRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> CaptureRecord:
        return self._records[index]

    @property
    def records(self) -> tuple[CaptureRecord, ...]:
        return tuple(self._records)

    def sessions(self) -> tuple[str, ...]:
        """Distinct session identifiers, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.session, None)
        return tuple(seen)

    def filter(self, *, session: str | None = None,
               direction: str | None = None) -> "Capture":
        """A new capture holding the matching records (same order, same seq)."""
        selected = Capture(protocol=self.protocol)
        for record in self._records:
            if session is not None and record.session != session:
                continue
            if direction is not None and record.direction != direction:
                continue
            selected._records.append(record)
        return selected

    def slice(self, start: int, stop: int | None = None) -> "Capture":
        """A new capture holding records ``[start:stop]`` of the append order.

        This is the degraded-capture primitive: an observer that attached
        late, detached early, or whose capture was cut mid-session (e.g.
        between two rotation events) holds exactly a contiguous slice of the
        full record stream.  Records keep their original ``seq`` numbers, so
        a slice stays traceable to its position in the full capture.
        """
        selected = Capture(protocol=self.protocol)
        selected._records.extend(self._records[start:stop])
        return selected

    def byte_count(self) -> int:
        """Total captured payload bytes."""
        return sum(len(record.data) for record in self._records)

    # -- PRE-facing views ------------------------------------------------------

    def messages(self) -> list[bytes]:
        """The captured wire messages, in capture order (the PRE trace)."""
        return [record.data for record in self._records]

    def types(self) -> list[object]:
        """True message type of every record (its protocol direction)."""
        return [record.direction for record in self._records]

    def plan_fingerprints(self) -> list[str | None]:
        """Plan fingerprint in force for every record, in capture order."""
        return [record.plan_fingerprint for record in self._records]

    def rotation_count(self) -> int:
        """Number of plan switches observed, per (session, direction) stream.

        Request and response directions carry distinct per-direction plan
        fingerprints, so switches are counted within each stream — a rotated
        ping-pong session of N rotations reports ``2 * N`` (both directions
        switch).
        """
        switches = 0
        last: dict[tuple[str, str], str | None] = {}
        for record in self._records:
            key = (record.session, record.direction)
            if key in last and record.plan_fingerprint != last[key]:
                switches += 1
            last[key] = record.plan_fingerprint
        return switches

    def field_spans(self) -> list[list[FieldSpan]]:
        """Ground-truth spans of every record (requires serializer-side truth)."""
        spans: list[list[FieldSpan]] = []
        for record in self._records:
            if record.spans is None:
                raise CaptureError(
                    f"record #{record.seq} ({record.session}/{record.direction}) "
                    f"carries no ground-truth spans; capture on the serializing "
                    f"side (record_spans=True) to score inference against it"
                )
            spans.append(list(record.spans))
        return spans

    def workload(self) -> list[tuple[str, Message]]:
        """``(direction, logical message)`` pairs, in capture order.

        This is the exact shape of the in-memory workloads used by the
        resilience experiment, which re-serializes it under obfuscated graphs.
        """
        workload: list[tuple[str, Message]] = []
        for record in self._records:
            if record.logical is None:
                raise CaptureError(
                    f"record #{record.seq} ({record.session}/{record.direction}) "
                    f"carries no logical message; capture on the serializing side "
                    f"to replay the workload"
                )
            workload.append((record.direction, record.logical))
        return workload

    # -- JSONL export / import -------------------------------------------------

    def to_jsonl(self, path, *, redact: bool = False) -> int:
        """Write the capture to ``path`` (one JSON record per line).

        ``redact=True`` drops the ground-truth fields (spans, logical
        content), leaving only what an on-path attacker observes.  Returns
        the number of records written.
        """
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(self._encode(record, redact=redact),
                                        separators=(",", ":")))
                handle.write("\n")
        return len(self._records)

    @classmethod
    def from_jsonl(cls, path, *, protocol: str | None = None) -> "Capture":
        """Load a capture previously written by :meth:`to_jsonl`."""
        capture = cls(protocol=protocol)
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    record = cls._decode(payload, seq=len(capture._records))
                except (ValueError, KeyError, TypeError) as exc:
                    raise CaptureError(
                        f"{path}: line {line_number}: malformed capture record "
                        f"({exc})"
                    ) from exc
                if capture.protocol is None:
                    capture.protocol = payload.get("protocol")
                capture._records.append(record)
        return capture

    def _encode(self, record: CaptureRecord, *, redact: bool) -> dict:
        payload: dict = {
            "session": record.session,
            "direction": record.direction,
            "timestamp": round(record.timestamp, 6),
            "data": record.data.hex(),
        }
        if self.protocol is not None:
            payload["protocol"] = self.protocol
        if record.plan_fingerprint is not None:
            # Kept in the redacted view as well: an on-path attacker observing
            # a rotation control record knows *that* the dialect changed (not
            # what it changed to), and the scoring helpers need the partition.
            payload["plan"] = record.plan_fingerprint
        if not redact:
            if record.spans is not None:
                payload["spans"] = [
                    {
                        "node": span.node,
                        "origin": None if span.origin is None else str(span.origin),
                        "start": span.start,
                        "end": span.end,
                    }
                    for span in record.spans
                ]
            if record.logical is not None:
                payload["logical"] = _jsonable(record.logical.to_dict())
        return payload

    @staticmethod
    def _decode(payload: dict, *, seq: int) -> CaptureRecord:
        spans = payload.get("spans")
        logical = payload.get("logical")
        return CaptureRecord(
            seq=seq,
            session=str(payload["session"]),
            direction=str(payload["direction"]),
            timestamp=float(payload["timestamp"]),
            data=bytes.fromhex(payload["data"]),
            spans=None if spans is None else tuple(
                FieldSpan(
                    node=entry["node"],
                    origin=(None if entry["origin"] is None
                            else FieldPath.parse(entry["origin"])),
                    start=int(entry["start"]),
                    end=int(entry["end"]),
                )
                for entry in spans
            ),
            logical=None if logical is None else Message(_unjsonable(logical)),
            plan_fingerprint=payload.get("plan"),
        )


def _jsonable(value):
    """Deep-map bytes leaves to JSON-safe tagged strings."""
    if isinstance(value, dict):
        return {key: _jsonable(entry) for key, entry in value.items()}
    if isinstance(value, list):
        return [_jsonable(entry) for entry in value]
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    return value


def _unjsonable(value):
    """Inverse of :func:`_jsonable`."""
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        return {key: _unjsonable(entry) for key, entry in value.items()}
    if isinstance(value, list):
        return [_unjsonable(entry) for entry in value]
    return value
