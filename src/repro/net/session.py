"""Asyncio obfuscated sessions: servers and clients speaking registry protocols.

This is the live counterpart of the in-memory experiment harness: an
:class:`ObfuscatedServer` accepts byte streams (real TCP sockets or the
in-process duplex transport), frames them with the incremental wire decoder,
drives the protocol's core-application *responder* hook for every decoded
request and streams the serialized responses back — concurrently across
hundreds of sessions, since every session is a coroutine over shared,
plan-compiled codecs.

Framing follows :mod:`repro.net.framing`: self-framing graphs ride natively
back-to-back; stream-greedy graphs (HTTP's END-bounded body) are wrapped in
length-prefixed records.  Both endpoints resolve the mode from the graph, so
they always agree.

Endpoints optionally record the traffic they *serialize* into a shared
:class:`~repro.net.capture.Capture` — wire bytes plus the serializer's
ground-truth field spans and the logical message — which is what turns a live
run into a fully labelled PRE trace.  ``capture_received=True`` additionally
records inbound messages raw-only (the sniffer view) for endpoints whose peer
is out of process.

Endpoints holding a :class:`~repro.net.rotation.PlanBook` support
**mid-session key rotation**: the client announces a registered key id with a
rotation control record (:func:`~repro.net.framing.encode_rotation`) at a
quiescent message boundary, then both sides swap serializers and decoders to
the new dialect — requests and responses after the boundary ride the new
plan, and every capture record is tagged with the plan fingerprint in force
when it crossed the transport.  Rotation-capable sessions always use record
framing (the control record needs the envelope); the plan itself never
touches the wire.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from dataclasses import dataclass
from random import Random

from ..core.errors import BudgetExceeded, SerializationError, StreamError
from ..core.graph import FormatGraph
from ..core.message import Message
from ..protocols import registry
from ..wire.plan import plan_for
from ..wire.serializer import Serializer
from ..wire.streaming import DecodedMessage
from .capture import Capture
from .faults import FaultPlan, FaultyWriter
from .framing import (
    BusyEvent,
    CorruptRecord,
    RotationEvent,
    encode_busy,
    encode_rotation,
    frame_payload,
    make_decoder,
    resolve_framing,
)
from .governance import LoadGovernor, ResourceBudget, ServerBusy, SessionLoad
from .resilience import (
    Deadline,
    DeadlineExceeded,
    RealClock,
    ResilienceTrace,
    RetryPolicy,
    TimeoutConfig,
    retry_operation,
)
from .rotation import PlanBook, SessionKey

#: Read granularity of the session pumps.
CHUNK_SIZE = 1 << 16

#: Failures a resilient client treats as retryable on a request: transport
#: deaths (cut, reset, refused dial), deadline overruns (stall diagnosed by
#: idle-read/request timeouts) and mid-record stream deaths.
RETRYABLE = (ConnectionError, OSError, asyncio.TimeoutError, TimeoutError,
             StreamError)

#: The session-driver hook signature (canonical definition lives on the
#: registry, next to ``ProtocolSetup.responder``).
Responder = registry.Responder


# ---------------------------------------------------------------------------
# the in-process duplex transport
# ---------------------------------------------------------------------------


class MeteredReader(asyncio.StreamReader):
    """A stream reader that meters what its consumer has actually read.

    ``consumed`` counts the bytes delivered to the reading side; a
    flow-limited :class:`MemoryWriter` blocks in ``drain()`` until the peer
    catches up, which is how the memory transport gets real end-to-end
    backpressure.  EOF and exceptions wake every waiter, so a dying reader
    can never deadlock a draining writer.
    """

    def __init__(self):
        super().__init__()
        self.consumed = 0
        self._consumption_waiters: list[asyncio.Future] = []

    def _note_consumed(self, data) -> None:
        if data:
            self.consumed += len(data)
        self._wake()

    def _wake(self) -> None:
        waiters, self._consumption_waiters = self._consumption_waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def wait_consumption(self) -> None:
        """Resolve at the next consumption step (or EOF / stream death)."""
        waiter = asyncio.get_running_loop().create_future()
        self._consumption_waiters.append(waiter)
        await waiter

    async def read(self, n: int = -1) -> bytes:
        data = await super().read(n)
        self._note_consumed(data)
        return data

    async def readexactly(self, n: int) -> bytes:
        data = await super().readexactly(n)
        self._note_consumed(data)
        return data

    def feed_eof(self) -> None:
        super().feed_eof()
        self._wake()

    def set_exception(self, exc) -> None:
        super().set_exception(exc)
        self._wake()


class MemoryWriter:
    """Write end of an in-process duplex stream (asyncio-writer shaped).

    Feeds a peer :class:`asyncio.StreamReader` directly, so sessions run over
    it exactly as over a socket — same ``write``/``drain``/``close`` surface —
    without file descriptors.  This is what lets the benchmark drive hundreds
    of concurrent sessions without touching ulimits.

    With a ``limit`` (and a :class:`MeteredReader` peer), ``drain()`` blocks
    while more than ``limit`` written-but-unconsumed bytes are in flight —
    the transport-level flow control a slow consumer uses to throttle a fast
    producer.  ``peak_in_flight`` records the high-water mark as evidence
    that the bound held.
    """

    def __init__(self, peer: asyncio.StreamReader, *, limit: int | None = None):
        self._peer = peer
        self._closed = False
        self._eof_sent = False
        #: flow-control window: max written-but-unconsumed bytes (None = off).
        self.limit = limit
        self._sent = 0
        #: drain() waits taken because the window was full.
        self.drain_waits = 0
        #: high-water mark of written-but-unconsumed bytes.
        self.peak_in_flight = 0

    def write(self, data: bytes) -> None:
        if self._closed or self._eof_sent:
            # Mirror asyncio's StreamWriter, which raises cleanly instead of
            # tripping StreamReader's feed-after-eof assertion.
            raise ConnectionResetError("memory stream is closed")
        if data:
            self._peer.feed_data(data)
            self._sent += len(data)
            in_flight = self._sent - getattr(self._peer, "consumed", 0)
            if in_flight > self.peak_in_flight:
                self.peak_in_flight = in_flight

    def write_eof(self) -> None:
        if not self._eof_sent:
            self._eof_sent = True
            self._peer.feed_eof()

    async def drain(self) -> None:
        # Yield to the event loop so readers scheduled by feed_data run.
        await asyncio.sleep(0)
        if self.limit is None or not hasattr(self._peer, "wait_consumption"):
            return
        peer = self._peer
        while (not self._closed and not self._eof_sent
               and peer.exception() is None
               and self._sent - peer.consumed > self.limit):
            self.drain_waits += 1
            await peer.wait_consumption()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.write_eof()

    def reset(self) -> None:
        """Abort the stream: the peer's pending reads raise a reset.

        The memory-transport counterpart of a TCP RST — used by the fault
        layer's connection-cut model, where the peer must observe an abrupt
        transport death rather than a clean end of stream.
        """
        if not self._closed:
            self._closed = True
            self._eof_sent = True
            self._peer.set_exception(
                ConnectionResetError("connection reset by peer (fault cut)")
            )

    def is_closing(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        return None

    def get_extra_info(self, name: str, default=None):
        if name == "peername":
            return ("memory", 0)
        return default


def memory_pipe(limit: int | None = None) -> tuple[
    tuple[asyncio.StreamReader, MemoryWriter],
    tuple[asyncio.StreamReader, MemoryWriter],
]:
    """Two connected ``(reader, writer)`` endpoints over in-process buffers.

    ``limit`` bounds each direction's written-but-unconsumed bytes: writers
    block in ``drain()`` until the peer reads, modelling a TCP window.
    """
    side_a = MeteredReader()
    side_b = MeteredReader()
    return ((side_a, MemoryWriter(side_b, limit=limit)),
            (side_b, MemoryWriter(side_a, limit=limit)))


def half_close(writer) -> None:
    """Signal EOF on any writer, tolerating transports without half-close.

    A no-op on a writer that is already closing: teardown paths routinely
    race (client close vs. fault-layer cut vs. server close), and the second
    half-close must not raise.
    """
    try:
        if hasattr(writer, "is_closing") and writer.is_closing():
            return
        if hasattr(writer, "can_write_eof") and not writer.can_write_eof():
            writer.close()
        else:
            writer.write_eof()
    except (OSError, RuntimeError):
        # Torn-down transports are an expected teardown race, not an error.
        pass


# ---------------------------------------------------------------------------
# shared endpoint plumbing
# ---------------------------------------------------------------------------


class _MessagePump:
    """Pulls chunks off a stream reader through an incremental decoder.

    The governance hooks all live here, at the single point where bytes
    become buffered state: a ``budget`` bounds the decoded-but-undelivered
    queue (``pending_messages``), ``stats`` tracks the session's
    ``peak_buffered`` high-water mark, and a ``load`` handle reports the
    buffered bytes to the server's :class:`~repro.net.governance.LoadGovernor`
    and *stops reading* while the governor pauses this session — backpressure
    by not pulling, which the transport's flow control propagates upstream.
    """

    def __init__(self, reader: asyncio.StreamReader, decoder, *,
                 budget: ResourceBudget | None = None,
                 stats: "SessionStats | None" = None,
                 load: SessionLoad | None = None):
        self._reader = reader
        self._decoder = decoder
        # A deque: bursty feeds can park hundreds of decoded messages here,
        # and a list's pop(0) would shift them all on every delivery.
        self._pending: deque[DecodedMessage] = deque()
        self._eof = False
        self._max_pending = getattr(budget, "max_pending_messages", None)
        self._stats = stats
        self._load = load
        self._pending_bytes = 0

    def buffered_bytes(self) -> int:
        """Bytes this session holds: decoder backlog + undelivered queue."""
        return getattr(self._decoder, "buffered", 0) + self._pending_bytes

    def _account(self) -> None:
        buffered = self.buffered_bytes()
        if self._stats is not None and buffered > self._stats.peak_buffered:
            self._stats.peak_buffered = buffered
        if self._load is not None:
            self._load.update(buffered)

    def _ingest(self, produced) -> None:
        for item in produced:
            self._pending.append(item)
            self._pending_bytes += len(getattr(item, "raw", b""))
        self._account()
        if (self._max_pending is not None
                and len(self._pending) > self._max_pending):
            raise BudgetExceeded(
                "pending_messages", limit=self._max_pending,
                actual=len(self._pending),
            )

    async def next(self) -> DecodedMessage | None:
        """The next framed message, or ``None`` at a clean end of stream."""
        while True:
            if self._pending:
                item = self._pending.popleft()
                self._pending_bytes -= len(getattr(item, "raw", b""))
                self._account()
                return item
            if self._eof:
                return None
            if self._load is not None:
                await self._load.readable()
            chunk = await self._reader.read(CHUNK_SIZE)
            if not chunk:
                self._ingest(self._decoder.feed_eof())
                self._eof = True
                continue
            self._ingest(self._decoder.feed(chunk))


class _SpecializedSerializer:
    """Serializer facade over a specialized compiled module.

    Drop-in for the interpreted :class:`~repro.wire.Serializer` on the
    session hot path: same ``serialize`` surface, byte-identical output
    (pad/split draws consume the shared RNG in the same order).  Span
    recording still needs the interpreted piece machinery, so
    ``serialize_with_spans`` delegates to an embedded interpreted serializer
    over the *same* RNG — the byte stream stays identical either way.
    """

    __slots__ = ("graph", "_module", "_error", "_rng", "_plan", "_interpreted")

    def __init__(self, graph: FormatGraph, *, rng: Random, plan=None):
        from ..codegen.cache import cached_module

        self.graph = graph
        self._module = cached_module(graph, specialize=True)
        self._error = self._module.GeneratedCodecError
        self._rng = rng
        self._plan = plan
        self._interpreted: Serializer | None = None

    def serialize(self, message: Message) -> bytes:
        logical = message.raw if isinstance(message, Message) else message
        try:
            return self._module.serialize(logical, rng=self._rng)
        except self._error as exc:
            raise SerializationError(exc.raw) from exc

    def serialize_with_spans(self, message: Message):
        if self._interpreted is None:
            plan = self._plan if self._plan is not None else plan_for(self.graph)
            self._interpreted = Serializer(self.graph, rng=self._rng, plan=plan)
        return self._interpreted.serialize_with_spans(message)


class _Endpoint:
    """Graphs, framings, codecs and capture policy shared by one endpoint."""

    def __init__(self, protocol: "str | registry.ProtocolSetup", *,
                 request_graph: FormatGraph | None = None,
                 response_graph: FormatGraph | None = None,
                 framing: str = "auto",
                 seed: int = 0,
                 capture: Capture | None = None,
                 record_spans: bool | None = None,
                 capture_received: bool = False,
                 plan_book: PlanBook | None = None,
                 specialize: bool = False):
        self.setup = (registry.get(protocol) if isinstance(protocol, str)
                      else protocol)
        self.plan_book = plan_book
        initial = plan_book.initial if plan_book is not None else None
        if plan_book is not None:
            # Rotation control records ride the record-framing envelope;
            # native back-to-back framing has nowhere to carry them.
            if framing == "native":
                raise StreamError(
                    "rotation-capable sessions require record framing "
                    "(native streams cannot carry rotation control records)"
                )
            framing = "record"
        # Defaults come from the plan book's initial key when one is held,
        # else from the setup's shared reference graphs, so every endpoint of
        # a protocol executes against the same cached CodecPlans instead of
        # compiling fresh ones per client.
        if request_graph is not None:
            self.request_graph = request_graph
        elif initial is not None:
            self.request_graph = initial.request_graph
        else:
            self.request_graph = self.setup.reference_graph("request")
        if response_graph is not None:
            self.response_graph = response_graph
        elif initial is not None:
            self.response_graph = initial.response_graph
        elif self.setup.response_graph_factory is not None:
            self.response_graph = self.setup.reference_graph("response")
        else:
            # Protocols modelling a single direction (MQTT) reply over the
            # same packet graph — a broker speaks the same format back.
            self.response_graph = self.request_graph
        #: plan fingerprints in force at session start (capture tagging).
        self.request_fingerprint = (
            initial.request_fingerprint
            if initial is not None and request_graph is None
            else getattr(self.request_graph, "plan_fingerprint", None)
        )
        self.response_fingerprint = (
            initial.response_fingerprint
            if initial is not None and response_graph is None
            else getattr(self.response_graph, "plan_fingerprint", None)
        )
        self.request_plan = plan_for(self.request_graph)
        self.response_plan = plan_for(self.response_graph)
        self.request_framing = resolve_framing(self.request_graph, framing)
        self.response_framing = resolve_framing(self.response_graph, framing)
        #: run this endpoint's codecs on the specialized compiled tier:
        #: serializers use the straight-line emitted modules, and (under
        #: record framing) whole-record parsing does too.  Byte- and
        #: error-identical to the interpreted runtime, several times faster.
        self.specialize = specialize
        self.seed = seed
        self.capture = capture
        self.capture_received = capture_received
        self.record_spans = (capture is not None if record_spans is None
                             else record_spans)
        if self.capture is not None and self.capture.protocol is None:
            self.capture.protocol = self.setup.key

    def serializer(self, direction: str):
        """A fresh serializer of one direction, seeded deterministically."""
        if direction == "request":
            graph, plan = self.request_graph, self.request_plan
        else:
            graph, plan = self.response_graph, self.response_plan
        if self.specialize:
            return _SpecializedSerializer(graph, rng=Random(self.seed), plan=plan)
        return Serializer(graph, rng=Random(self.seed), plan=plan)

    def key_serializer(self, graph: FormatGraph):
        """A fresh serializer over a rotated-to graph, seeded like the others."""
        if self.specialize:
            return _SpecializedSerializer(graph, rng=Random(self.seed))
        return Serializer(graph, rng=Random(self.seed), plan=plan_for(graph))

    def parser_factory(self, framing: str):
        """The decoder's parser factory for one direction's resolved framing.

        Specialized endpoints decode whole record payloads through the
        compiled tier; native framing parses incrementally and stays on the
        interpreted streaming decoder, so it gets no factory.
        """
        if not self.specialize or framing != "record":
            return None

        from ..codegen.cache import cached_module
        from ..codegen.loader import SpecializedCodec

        def factory(graph: FormatGraph) -> SpecializedCodec:
            return SpecializedCodec(graph, module=cached_module(graph, specialize=True))

        return factory

    def encode(self, serializer: Serializer, message: Message):
        """Serialize one message, returning ``(payload, spans-or-None)``."""
        if self.record_spans:
            return serializer.serialize_with_spans(message)
        return serializer.serialize(message), None

    def capture_sent(self, session: str, direction: str, payload: bytes,
                     spans, message: Message,
                     plan_fingerprint: str | None = None) -> None:
        if self.capture is not None:
            self.capture.record(session=session, direction=direction,
                                data=payload, spans=spans, logical=message,
                                plan_fingerprint=plan_fingerprint)

    def capture_inbound(self, session: str, direction: str,
                        decoded: DecodedMessage,
                        plan_fingerprint: str | None = None) -> None:
        if self.capture is not None and self.capture_received:
            self.capture.record(session=session, direction=direction,
                                data=decoded.raw,
                                plan_fingerprint=plan_fingerprint)


@dataclass
class SessionStats:
    """Per-session message and byte accounting."""

    session: str
    received: int = 0
    sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    rotations: int = 0
    #: corrupt records skipped by framing resync (resync-enabled sessions).
    resyncs: int = 0
    #: request attempts re-driven by the retry policy after a failure.
    retries: int = 0
    #: successful re-dials of a resilient client after a transport death.
    reconnects: int = 0
    #: deadline overruns diagnosed (connect/request/idle-read timeouts).
    timeouts: int = 0
    #: teardown waits abandoned at the drain deadline (close / server stop).
    drain_cancels: int = 0
    #: high-water mark of bytes buffered by this session's pump (decoder
    #: backlog plus decoded-but-undelivered messages).
    peak_buffered: int = 0
    #: typed resource-budget violations that killed this session's stream.
    budget_violations: int = 0
    #: admissions shed by an overloaded server (server side) / busy refusals
    #: received from one (client side).
    sheds: int = 0
    error: str | None = None


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------


class ObfuscatedServer:
    """Serves a registry protocol over (possibly obfuscated) byte streams.

    Every accepted connection is one *session*: inbound messages are framed
    with the request-direction decoder, handed to the ``responder`` hook
    (default: the protocol's registered core-application responder) and each
    non-``None`` reply is serialized over the response direction.  A server
    with ``responder=None`` is a pure sink — it decodes and, when a capture
    is attached, records.

    The response serializer and the responder RNG are shared across sessions
    (messages serialize atomically between awaits), so a single-session run
    is byte-deterministic given ``seed``.
    """

    def __init__(self, protocol: "str | registry.ProtocolSetup", *,
                 request_graph: FormatGraph | None = None,
                 response_graph: FormatGraph | None = None,
                 responder: "Responder | None | object" = registry.DEFAULT,
                 framing: str = "auto",
                 seed: int = 0,
                 capture: Capture | None = None,
                 record_spans: bool | None = None,
                 capture_received: bool = False,
                 plan_book: PlanBook | None = None,
                 resync: bool = False,
                 timeouts: TimeoutConfig | None = None,
                 max_sessions: int | None = None,
                 budget: ResourceBudget | None = None,
                 governor: LoadGovernor | None = None,
                 clock=None,
                 specialize: bool = False):
        self._endpoint = _Endpoint(
            protocol, request_graph=request_graph, response_graph=response_graph,
            framing=framing, seed=seed, capture=capture,
            record_spans=record_spans, capture_received=capture_received,
            plan_book=plan_book, specialize=specialize,
        )
        if responder is registry.DEFAULT:
            responder = self._endpoint.setup.responder
        self.responder: Responder | None = responder
        #: recover from corrupt record payloads at the next record boundary
        #: (requires record framing; see make_decoder).
        self.resync = resync
        #: per-operation deadlines; ``idle_read`` reaps silent sessions.
        self.timeouts = timeouts if timeouts is not None else TimeoutConfig()
        if max_sessions is not None and max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1 ({max_sessions})")
        #: concurrent-session admission bound (None = unbounded).
        self.max_sessions = max_sessions
        #: per-session resource limits threaded into decoders and pumps.
        self.budget = budget
        #: server-level overload state machine (None = no admission control).
        self.governor = governor
        self._clock = clock if clock is not None else RealClock()
        #: typed recovery decisions (reaps, drain cancels) of this server.
        self.trace = ResilienceTrace()
        if governor is not None and governor.trace is None:
            governor.trace = self.trace
        self._responder_rng = Random(seed + 0x5EED)
        self._response_serializer = self._endpoint.serializer("response")
        self._session_ids = itertools.count(1)
        self.completed: list[SessionStats] = []
        self._tcp_server: asyncio.AbstractServer | None = None
        self._active: set[asyncio.Task] = set()
        self._semaphore: asyncio.Semaphore | None = None
        self._accepting = True

    @property
    def endpoint(self) -> _Endpoint:
        return self._endpoint

    # -- session driving -------------------------------------------------------

    async def serve_session(self, reader: asyncio.StreamReader, writer, *,
                            session_id: str | None = None,
                            fault_plan: FaultPlan | None = None) -> SessionStats:
        """Drive one session to completion (client EOF) and return its stats.

        Sessions of a plan-book-holding server are rotation-capable: every
        rotation control record decoded in the request stream swaps this
        session's request decoder (inside the decoder, at the exact record
        boundary) and its response serializer (here, in stream order — a
        reply is serialized under the key in force when its request was
        decoded).  Rotation state is session-local; such sessions therefore
        use a per-session response serializer instead of the shared one.

        ``fault_plan`` injects transport faults into this session's *response*
        byte stream (the server→client direction); with ``resync=True`` on the
        server, corrupt request records are skipped at record boundaries and
        counted in ``stats.resyncs`` instead of killing the session.

        A server with ``timeouts.idle_read`` set **reaps** sessions that stay
        silent past the deadline (typed ``DeadlineExceeded`` stats entry, not
        an exception); ``max_sessions`` bounds concurrent admission through a
        semaphore, and ``stop(drain=True)`` cancellation lands here as a
        typed ``DrainCancelled`` stats entry.
        """
        if not self._accepting:
            raise ConnectionError("server is stopping; new sessions refused")
        endpoint = self._endpoint
        book = endpoint.plan_book
        session = (session_id if session_id is not None
                   else f"session-{next(self._session_ids)}")
        if self.governor is not None and self.governor.should_shed():
            return await self._shed_session(session, writer)
        if fault_plan is not None:
            writer = FaultyWriter(writer, fault_plan)
        if self.max_sessions is not None:
            if self._semaphore is None:
                self._semaphore = asyncio.Semaphore(self.max_sessions)
            await self._semaphore.acquire()
        task = asyncio.current_task()
        if task is not None:
            self._active.add(task)
        key_resolver = None
        if book is not None:
            key_resolver = lambda key_id: book.get(key_id).request_graph  # noqa: E731
        decoder = make_decoder(endpoint.request_graph, endpoint.request_framing,
                               plan=endpoint.request_plan,
                               key_resolver=key_resolver,
                               resync=self.resync,
                               budget=self.budget,
                               parser_factory=endpoint.parser_factory(
                                   endpoint.request_framing))
        stats = SessionStats(session)
        load = (self.governor.register(session)
                if self.governor is not None else None)
        pump = _MessagePump(reader, decoder, budget=self.budget,
                            stats=stats, load=load)
        response_serializer = (self._response_serializer if book is None
                               else endpoint.serializer("response"))
        request_fingerprint = endpoint.request_fingerprint
        response_fingerprint = endpoint.response_fingerprint
        idle = self.timeouts.idle_read
        try:
            while True:
                if idle is None:
                    decoded = await pump.next()
                else:
                    try:
                        decoded = await self._clock.wait_for(pump.next(), idle)
                    except (asyncio.TimeoutError, TimeoutError):
                        # Idle reap: a diagnosed end, not a failure — the
                        # session went silent past the deadline (stalled link
                        # or vanished peer) and its slot is reclaimed.
                        stats.timeouts += 1
                        stats.error = (f"DeadlineExceeded: idle-read reaped "
                                       f"after {idle:g}s of silence")
                        self.trace.record("timeout", op="idle_reap",
                                          session=session)
                        break
                if decoded is None:
                    break
                if isinstance(decoded, RotationEvent):
                    key = book.get(decoded.key_id)
                    response_serializer = endpoint.key_serializer(key.response_graph)
                    request_fingerprint = key.request_fingerprint
                    response_fingerprint = key.response_fingerprint
                    stats.rotations += 1
                    continue
                if isinstance(decoded, CorruptRecord):
                    # A damaged request record was skipped at the framing
                    # layer; the session survives, the damage is counted.
                    stats.resyncs += 1
                    continue
                stats.received += 1
                stats.bytes_received += len(decoded.raw)
                endpoint.capture_inbound(session, "request", decoded,
                                         plan_fingerprint=request_fingerprint)
                if self.responder is None:
                    continue
                reply = self.responder(decoded.message, self._responder_rng)
                if reply is None:
                    continue
                payload, spans = endpoint.encode(response_serializer, reply)
                endpoint.capture_sent(session, "response", payload, spans, reply,
                                      plan_fingerprint=response_fingerprint)
                writer.write(frame_payload(payload, endpoint.response_framing))
                await writer.drain()
                stats.sent += 1
                stats.bytes_sent += len(payload)
        except asyncio.CancelledError:
            # Straggler cancelled at the drain deadline (or torn down by a
            # reconnecting peer): a typed entry, never a silent disappearance.
            stats.drain_cancels += 1
            stats.error = "DrainCancelled: session cancelled at stop/teardown"
            raise
        except BudgetExceeded as exc:
            # A peer outgrew its budget: typed, attributed, terminal for
            # this session only — the server stays up.
            stats.budget_violations += 1
            stats.error = f"BudgetExceeded: {exc}"
            self.trace.record("budget", resource=exc.resource, session=session)
            raise
        except Exception as exc:
            stats.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            if load is not None:
                self.governor.unregister(load)
            self.completed.append(stats)
            if task is not None:
                self._active.discard(task)
            if self._semaphore is not None:
                self._semaphore.release()
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport already gone
                pass
        return stats

    async def _shed_session(self, session: str, writer) -> SessionStats:
        """Refuse one admission while shedding: typed busy reply, clean close.

        Record-framed sessions get a busy/retry-after control record before
        the close, which a resilient client converts into a retryable
        :class:`~repro.net.governance.ServerBusy`; native-framed sessions
        have no envelope for control traffic, so the refusal is just the
        close (still a retryable transport death on the client).
        """
        governor = self.governor
        stats = SessionStats(session, sheds=1)
        stats.error = (
            f"ServerBusy: admission shed in {governor.state} state "
            f"(aggregate={governor.aggregate}, "
            f"sessions={governor.session_count})"
        )
        governor.note_shed(session)
        if self._endpoint.response_framing == "record":
            try:
                writer.write(encode_busy(governor.retry_after))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        try:
            writer.close()
        except Exception:  # pragma: no cover - transport already gone
            pass
        self.completed.append(stats)
        return stats

    # -- TCP front-end ---------------------------------------------------------

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0
                        ) -> tuple[str, int]:
        """Listen on ``host:port`` (0 = ephemeral); returns the bound address."""

        async def handle(reader, writer):
            try:
                await self.serve_session(reader, writer)
            except asyncio.CancelledError:
                # A drain-deadline cancellation already produced its typed
                # stats entry; swallowing it here keeps asyncio's stream
                # machinery from logging the cancelled connection task.
                pass
            except Exception:
                # Session errors are recorded in stats; keep the server up.
                pass

        self._tcp_server = await asyncio.start_server(handle, host, port)
        sockname = self._tcp_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop(self, *, drain: bool = False,
                   deadline: "float | None" = None) -> None:
        """Stop accepting; optionally drain in-flight sessions first.

        With ``drain=True`` the server stops admitting new sessions, awaits
        the in-flight ones until ``deadline`` (default: ``timeouts.drain``)
        elapses on the server's clock, then **cancels the stragglers** — each
        lands in ``completed`` with a typed ``DrainCancelled`` stats entry
        and a ``drain_cancel`` trace event, so a graceful shutdown is fully
        accounted: nothing hangs, nothing disappears.
        """
        self._accepting = False
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        if not drain:
            return
        budget = deadline if deadline is not None else self.timeouts.drain
        pending = {task for task in self._active if not task.done()}
        if not pending:
            return
        try:
            await self._clock.wait_for(
                asyncio.gather(*(asyncio.shield(task) for task in pending),
                               return_exceptions=True),
                budget,
            )
        except (asyncio.TimeoutError, TimeoutError):
            for task in pending:
                if not task.done():
                    task.cancel()
                    self.trace.record("drain_cancel", op="server_stop")
            await asyncio.gather(*pending, return_exceptions=True)


# ---------------------------------------------------------------------------
# the client
# ---------------------------------------------------------------------------


class ObfuscatedClient:
    """One protocol session against an :class:`ObfuscatedServer`.

    Connect with :meth:`connect_tcp`, :meth:`connect_memory` (spawns the
    server session as a background task over the in-process transport) or
    :meth:`attach` (any reader/writer pair).  :meth:`request` sends one
    logical message and awaits one reply; :meth:`send` is fire-and-forget
    for one-way flows (sink servers, protocols whose responder stays quiet).
    """

    _ids = itertools.count(1)

    def __init__(self, protocol: "str | registry.ProtocolSetup", *,
                 request_graph: FormatGraph | None = None,
                 response_graph: FormatGraph | None = None,
                 framing: str = "auto",
                 seed: int = 0,
                 capture: Capture | None = None,
                 record_spans: bool | None = None,
                 capture_received: bool = False,
                 session_id: str | None = None,
                 plan_book: PlanBook | None = None,
                 resync: bool = False,
                 timeouts: TimeoutConfig | None = None,
                 retry: RetryPolicy | None = None,
                 budget: ResourceBudget | None = None,
                 clock=None,
                 specialize: bool = False):
        self.resync = resync
        #: per-session resource limits on the response stream (None = off).
        self.budget = budget
        self._endpoint = _Endpoint(
            protocol, request_graph=request_graph, response_graph=response_graph,
            framing=framing, seed=seed, capture=capture,
            record_spans=record_spans, capture_received=capture_received,
            plan_book=plan_book, specialize=specialize,
        )
        self.session_id = (session_id if session_id is not None
                           else f"client-{next(self._ids)}")
        #: per-operation deadlines (connect / request / idle-read / drain).
        self.timeouts = timeouts if timeouts is not None else TimeoutConfig()
        #: default retry policy of request()/dials (None = fail fast).
        self.retry = retry
        self._clock = clock if clock is not None else RealClock()
        #: ordered, seed-replayable record of every recovery decision.
        self.trace = ResilienceTrace()
        self._request_serializer = self._endpoint.serializer("request")
        self._request_fingerprint = self._endpoint.request_fingerprint
        self._response_fingerprint = self._endpoint.response_fingerprint
        self._reader: asyncio.StreamReader | None = None
        self._writer = None
        self._pump: _MessagePump | None = None
        self._server_task: asyncio.Task | None = None
        #: async () -> (reader, writer): how to re-dial this session's peer.
        self._reconnect_factory = None
        #: key id announced on the wire (reconnects resume on this key).
        self._announced_key: str | None = None
        self.stats = SessionStats(self.session_id)

    @property
    def endpoint(self) -> _Endpoint:
        return self._endpoint

    # -- connecting ------------------------------------------------------------

    def attach(self, reader: asyncio.StreamReader, writer, *,
               fault_plan: FaultPlan | None = None) -> "ObfuscatedClient":
        """Attach an already-open duplex stream.

        ``fault_plan`` injects transport faults into the *request* byte
        stream (everything this client writes crosses the hostile link).
        """
        endpoint = self._endpoint
        if fault_plan is not None:
            writer = FaultyWriter(writer, fault_plan)
        self._reader, self._writer = reader, writer
        decoder = make_decoder(endpoint.response_graph,
                               endpoint.response_framing,
                               plan=endpoint.response_plan,
                               resync=self.resync,
                               budget=self.budget,
                               parser_factory=endpoint.parser_factory(
                                   endpoint.response_framing))
        self._pump = _MessagePump(reader, decoder, budget=self.budget,
                                  stats=self.stats)
        return self

    async def connect_tcp(self, host: str, port: int) -> "ObfuscatedClient":
        """Dial ``host:port`` under the connect deadline and retry policy."""

        async def factory():
            return await asyncio.open_connection(host, port)

        self._reconnect_factory = factory
        reader, writer = await self._dial()
        return self.attach(reader, writer)

    def connect_memory(self, server: ObfuscatedServer, *,
                       pipe_limit: int | None = None) -> "ObfuscatedClient":
        """Open an in-process session; the server side runs as a task."""
        return connect_memory(self, server, pipe_limit=pipe_limit)

    def set_reconnect(self, factory) -> "ObfuscatedClient":
        """Install how this session re-dials its peer.

        ``factory`` is an async zero-argument callable returning a fresh
        ``(reader, writer)`` pair (it may wrap the writer in a
        :class:`~repro.net.faults.FaultyWriter` itself — the chaos harness
        threads per-attempt fault plans through exactly this hook).
        ``connect_tcp`` and :func:`connect_memory` install theirs
        automatically.
        """
        self._reconnect_factory = factory
        return self

    async def _dial(self):
        """One (possibly retried) dial through the reconnect factory."""
        if self._reconnect_factory is None:
            raise ConnectionError(
                "client has no reconnect factory; connect with connect_tcp/"
                "connect_memory or install one with set_reconnect()"
            )

        async def once():
            deadline = Deadline.after(self._clock, self.timeouts.connect,
                                      operation="connect")
            try:
                return await deadline.wait_for(self._reconnect_factory())
            except DeadlineExceeded:
                self.stats.timeouts += 1
                self.trace.record("timeout", op="connect")
                raise

        if self.retry is None:
            return await once()

        async def note_retry(attempt, exc):
            self.stats.retries += 1

        return await retry_operation(
            once, self.retry, clock=self._clock, trace=self.trace,
            label="connect", on_retry=note_retry,
        )

    async def reconnect(self) -> "ObfuscatedClient":
        """Re-dial the peer, re-attach, and resume the session's dialect.

        Tears down the dead transport, dials a fresh one through the
        reconnect factory (connect deadline and seeded retry/backoff apply),
        and — when a rotation was announced on the old connection — **replays
        the rotation state**: the client re-announces the last announced key
        id with a control record and re-attaches its codecs to that dialect,
        so the resumed session continues exactly where the cut left it.  Only
        the key id crosses the wire; the server resolves it from its own
        :class:`~repro.net.rotation.PlanBook`, the PR 5 model.
        """
        await self._teardown_transport()
        reader, writer = await self._dial()
        self.attach(reader, writer)
        self.stats.reconnects += 1
        self.trace.record("reconnect", reconnects=self.stats.reconnects)
        if self._announced_key is not None:
            key = self._endpoint.plan_book.get(self._announced_key)
            self._writer.write(encode_rotation(key.key_id))
            await self._writer.drain()
            decoder = self._pump._decoder
            decoder.rotate_to(key.response_graph, key_id=key.key_id)
            # The request serializer and fingerprints already track the
            # announced key; only the fresh transport needed re-announcing.
            self.trace.record("resume", key_id=key.key_id)
        return self

    async def _teardown_transport(self) -> None:
        """Release a dead transport (and its server task) before re-dialing."""
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        old_task, self._server_task = self._server_task, None
        if old_task is not None and not old_task.done():
            # A healthy peer completes once it sees our EOF; a peer wedged on
            # a stalled link is cancelled at the drain deadline (it records
            # its own typed stats entry).
            try:
                await self._clock.wait_for(asyncio.shield(old_task),
                                           self.timeouts.drain)
            except (asyncio.TimeoutError, TimeoutError):
                old_task.cancel()
            except Exception:
                pass
        if old_task is not None:
            await asyncio.gather(old_task, return_exceptions=True)
        self._reader = self._writer = self._pump = None

    # -- talking ---------------------------------------------------------------

    async def send(self, message: Message) -> bytes:
        """Serialize and send one request; returns its wire payload."""
        if self._writer is None:
            raise ConnectionError("client is not connected")
        endpoint = self._endpoint
        payload, spans = endpoint.encode(self._request_serializer, message)
        endpoint.capture_sent(self.session_id, "request", payload, spans, message,
                              plan_fingerprint=self._request_fingerprint)
        self._writer.write(frame_payload(payload, endpoint.request_framing))
        await self._writer.drain()
        self.stats.sent += 1
        self.stats.bytes_sent += len(payload)
        return payload

    async def receive(self, *, timeout=...) -> DecodedMessage | None:
        """Await the next framed response (``None`` at end of stream).

        On a resync-enabled client, corrupt response records are skipped
        (counted in ``stats.resyncs`` and traced) and the wait continues.
        ``timeout`` overrides ``timeouts.idle_read`` (``None`` = unbounded);
        a silent peer past the deadline raises :class:`DeadlineExceeded`
        with a ``timeout`` stats/trace entry — the stall diagnosis.
        """
        if self._pump is None:
            raise ConnectionError("client is not connected")
        idle = self.timeouts.idle_read if timeout is ... else timeout
        while True:
            try:
                if idle is None:
                    decoded = await self._pump.next()
                else:
                    try:
                        decoded = await self._clock.wait_for(self._pump.next(),
                                                             idle)
                    except (asyncio.TimeoutError, TimeoutError) as exc:
                        self.stats.timeouts += 1
                        self.trace.record("timeout", op="idle_read")
                        raise DeadlineExceeded("idle_read", idle) from exc
            except BudgetExceeded as exc:
                self.stats.budget_violations += 1
                self.trace.record("budget", resource=exc.resource)
                raise
            if isinstance(decoded, CorruptRecord):
                self.stats.resyncs += 1
                self.trace.record("resync", start=decoded.start,
                                  end=decoded.end)
                continue
            if isinstance(decoded, BusyEvent):
                # The server shed this admission: convert the typed refusal
                # into a retryable failure the retry policy backs off on.
                self.stats.sheds += 1
                self.trace.record("busy", retry_after=decoded.retry_after)
                raise ServerBusy(decoded.retry_after)
            break
        if decoded is not None:
            self.stats.received += 1
            self.stats.bytes_received += len(decoded.raw)
            self._endpoint.capture_inbound(self.session_id, "response", decoded,
                                           plan_fingerprint=self._response_fingerprint)
        return decoded

    async def request(self, message: Message, *,
                      retry: "RetryPolicy | None" = None,
                      timeout=...) -> Message:
        """Send one request and await its reply (logical message).

        ``timeout`` bounds the whole round trip (default:
        ``timeouts.request``; ``None`` = unbounded).  With a ``retry``
        policy (default: the client's), a retryable failure — transport
        death, deadline overrun, mid-record stream death — **reconnects**
        through the reconnect factory after the policy's seeded backoff
        delay and re-drives the request, resuming any announced rotation
        key; the schedule is a pure function of the policy's seed, so a
        session's recovery trace replays bit-identically.
        """
        policy = retry if retry is not None else self.retry
        if policy is None:
            return await self._request_once(message, timeout)

        async def once():
            return await self._request_once(message, timeout)

        async def reconnect_and_count(attempt, exc):
            self.stats.retries += 1
            await self.reconnect()

        return await retry_operation(
            once, policy, clock=self._clock, trace=self.trace,
            retryable=RETRYABLE, label="request",
            on_retry=reconnect_and_count,
        )

    async def _request_once(self, message: Message, timeout=...) -> Message:
        """One unretried round trip under the request deadline."""
        budget = self.timeouts.request if timeout is ... else timeout

        async def round_trip():
            await self.send(message)
            decoded = await self.receive()
            if decoded is None:
                raise ConnectionError(
                    f"session {self.session_id}: server closed before replying"
                )
            return decoded.message

        if budget is None:
            return await round_trip()
        deadline = Deadline.after(self._clock, budget, operation="request")
        try:
            return await deadline.wait_for(round_trip())
        except DeadlineExceeded as exc:
            if exc.operation == "request":
                self.stats.timeouts += 1
                self.trace.record("timeout", op="request")
            raise

    async def rotate(self, key_id: str, *,
                     require_quiescence: bool = True) -> SessionKey:
        """Switch the session to the plan registered under ``key_id``.

        Announces the rotation to the server with a control record, then
        swaps this side's request serializer and response decoder to the new
        dialect.  Rotation must happen at a quiescent message boundary: the
        server serializes replies to pre-rotation requests under the old key,
        so an unanswered request at rotation time would have its reply decoded
        with the wrong graph.  The default guard refuses while any sent
        request is still unanswered (and the response decoder independently
        refuses while old-dialect bytes sit in its buffer); pass
        ``require_quiescence=False`` for deliberately one-way flows (sink
        servers, responders that stay quiet), where no reply is in flight by
        construction.  Only the key id crosses the wire — the server must
        hold the same key in its own plan book.
        """
        endpoint = self._endpoint
        if endpoint.plan_book is None:
            raise StreamError(
                "client holds no plan book; construct it with plan_book= to "
                "rotate mid-session"
            )
        if self._writer is None or self._pump is None:
            raise ConnectionError("client is not connected")
        if require_quiescence and self.stats.sent != self.stats.received:
            pending = self.stats.sent - self.stats.received
            raise StreamError(
                f"cannot rotate with {pending} unanswered request(s): their "
                f"replies are serialized under the old key; await them first, "
                f"or pass require_quiescence=False for one-way flows"
            )
        key = endpoint.plan_book.get(key_id)
        decoder = self._pump._decoder
        if not hasattr(decoder, "rotate_to"):  # pragma: no cover - framing forced
            raise StreamError("response decoder does not support rotation")
        self._writer.write(encode_rotation(key.key_id))
        await self._writer.drain()
        decoder.rotate_to(key.response_graph, key_id=key.key_id)
        self._request_serializer = endpoint.key_serializer(key.request_graph)
        self._request_fingerprint = key.request_fingerprint
        self._response_fingerprint = key.response_fingerprint
        self._announced_key = key.key_id
        self.stats.rotations += 1
        self.trace.record("rotate", key_id=key.key_id)
        return key

    # -- teardown --------------------------------------------------------------

    async def close(self, *, wait_server: bool = True, drain=...) -> None:
        """Half-close the write side, drain the stream, release the transport.

        The drain is bounded by ``drain`` (default: ``timeouts.drain``, 5 s;
        ``None`` = unbounded): against a stalled or slow-loris peer the wait
        is abandoned at the deadline with a ``drain_cancel`` stats/trace
        entry and the transport is torn down anyway — teardown can no longer
        hang a test suite.  Closing an already-closed or already-cut client
        is a no-op; teardown races are expected, not errors.
        """
        budget = self.timeouts.drain if drain is ... else drain
        deadline = Deadline.after(self._clock, budget, operation="drain")
        if self._writer is not None:
            half_close(self._writer)
        if self._pump is not None:
            pump = self._pump
            try:

                async def drain_pump():
                    while await pump.next() is not None:
                        pass

                await deadline.wait_for(drain_pump())
            except DeadlineExceeded:
                self.stats.drain_cancels += 1
                self.trace.record("drain_cancel", op="close")
            except (ConnectionError, StreamError):
                # A cut or mid-record-dead stream has nothing left to drain.
                pass
        if self._server_task is not None and wait_server:
            try:
                await deadline.wait_for(asyncio.shield(self._server_task))
            except DeadlineExceeded:
                self.stats.drain_cancels += 1
                self.trace.record("drain_cancel", op="close_wait_server")
                self._server_task.cancel()
            except Exception:
                pass
            await asyncio.gather(self._server_task, return_exceptions=True)
        if self._writer is not None:
            try:
                self._writer.close()
                await deadline.wait_for(self._writer.wait_closed())
            except Exception:  # pragma: no cover
                pass
        self._reader = self._writer = self._pump = self._server_task = None


def connect_memory(client: ObfuscatedClient, server: ObfuscatedServer, *,
                   request_faults: FaultPlan | None = None,
                   response_faults: FaultPlan | None = None,
                   pipe_limit: int | None = None
                   ) -> ObfuscatedClient:
    """Wire ``client`` to ``server`` over the in-process duplex transport.

    The server session is spawned as a background task; ``client.close()``
    awaits it, so the returned stats land in ``server.completed`` before the
    client's ``close()`` resolves.  Must run inside an event loop.

    ``request_faults`` / ``response_faults`` put a seeded hostile link under
    the respective direction of the duplex stream (see
    :mod:`repro.net.faults`).

    A reconnect factory is installed as a side effect: ``client.reconnect()``
    (or a retrying ``request()``) spawns a fresh server session over a fresh
    clean pipe — faults are per-connection, so a re-dial models the healed
    link.  Pass per-attempt fault plans through ``client.set_reconnect()``
    to keep the hostile path hostile across reconnects.

    ``pipe_limit`` flow-controls both directions of the duplex pipe (and of
    every reconnect pipe): writers block in ``drain()`` while more than that
    many unconsumed bytes are in flight, like a TCP window.
    """
    (client_reader, client_writer), (server_reader, server_writer) = \
        memory_pipe(pipe_limit)
    client.attach(client_reader, client_writer, fault_plan=request_faults)
    client._server_task = asyncio.ensure_future(
        server.serve_session(server_reader, server_writer,
                             session_id=client.session_id,
                             fault_plan=response_faults)
    )

    async def factory():
        (reader, writer), (up_reader, up_writer) = memory_pipe(pipe_limit)
        client._server_task = asyncio.ensure_future(
            server.serve_session(up_reader, up_writer,
                                 session_id=client.session_id)
        )
        return reader, writer

    client._reconnect_factory = factory
    return client

