"""Deterministic fault injection for the live transport layer.

The sessions of :mod:`repro.net` so far only ever saw clean byte streams;
this module is the hostile network between the endpoints.  A
:class:`FaultPlan` composes the configurable fault models — packet loss,
segment reordering, duplication, mid-stream truncation, byte corruption and
slow-loris partial feeds — into one JSON-serializable, seeded, replayable
artifact (the fault-model counterpart of the obfuscation
:class:`~repro.transforms.plan.ObfuscationPlan`), and a :class:`FaultInjector`
executes it over any written byte stream.

The injector models the link *below* a TCP-like transport and the receiving
stack above it:

* every ``write()`` payload is cut into **segments** (slow-loris feeds are
  just very small segments), each carrying a conceptual sequence number;
* the fault schedule scrambles the segments — drops, duplicates, delays
  (reordering within a bounded window), XOR byte corruption, a hard cut at a
  configured stream offset;
* a **reassembler** then restores what a receiving TCP stack can restore:
  segments are delivered strictly in sequence order, duplicates are
  discarded, delayed segments wait for their turn.

Because reassembly repairs everything a real transport repairs, the
*loss-free* fault models (reordering, duplication, slow-loris) deliver a
byte-identical stream — only the chunking the decoder sees changes, which is
exactly what the streaming decoder must survive.  A **lost** segment is a
hole no retransmission ever fills: delivery stalls at the gap and the stream
ends there (mid-stream truncation through loss).  **Corrupted** segments are
delivered with their damage, which is what the record-framing resync path
(:class:`~repro.net.framing.RecordDecoder` with ``resync=True``) diagnoses
and skips.

Every random decision is drawn from one seeded generator in a fixed order
per segment, so a plan's fault schedule is a pure function of
``(plan, sequence of written payloads)``: replaying the same plan over the
same writes is bit-identical — the property the fault-matrix benchmark's
determinism guard pins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from random import Random

from ..core.errors import ReproError

#: Fault models composable in one plan (documentation / introspection aid).
FAULT_MODELS = (
    "loss", "reorder", "duplicate", "corrupt", "truncate", "slowloris",
    "cut", "stall", "flood", "drip",
)

#: Connection-level chaos scenarios a :class:`ChaosSchedule` can compose.
CHAOS_SCENARIOS = ("cut", "stall", "loss_cut", "dial_flaky")


class FaultPlanError(ReproError):
    """A fault plan is malformed or could not be (de)serialized."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable schedule of transport faults.

    All models compose: one plan may drop, delay, duplicate *and* corrupt.
    A model whose rate is zero (or whose ``truncate_at`` is ``None``) is
    inactive.  ``segment_size`` bounds the bytes per simulated link segment;
    ``jitter`` draws each segment's size uniformly from ``1..segment_size``
    so segment boundaries fall at arbitrary byte offsets.
    """

    seed: int = 0
    #: maximum bytes per link segment (1 = pathological slow-loris feeds).
    segment_size: int = 64
    #: vary segment sizes randomly in ``1..segment_size``.
    jitter: bool = True
    #: per-segment drop probability (an unfillable gap: the stream ends there).
    loss_rate: float = 0.0
    #: per-segment probability of being delayed behind later segments.
    reorder_rate: float = 0.0
    #: maximum number of segments a delayed segment is held back.
    reorder_window: int = 4
    #: per-segment duplication probability (duplicates are dedup'd on arrival).
    duplicate_rate: float = 0.0
    #: per-segment probability of byte corruption (XOR ``0xFF``).
    corrupt_rate: float = 0.0
    #: number of consecutive bytes damaged in a corrupted segment.
    corrupt_burst: int = 2
    #: absolute stream offset where the connection is cut (``None`` = never).
    truncate_at: int | None = None
    #: absolute stream offset of a **mid-session connection cut**: delivery
    #: stops there and the transport is torn down abruptly — the peer
    #: observes a connection reset, not a clean EOF (``None`` = never).
    cut_at: int | None = None
    #: absolute stream offset of an **indefinite stall**: every byte past it
    #: is withheld and no EOF is ever signalled — the peer sees silence
    #: forever, the failure mode only an idle-read deadline can diagnose.
    stall_at: int | None = None
    #: absolute stream offset where a forged oversized length declaration is
    #: injected into the delivered stream — the memory-bomb peer: the
    #: receiver is promised ``flood_declared`` bytes and everything after
    #: drips toward a record that never completes (``None`` = never).
    flood_at: int | None = None
    #: the payload size the forged declaration promises.
    flood_declared: int = 1 << 20

    def __post_init__(self) -> None:
        if self.segment_size < 1:
            raise FaultPlanError(f"segment_size must be >= 1 ({self.segment_size})")
        if self.reorder_window < 1:
            raise FaultPlanError(f"reorder_window must be >= 1 ({self.reorder_window})")
        if self.corrupt_burst < 1:
            raise FaultPlanError(f"corrupt_burst must be >= 1 ({self.corrupt_burst})")
        for name in ("loss_rate", "reorder_rate", "duplicate_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{name} must be within [0, 1] ({rate})")
        for name in ("truncate_at", "cut_at", "stall_at", "flood_at"):
            offset = getattr(self, name)
            if offset is not None and offset < 0:
                raise FaultPlanError(f"{name} cannot be negative ({offset})")
        # The forged declaration must read as a payload length, not as one
        # of the control-record sentinels (0xFFFFFFFE / 0xFFFFFFFF).
        if not 1 <= self.flood_declared < (1 << 32) - 2:
            raise FaultPlanError(
                f"flood_declared must be in 1..{(1 << 32) - 3} "
                f"({self.flood_declared})"
            )

    # -- canned single-model plans ---------------------------------------------

    @classmethod
    def clean(cls, *, seed: int = 0, segment_size: int = 64) -> "FaultPlan":
        """A fault-free plan (segmentation only) — the control cell."""
        return cls(seed=seed, segment_size=segment_size)

    @classmethod
    def loss(cls, rate: float = 0.05, *, seed: int = 0,
             segment_size: int = 64) -> "FaultPlan":
        return cls(seed=seed, segment_size=segment_size, loss_rate=rate)

    @classmethod
    def reorder(cls, rate: float = 0.25, *, window: int = 4, seed: int = 0,
                segment_size: int = 64) -> "FaultPlan":
        return cls(seed=seed, segment_size=segment_size, reorder_rate=rate,
                   reorder_window=window)

    @classmethod
    def duplicate(cls, rate: float = 0.25, *, seed: int = 0,
                  segment_size: int = 64) -> "FaultPlan":
        return cls(seed=seed, segment_size=segment_size, duplicate_rate=rate)

    @classmethod
    def corrupt(cls, rate: float = 0.05, *, burst: int = 2, seed: int = 0,
                segment_size: int = 64) -> "FaultPlan":
        return cls(seed=seed, segment_size=segment_size, corrupt_rate=rate,
                   corrupt_burst=burst)

    @classmethod
    def truncate(cls, at: int, *, seed: int = 0,
                 segment_size: int = 64) -> "FaultPlan":
        return cls(seed=seed, segment_size=segment_size, truncate_at=at)

    @classmethod
    def slow_loris(cls, *, segment_size: int = 1, seed: int = 0) -> "FaultPlan":
        """Degenerate segmentation: the stream dribbles in byte-sized feeds."""
        return cls(seed=seed, segment_size=segment_size)

    @classmethod
    def cut(cls, at: int, *, seed: int = 0, segment_size: int = 64) -> "FaultPlan":
        """Mid-session connection cut (reset, not EOF) at a stream offset."""
        return cls(seed=seed, segment_size=segment_size, cut_at=at)

    @classmethod
    def stall(cls, at: int, *, seed: int = 0,
              segment_size: int = 64) -> "FaultPlan":
        """Indefinite stall at a stream offset: silence, never an EOF."""
        return cls(seed=seed, segment_size=segment_size, stall_at=at)

    @classmethod
    def flood(cls, at: int = 0, *, declared: int = 1 << 20, seed: int = 0,
              segment_size: int = 64) -> "FaultPlan":
        """Memory-bomb peer: a forged ``declared``-byte length lands at ``at``.

        With the default ``at=0`` the forged declaration opens the stream at
        a record boundary, so a record-framed receiver reads it as a header
        and every byte written afterwards drips as filler toward a payload
        that never completes — the attack a ``max_declared_bytes`` budget
        must refuse at the declaration itself.
        """
        return cls(seed=seed, segment_size=segment_size, flood_at=at,
                   flood_declared=declared)

    @classmethod
    def drip(cls, *, seed: int = 0) -> "FaultPlan":
        """Byte-drip schedule: every write dribbles in fixed 1-byte feeds.

        The deterministic slow-loris — no jitter, so the receiver does one
        decode step per delivered byte; the workload a ``max_steps_per_feed``
        / idle-read budget pair keeps bounded.
        """
        return cls(seed=seed, segment_size=1, jitter=False)

    # -- properties ------------------------------------------------------------

    @property
    def lossy(self) -> bool:
        """True when the plan can damage or withhold delivered payload bytes.

        Loss-free plans (reordering, duplication, slow-loris segmentation)
        are guaranteed to deliver the written byte stream verbatim — only
        the chunk boundaries the receiver observes change.
        """
        return (self.loss_rate > 0.0 or self.corrupt_rate > 0.0
                or self.truncate_at is not None or self.cut_at is not None
                or self.stall_at is not None or self.flood_at is not None)

    def reseed(self, seed: int) -> "FaultPlan":
        """The same fault mix under a different seed."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        """Short human-readable summary of the active models."""
        active: list[str] = []
        if self.loss_rate:
            active.append(f"loss={self.loss_rate}")
        if self.reorder_rate:
            active.append(f"reorder={self.reorder_rate}/w{self.reorder_window}")
        if self.duplicate_rate:
            active.append(f"dup={self.duplicate_rate}")
        if self.corrupt_rate:
            active.append(f"corrupt={self.corrupt_rate}/b{self.corrupt_burst}")
        if self.truncate_at is not None:
            active.append(f"truncate@{self.truncate_at}")
        if self.cut_at is not None:
            active.append(f"cut@{self.cut_at}")
        if self.stall_at is not None:
            active.append(f"stall@{self.stall_at}")
        if self.flood_at is not None:
            active.append(f"flood@{self.flood_at}->{self.flood_declared}")
        active.append(f"seg<={self.segment_size}{'~' if self.jitter else ''}")
        return " ".join(active)

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        known = {entry.name for entry in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan field(s): {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise FaultPlanError("fault plan JSON must be an object")
        return cls.from_dict(payload)

    @property
    def fingerprint(self) -> str:
        """Stable short identifier of the plan (canonical-JSON digest)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]


@dataclass
class FaultCounters:
    """What the injector did to one stream (the diagnosis side of a cell)."""

    #: link segments the written stream was cut into.
    segments: int = 0
    #: segments dropped by the loss model (each is an unfillable gap).
    dropped: int = 0
    #: segments emitted twice (the duplicate is discarded on reassembly).
    duplicated: int = 0
    #: segments delivered with damaged bytes.
    corrupted: int = 0
    #: total bytes damaged by the corruption model.
    corrupted_bytes: int = 0
    #: segments held back behind later segments by the reordering model.
    reordered: int = 0
    #: bytes actually handed to the receiver, post reassembly.
    delivered_bytes: int = 0
    #: bytes written by the sender but never delivered (cut or gap).
    undelivered_bytes: int = 0
    #: True once the stream was cut (truncation fault or a loss gap).
    truncated: bool = False
    #: True once the connection-cut fault reset the transport mid-session.
    reset: bool = False
    #: True once the stall fault silenced the stream without an EOF.
    stalled: bool = False
    #: forged bytes injected into the delivered stream by the flood model.
    injected_bytes: int = 0
    #: True once the flood model injected its forged declaration.
    flooded: bool = False

    def summary(self) -> dict:
        """JSON-friendly snapshot (used by the benchmark report)."""
        return dict(vars(self))


class FaultInjector:
    """Executes one :class:`FaultPlan` over a written byte stream.

    :meth:`push` accepts one written payload and returns the chunks the
    receiver gets *now* (possibly none — segments may be held back);
    :meth:`flush` releases everything still deliverable at end of stream.
    ``cut`` turns True the moment the stream is dead (truncation fault hit,
    or a lost segment made everything later undeliverable at flush time).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.counters = FaultCounters()
        self._rng = Random(plan.seed)
        self._seq = 0
        self._offset = 0
        #: [countdown, seq, data] — segments delayed by the reorder model.
        self._held: list[list] = []
        #: seq → data, segments arrived ahead of their turn.
        self._pending: dict[int, bytes] = {}
        self._next_deliver = 0
        self._lost: set[int] = set()
        self._cut = False
        self._flushed = False
        self._flood_pending = plan.flood_at is not None
        #: how the stream died: "truncate" / "cut" / "stall" / "loss" / None.
        self._severed: str | None = None
        limits = [(offset, kind)
                  for offset, kind in ((plan.truncate_at, "truncate"),
                                       (plan.cut_at, "cut"),
                                       (plan.stall_at, "stall"))
                  if offset is not None]
        #: the earliest configured stream-death offset (ties: truncate wins,
        #: matching the tuple order above).
        self._limit = min(limits) if limits else None

    @property
    def cut(self) -> bool:
        """True once the fault layer has severed the stream."""
        return self._cut

    @property
    def severed(self) -> "str | None":
        """The fault model that killed the stream (``None`` while alive)."""
        return self._severed

    def _sever(self, kind: str) -> None:
        if self._severed is None:
            self._severed = kind
        counters = self.counters
        if kind == "cut":
            counters.reset = True
        elif kind == "stall":
            counters.stalled = True
        else:
            counters.truncated = True

    # -- the sender side -------------------------------------------------------

    def push(self, data: bytes) -> list[bytes]:
        """Run one written payload through the fault schedule."""
        if self._flushed:
            raise FaultPlanError("cannot push bytes into a flushed injector")
        delivered: list[bytes] = []
        if self._cut:
            self.counters.undelivered_bytes += len(data)
            return delivered
        consumed = 0
        for segment in self._segments(data):
            consumed += len(segment)
            delivered.extend(self._transmit(segment))
            if self._cut:
                break
        # The tail of a write interrupted by the cut died on the link too.
        self.counters.undelivered_bytes += len(data) - consumed
        # Release segments still held by the reorder model: delays beyond one
        # write would stall request/response ping-pong forever (the next bytes
        # that could trigger release never come while the peer awaits these).
        # Reassembly restores byte order either way; holding only shapes the
        # chunk boundaries the receiver observes within this write.
        for _, seq, segment in self._held:
            delivered.extend(self._arrive(seq, segment))
        self._held.clear()
        return delivered

    def flush(self) -> list[bytes]:
        """End of stream: release held segments, account undelivered bytes."""
        if self._flushed:
            return []
        self._flushed = True
        delivered: list[bytes] = []
        # Held segments are released in hold order; reassembly puts them back
        # into sequence order anyway.
        for _, seq, data in self._held:
            delivered.extend(self._arrive(seq, data))
        self._held.clear()
        if self._pending:
            # A gap (lost segment) stalled delivery; the tail is unrecoverable.
            self.counters.undelivered_bytes += sum(
                len(chunk) for chunk in self._pending.values()
            )
            self._pending.clear()
            self.counters.truncated = True
            if self._severed is None:
                self._severed = "loss"
            self._cut = True
        return delivered

    # -- segmentation ----------------------------------------------------------

    def _segments(self, data: bytes):
        plan = self.plan
        cursor = 0
        while cursor < len(data):
            if plan.jitter and plan.segment_size > 1:
                size = self._rng.randrange(1, plan.segment_size + 1)
            else:
                size = plan.segment_size
            yield data[cursor : cursor + size]
            cursor += size

    # -- the link --------------------------------------------------------------

    def _transmit(self, segment: bytes) -> list[bytes]:
        plan = self.plan
        counters = self.counters
        # The flood model injects its forged oversized declaration into the
        # *delivered* stream once the written stream reaches flood_at.  The
        # forged bytes take their own sequence slot but do not advance the
        # written-stream offset — they never existed on the sending side.
        prelude: list[bytes] = []
        if self._flood_pending and self._offset >= plan.flood_at:
            self._flood_pending = False
            forged = plan.flood_declared.to_bytes(4, "big")
            seq = self._seq
            self._seq += 1
            counters.injected_bytes += len(forged)
            counters.flooded = True
            prelude = self._arrive(seq, forged)
        # Stream death at an absolute offset of the written stream: clean
        # truncation (EOF), connection cut (reset) or indefinite stall
        # (silence) — same delivery limit, different teardown semantics.
        if self._limit is not None:
            limit_at, limit_kind = self._limit
            if self._offset >= limit_at:
                counters.undelivered_bytes += len(segment)
                self._sever(limit_kind)
                self._cut = True
                return prelude
            if self._offset + len(segment) > limit_at:
                kept = limit_at - self._offset
                counters.undelivered_bytes += len(segment) - kept
                self._sever(limit_kind)
                segment = segment[:kept]

        seq = self._seq
        self._seq += 1
        self._offset += len(segment)
        counters.segments += 1

        # Fixed draw order per segment keeps the schedule replayable.
        lost = bool(plan.loss_rate) and self._rng.random() < plan.loss_rate
        doubled = bool(plan.duplicate_rate) and self._rng.random() < plan.duplicate_rate
        damaged = bool(plan.corrupt_rate) and self._rng.random() < plan.corrupt_rate
        delay = 0
        if plan.reorder_rate and self._rng.random() < plan.reorder_rate:
            delay = self._rng.randrange(1, plan.reorder_window + 1)

        if damaged and segment:
            position = self._rng.randrange(0, len(segment))
            burst = min(plan.corrupt_burst, len(segment) - position)
            mangled = bytearray(segment)
            for index in range(position, position + burst):
                mangled[index] ^= 0xFF
            segment = bytes(mangled)
            counters.corrupted += 1
            counters.corrupted_bytes += burst

        # A lost segment still arrives when the duplicate copy survives —
        # duplication genuinely repairs loss, as on a real link.
        copies = (2 if doubled else 1) - (1 if lost else 0)
        if doubled:
            counters.duplicated += 1
        if lost:
            counters.dropped += 1
            if copies <= 0:
                self._lost.add(seq)
                counters.undelivered_bytes += len(segment)

        delivered: list[bytes] = []
        if copies > 0:
            if delay:
                counters.reordered += 1
                self._held.append([delay, seq, segment])
            else:
                delivered.extend(self._arrive(seq, segment))
            for _ in range(copies - 1):
                delivered.extend(self._arrive(seq, segment))

        # Advance the hold-back clock and release segments whose delay expired.
        still_held: list[list] = []
        for entry in self._held:
            entry[0] -= 1
            if entry[0] <= 0:
                delivered.extend(self._arrive(entry[1], entry[2]))
            else:
                still_held.append(entry)
        self._held = still_held

        if self._limit is not None and self._offset >= self._limit[0]:
            self._sever(self._limit[1])
            self._cut = True
        return prelude + delivered if prelude else delivered

    # -- the receiving stack ---------------------------------------------------

    def _arrive(self, seq: int, data: bytes) -> list[bytes]:
        """Reassembly: in-order contiguous delivery, duplicates discarded."""
        if seq < self._next_deliver or seq in self._pending:
            return []
        self._pending[seq] = data
        delivered: list[bytes] = []
        while self._next_deliver in self._pending:
            chunk = self._pending.pop(self._next_deliver)
            self._next_deliver += 1
            if chunk:
                delivered.append(chunk)
                self.counters.delivered_bytes += len(chunk)
        return delivered


class FaultyWriter:
    """An asyncio-writer-shaped wrapper running writes through a fault plan.

    Wraps any writer with the ``write``/``drain``/``close`` surface (real
    :class:`asyncio.StreamWriter` or the in-process
    :class:`~repro.net.session.MemoryWriter`).  When the fault layer cuts the
    stream — the truncation fault fired, or flush found an unfillable loss
    gap — the wrapper half-closes the inner writer so the peer observes a
    mid-stream EOF, and silently swallows everything written afterwards (the
    bytes died on the link, not in the application).
    """

    def __init__(self, writer, plan: "FaultPlan | FaultInjector"):
        self._inner = writer
        self.injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
        self._eof_sent = False

    @property
    def counters(self) -> FaultCounters:
        return self.injector.counters

    def write(self, data: bytes) -> None:
        if self._eof_sent:
            self.injector.counters.undelivered_bytes += len(data)
            return
        for chunk in self.injector.push(data):
            self._inner.write(chunk)
        if self.injector.cut:
            self._finish()

    def write_eof(self) -> None:
        self._finish()

    def _finish(self) -> None:
        if self._eof_sent:
            return
        self._eof_sent = True
        # An RST destroys in-flight data; every other ending releases what
        # the reassembler can still deliver.
        if self.injector.severed != "cut":
            for chunk in self.injector.flush():
                self._inner.write(chunk)
        severed = self.injector.severed
        if severed == "stall":
            # The FIN is withheld with everything else: the peer observes
            # silence forever, never an end of stream.
            return
        if severed == "cut":
            self._reset_inner()
            return
        from .session import half_close  # local: avoid an import cycle

        half_close(self._inner)

    def _reset_inner(self) -> None:
        """Abort the transport so the peer sees a reset, not a clean EOF."""
        reset = getattr(self._inner, "reset", None)
        if reset is not None:
            reset()
            return
        transport = getattr(self._inner, "transport", None)
        if transport is not None:
            try:
                transport.abort()
                return
            except Exception:  # pragma: no cover - transport already gone
                pass
        try:
            self._inner.close()
        except Exception:  # pragma: no cover - transport already gone
            pass

    async def drain(self) -> None:
        await self._inner.drain()

    def can_write_eof(self) -> bool:
        return True

    def close(self) -> None:
        self._finish()
        if self.injector.severed == "stall":
            # Closing the inner transport would deliver the EOF the stall
            # fault withholds; the stalled connection stays half-dead.
            return
        try:
            self._inner.close()
        except Exception:  # pragma: no cover - transport already gone
            pass

    def is_closing(self) -> bool:
        return self._eof_sent or self._inner.is_closing()

    async def wait_closed(self) -> None:
        waiter = getattr(self._inner, "wait_closed", None)
        if waiter is not None:
            await waiter()

    def get_extra_info(self, name: str, default=None):
        return self._inner.get_extra_info(name, default)


def faulty_memory_pipe(request_plan: FaultPlan | None = None,
                       response_plan: FaultPlan | None = None):
    """:func:`~repro.net.session.memory_pipe` with fault injection per direction.

    Returns ``((client_reader, client_writer), (server_reader, server_writer))``
    where the client→server byte stream runs through ``request_plan`` and the
    server→client stream through ``response_plan`` (``None`` = clean).
    """
    from .session import memory_pipe  # local: avoid an import cycle

    (client_reader, client_writer), (server_reader, server_writer) = memory_pipe()
    if request_plan is not None:
        client_writer = FaultyWriter(client_writer, request_plan)
    if response_plan is not None:
        server_writer = FaultyWriter(server_writer, response_plan)
    return (client_reader, client_writer), (server_reader, server_writer)


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded schedule of connection-level chaos across a session's life.

    Where a :class:`FaultPlan` shapes one connection's byte stream, a chaos
    schedule spans *reconnections*: it decides, per connection attempt, which
    fault plan (if any) rides that link and whether the dial itself fails —
    the recovery workload of the resilience layer.  The first ``failures``
    attempts are hostile, everything after is clean, so a correctly retrying
    endpoint always converges.  All offsets are drawn from generators seeded
    by ``(seed, attempt)``, so a schedule is a pure function of its fields:
    the chaos-soak benchmark replays the same seed and asserts bit-identical
    recovery traces.

    Scenarios (:data:`CHAOS_SCENARIOS`):

    * ``cut`` — the link resets mid-session at a drawn offset;
    * ``stall`` — the link goes silent mid-session (no EOF), the failure
      only an idle-read deadline diagnoses;
    * ``loss_cut`` — segment loss plus a mid-session reset (a damaged *and*
      dying path);
    * ``dial_flaky`` — the connection itself is refused until the link
      heals, the workload of retry/backoff and the circuit breaker.
    """

    scenario: str
    seed: int = 0
    #: hostile connection attempts before the link heals.
    failures: int = 1
    #: offset range (inclusive lo, exclusive hi) cut/stall offsets draw from.
    fault_window: tuple[int, int] = (24, 160)
    #: segment loss rate of the ``loss_cut`` scenario's hostile attempts.
    loss_rate: float = 0.04
    #: link segment size of hostile attempts.
    segment_size: int = 32

    def __post_init__(self) -> None:
        if self.scenario not in CHAOS_SCENARIOS:
            raise FaultPlanError(
                f"unknown chaos scenario {self.scenario!r}; expected one of "
                f"{CHAOS_SCENARIOS}"
            )
        if self.failures < 0:
            raise FaultPlanError(f"failures cannot be negative ({self.failures})")
        lo, hi = self.fault_window
        if not 0 <= lo < hi:
            raise FaultPlanError(f"malformed fault_window {self.fault_window}")

    def _rng(self, attempt: int) -> Random:
        return Random(f"chaos:{self.seed}:{self.scenario}:{attempt}")

    def dial_fails(self, attempt: int) -> bool:
        """Does connection attempt ``attempt`` (1-based) fail to dial?"""
        return self.scenario == "dial_flaky" and attempt <= self.failures

    def plan_for_attempt(self, attempt: int) -> "FaultPlan | None":
        """The fault plan riding connection attempt ``attempt`` (1-based).

        ``None`` means a clean link — healed attempts, and every attempt of
        the ``dial_flaky`` scenario (its faults live at the dial, not on the
        stream).
        """
        if attempt < 1:
            raise FaultPlanError(f"attempts are 1-based ({attempt})")
        if attempt > self.failures or self.scenario == "dial_flaky":
            return None
        rng = self._rng(attempt)
        offset = rng.randrange(*self.fault_window)
        seed = rng.randrange(1 << 30)
        if self.scenario == "cut":
            return FaultPlan(seed=seed, segment_size=self.segment_size,
                             cut_at=offset)
        if self.scenario == "stall":
            return FaultPlan(seed=seed, segment_size=self.segment_size,
                             stall_at=offset)
        return FaultPlan(seed=seed, segment_size=self.segment_size,
                         loss_rate=self.loss_rate, cut_at=offset)

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["fault_window"] = list(self.fault_window)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosSchedule":
        known = {entry.name for entry in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(
                f"unknown chaos schedule field(s): {', '.join(sorted(unknown))}"
            )
        payload = dict(payload)
        if "fault_window" in payload:
            payload["fault_window"] = tuple(payload["fault_window"])
        try:
            return cls(**payload)
        except TypeError as exc:
            raise FaultPlanError(f"malformed chaos schedule: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise FaultPlanError(
                f"chaos schedule is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise FaultPlanError("chaos schedule JSON must be an object")
        return cls.from_dict(payload)

    @property
    def fingerprint(self) -> str:
        """Stable short identifier of the schedule (canonical-JSON digest)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]


__all__ = [
    "CHAOS_SCENARIOS",
    "FAULT_MODELS",
    "ChaosSchedule",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultyWriter",
    "faulty_memory_pipe",
]
