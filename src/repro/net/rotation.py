"""Session keys and plan books: pre-shared obfuscation plans for rotation.

In the paper's threat model the obfuscated format is the shared secret; this
module packages it for the live transport layer.  A :class:`SessionKey` is one
complete dialect — the request- and response-direction graphs replayed from
their :class:`~repro.transforms.plan.ObfuscationPlan`\\ s, named by a stable
key identifier — and a :class:`PlanBook` is the keyring both endpoints hold.

Key distribution happens out of band (ship the plan files of
:mod:`repro.spec.planfile`, or derive from a shared seed); the wire only ever
carries the *key id* inside a rotation control record
(:func:`~repro.net.framing.encode_rotation`).  An observer therefore learns
that the dialect changed, never what it changed to.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..core.errors import StreamError
from ..core.fingerprint import graph_fingerprint
from ..core.graph import FormatGraph
from ..protocols import registry
from ..transforms.engine import Obfuscator
from ..transforms.plan import ObfuscationPlan


@dataclass(frozen=True)
class SessionKey:
    """One obfuscated dialect of a protocol, ready to speak on a session.

    ``request_graph`` / ``response_graph`` are the transformed format graphs
    (single-direction protocols alias the same graph for both); the
    fingerprints name the per-direction plans and tag capture records.
    """

    key_id: str
    request_graph: FormatGraph
    response_graph: FormatGraph
    request_fingerprint: str | None
    response_fingerprint: str | None

    @staticmethod
    def _default_id(request_fingerprint: str | None,
                    response_fingerprint: str | None) -> str:
        seed = f"{request_fingerprint}:{response_fingerprint}"
        return hashlib.sha256(seed.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_graphs(cls, request_graph: FormatGraph,
                    response_graph: FormatGraph | None = None, *,
                    key_id: str | None = None) -> "SessionKey":
        """Wrap already-transformed graphs (stamped or not) into a key."""
        response = response_graph if response_graph is not None else request_graph
        request_fpr = getattr(request_graph, "plan_fingerprint", None)
        response_fpr = getattr(response, "plan_fingerprint", None)
        if request_fpr is None:
            request_fpr = graph_fingerprint(request_graph)
        if response_fpr is None:
            response_fpr = graph_fingerprint(response)
        return cls(
            key_id=key_id if key_id is not None else cls._default_id(request_fpr, response_fpr),
            request_graph=request_graph,
            response_graph=response,
            request_fingerprint=request_fpr,
            response_fingerprint=response_fpr,
        )

    @classmethod
    def from_plans(cls, protocol: "str | registry.ProtocolSetup",
                   request_plan: ObfuscationPlan,
                   response_plan: ObfuscationPlan | None = None, *,
                   key_id: str | None = None) -> "SessionKey":
        """Replay per-direction plans on the protocol's plain reference graphs.

        This is the key-distribution path: both endpoints load the same plan
        files and derive bit-identical dialects — same graphs, same compiled
        codec plans (the replayed graphs are fingerprint-stamped), same key
        id — without any shared RNG state.
        """
        setup = registry.get(protocol) if isinstance(protocol, str) else protocol
        request_graph = request_plan.replay(setup.reference_graph("request"))
        if response_plan is not None:
            response_graph = response_plan.replay(setup.reference_graph("response"))
        elif setup.response_graph_factory is not None:
            # A book key must transform *both* directions: an unrotated
            # response side would leak plain traffic after a rotation.
            raise StreamError(
                f"protocol {setup.key!r} models a response direction; provide "
                f"its plan too (or none for single-direction protocols)"
            )
        else:
            response_graph = request_graph
        return cls(
            key_id=(key_id if key_id is not None
                    else cls._default_id(request_plan.fingerprint,
                                         response_plan.fingerprint
                                         if response_plan is not None
                                         else request_plan.fingerprint)),
            request_graph=request_graph,
            response_graph=response_graph,
            request_fingerprint=request_plan.fingerprint,
            response_fingerprint=(response_plan.fingerprint
                                  if response_plan is not None
                                  else request_plan.fingerprint),
        )


def derive_session_key(protocol: "str | registry.ProtocolSetup", *,
                       passes: int = 1, seed: int = 0,
                       key_id: str | None = None) -> SessionKey:
    """Draw a fresh dialect of ``protocol`` and package it as a session key.

    Obfuscates each direction with its own engine (``seed`` for requests,
    ``seed + 1`` for responses, mirroring the resilience experiment's
    convention) and goes through plan extraction + replay, so the key is
    exactly what a peer rebuilding it from the persisted plans obtains.
    """
    setup = registry.get(protocol) if isinstance(protocol, str) else protocol
    request_plan = Obfuscator(seed=seed).obfuscate(
        setup.reference_graph("request"), passes).plan()
    response_plan = None
    if setup.response_graph_factory is not None:
        response_plan = Obfuscator(seed=seed + 1).obfuscate(
            setup.reference_graph("response"), passes).plan()
    return SessionKey.from_plans(setup, request_plan, response_plan, key_id=key_id)


class PlanBook:
    """The keyring of rotation-capable endpoints: key id → :class:`SessionKey`.

    Both endpoints of a session must hold books agreeing on every key id they
    rotate through; the first registered key is the session's initial dialect
    unless the endpoint overrides its graphs explicitly.

    The book is also what makes **reconnect-with-rotation-resume** possible:
    a client re-dialing after a mid-session cut re-announces only its last
    announced key id, and both sides resolve the full dialect from their own
    books — rotation state survives the transport, never crosses the wire.
    """

    def __init__(self, keys: "list[SessionKey] | None" = None):
        self._keys: dict[str, SessionKey] = {}
        self._initial: SessionKey | None = None
        for key in keys or ():
            self.add(key)

    def add(self, key: SessionKey) -> SessionKey:
        if key.key_id in self._keys:
            raise StreamError(f"plan book already holds key {key.key_id!r}")
        self._keys[key.key_id] = key
        if self._initial is None:
            self._initial = key
        return key

    def get(self, key_id: str) -> SessionKey:
        try:
            return self._keys[key_id]
        except KeyError:
            raise KeyError(
                f"plan book holds no key {key_id!r}; known: "
                f"{', '.join(self._keys) or 'none'}"
            ) from None

    @property
    def initial(self) -> SessionKey | None:
        """The first registered key (the session's starting dialect)."""
        return self._initial

    def key_ids(self) -> tuple[str, ...]:
        """Registered key ids, in insertion order."""
        return tuple(self._keys)

    def keys(self) -> tuple[SessionKey, ...]:
        """Registered session keys, in insertion order."""
        return tuple(self._keys.values())

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key_id: object) -> bool:
        return key_id in self._keys


__all__ = ["PlanBook", "SessionKey", "derive_session_key"]
