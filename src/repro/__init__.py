"""ProtoObf reproduction: specification-based protocol obfuscation.

A complete Python re-implementation of the framework described in
"Specification-based Protocol Obfuscation" (Duchêne, Alata, Nicomette,
Kaâniche, Le Guernic — DSN 2018): message format graphs, invertible
obfuscating transformations, on-the-fly serialization/parsing, code
generation of standalone serialization libraries, the Modbus/HTTP evaluation
protocols, the potency/cost metrics and a protocol reverse engineering
substrate used for the resilience assessment.
"""

from .core import (
    Boundary,
    BoundaryKind,
    FieldPath,
    FormatGraph,
    Message,
    Node,
    NodeType,
    ReproError,
    ValueKind,
    build_graph,
)
from .wire import WireCodec

__version__ = "1.0.0"

__all__ = [
    "Boundary",
    "BoundaryKind",
    "FieldPath",
    "FormatGraph",
    "Message",
    "Node",
    "NodeType",
    "ReproError",
    "ValueKind",
    "WireCodec",
    "__version__",
    "build_graph",
]
