"""Lines-of-code metric of generated libraries (paper "Nb. lines")."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LineCounts:
    """Breakdown of the lines of a generated module."""

    total: int
    code: int
    comment: int
    blank: int


def count_lines(source: str) -> LineCounts:
    """Count total/code/comment/blank lines of a source text.

    Docstring lines are counted as code (they are part of the generated
    output), standalone ``#`` lines as comments.
    """
    total = code = comment = blank = 0
    for line in source.splitlines():
        total += 1
        stripped = line.strip()
        if not stripped:
            blank += 1
        elif stripped.startswith("#"):
            comment += 1
        else:
            code += 1
    return LineCounts(total=total, code=code, comment=comment, blank=blank)


def code_lines(source: str) -> int:
    """Number of non-blank, non-comment lines (the paper's potency measure)."""
    return count_lines(source).code


def generated_code_lines(source: str, marker: str) -> int:
    """Code lines of the specification-derived part of a generated module.

    The generated libraries embed a fixed helper preamble followed by a
    marker line; only what follows the marker grows with the specification
    and the applied transformations, so the potency metric counts that part.
    When the marker is absent the whole source is counted.
    """
    position = source.find(marker)
    if position < 0:
        return code_lines(source)
    return code_lines(source[position + len(marker):])
