"""Potency metrics of a generated library (paper Tables III/IV, Figures 6/7).

Potency describes how much more complex the obfuscated library is compared to
the non-obfuscated one.  The paper reports four measures, all normalized by
the values of the non-obfuscated generated code: number of code lines, number
of internal structures, call-graph size and call-graph depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.graph import FormatGraph
from ..codegen.emitter import GENERATED_MARKER, generate_module
from .callgraph import extract_call_graph, restrict_call_graph
from .loc import generated_code_lines
from .structs import struct_count

#: Functions counted in the parse call graph: the per-node generated parsers
#: plus the public entry points (the fixed preamble helpers are excluded, as
#: they do not grow with the specification).
_PARSE_PREFIXES = ("_par_",)
_PARSE_KEEP = ("parse", "_run_parse")


@dataclass(frozen=True)
class PotencyMetrics:
    """Raw potency measurements of one generated library."""

    lines: int
    structs: int
    call_graph_size: int
    call_graph_depth: int

    def normalized(self, reference: "PotencyMetrics") -> "NormalizedPotency":
        """Normalize by the non-obfuscated reference (the paper's presentation)."""
        return NormalizedPotency(
            lines=self.lines / reference.lines if reference.lines else 0.0,
            structs=self.structs / reference.structs if reference.structs else 0.0,
            call_graph_size=(
                self.call_graph_size / reference.call_graph_size
                if reference.call_graph_size
                else 0.0
            ),
            call_graph_depth=(
                self.call_graph_depth / reference.call_graph_depth
                if reference.call_graph_depth
                else 0.0
            ),
        )


@dataclass(frozen=True)
class NormalizedPotency:
    """Potency metrics normalized by the non-obfuscated library."""

    lines: float
    structs: float
    call_graph_size: float
    call_graph_depth: float

    def as_dict(self) -> dict[str, float]:
        return {
            "lines": self.lines,
            "structs": self.structs,
            "call_graph_size": self.call_graph_size,
            "call_graph_depth": self.call_graph_depth,
        }


def measure_source(source: str) -> PotencyMetrics:
    """Measure the potency metrics of generated source code.

    Lines and call-graph measures are restricted to the specification-derived
    part of the module (per-node functions, structs, accessors): the fixed
    preamble does not grow with the number of transformations and would only
    dampen the normalized ratios reported by the paper.
    """
    graph = restrict_call_graph(
        extract_call_graph(source), _PARSE_PREFIXES, keep=_PARSE_KEEP
    )
    return PotencyMetrics(
        lines=generated_code_lines(source, GENERATED_MARKER),
        structs=struct_count(source),
        call_graph_size=graph.size,
        call_graph_depth=graph.depth,
    )


def measure_graph(graph: FormatGraph) -> PotencyMetrics:
    """Generate the library for ``graph`` and measure its potency metrics."""
    return measure_source(generate_module(graph))
