"""Static call graph of generated libraries (paper "Call graph size/depth").

The paper runs ``cflow`` on the generated C code and reports the size (number
of nodes) and depth of the call graph of the parsing process.  The equivalent
here is a static call graph extracted from the generated Python source with
the :mod:`ast` module, restricted to functions defined in the module, and
rooted at the public ``parse`` entry point.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass


@dataclass(frozen=True)
class CallGraph:
    """Static call graph of one generated module."""

    edges: dict[str, frozenset[str]]
    entry: str

    def reachable(self) -> set[str]:
        """Function names reachable from the entry point (entry included)."""
        seen: set[str] = set()
        stack = [self.entry]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.edges:
                continue
            seen.add(current)
            stack.extend(self.edges[current])
        return seen

    @property
    def size(self) -> int:
        """Number of module functions reachable from the entry point."""
        return len(self.reachable())

    @property
    def depth(self) -> int:
        """Length of the longest acyclic call chain starting at the entry point."""
        memo: dict[str, int] = {}
        in_progress: set[str] = set()

        def longest(name: str) -> int:
            if name not in self.edges or name in in_progress:
                return 0
            if name in memo:
                return memo[name]
            in_progress.add(name)
            best = 0
            for callee in self.edges[name]:
                best = max(best, longest(callee))
            in_progress.discard(name)
            memo[name] = best + 1
            return memo[name]

        return longest(self.entry)


def restrict_call_graph(graph: CallGraph, prefixes: tuple[str, ...],
                        keep: tuple[str, ...] = ()) -> CallGraph:
    """Project a call graph onto the functions matching ``prefixes`` (or ``keep``).

    Edges are contracted through removed functions so that a chain
    ``a -> helper -> b`` (with ``helper`` filtered out) still yields the edge
    ``a -> b``.  Used to measure the per-node generated functions only,
    excluding the fixed preamble helpers.
    """

    def kept(name: str) -> bool:
        return name in keep or any(name.startswith(prefix) for prefix in prefixes)

    def targets(name: str, seen: set[str]) -> set[str]:
        reached: set[str] = set()
        for callee in graph.edges.get(name, frozenset()):
            if callee in seen:
                continue
            if kept(callee):
                reached.add(callee)
            else:
                reached.update(targets(callee, seen | {callee}))
        return reached

    edges = {
        name: frozenset(targets(name, {name}))
        for name in graph.edges
        if kept(name)
    }
    return CallGraph(edges=edges, entry=graph.entry)


class _CallCollector(ast.NodeVisitor):
    """Collect the names called inside one function body."""

    def __init__(self) -> None:
        self.calls: set[str] = set()

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802 (ast API)
        if isinstance(node.func, ast.Name):
            self.calls.add(node.func.id)
        self.generic_visit(node)


def extract_call_graph(source: str, *, entry: str = "parse") -> CallGraph:
    """Build the static call graph of ``source`` rooted at ``entry``."""
    tree = ast.parse(source)
    functions: dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    functions.setdefault(f"{node.name}.{item.name}", item)
    edges: dict[str, frozenset[str]] = {}
    defined = set(functions)
    for name, function in functions.items():
        collector = _CallCollector()
        collector.visit(function)
        edges[name] = frozenset(call for call in collector.calls if call in defined)
    return CallGraph(edges=edges, entry=entry)


def call_graph_size(source: str, *, entry: str = "parse") -> int:
    """Number of functions reachable from the parse entry point."""
    return extract_call_graph(source, entry=entry).size


def call_graph_depth(source: str, *, entry: str = "parse") -> int:
    """Longest call chain starting at the parse entry point."""
    return extract_call_graph(source, entry=entry).depth
