"""Structure-count metric of generated libraries (paper "Nb. structs").

The paper counts the internal C structures used by the generated library to
store data during parsing.  The Python generator emits one AST class per graph
node (prefixed ``S_``); those are the counted structures.  Helper classes of
the fixed preamble are reported separately.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass


@dataclass(frozen=True)
class StructCounts:
    """Breakdown of the classes defined by a generated module."""

    ast_structs: int
    helper_classes: int

    @property
    def total(self) -> int:
        return self.ast_structs + self.helper_classes


def count_structs(source: str) -> StructCounts:
    """Count AST struct classes and helper classes in generated source."""
    tree = ast.parse(source)
    ast_structs = helper_classes = 0
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if node.name.startswith("S_"):
                ast_structs += 1
            else:
                helper_classes += 1
    return StructCounts(ast_structs=ast_structs, helper_classes=helper_classes)


def struct_count(source: str) -> int:
    """Number of per-node AST structures (the paper's potency measure)."""
    return count_structs(source).ast_structs
