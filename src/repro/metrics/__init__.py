"""Potency and cost metrics of generated serialization libraries."""

from .callgraph import CallGraph, call_graph_depth, call_graph_size, extract_call_graph
from .cost import CostSample, CostSummary, measure_message, measure_messages, summarize, time_call
from .loc import LineCounts, code_lines, count_lines
from .potency import NormalizedPotency, PotencyMetrics, measure_graph, measure_source
from .structs import StructCounts, count_structs, struct_count

__all__ = [
    "CallGraph",
    "CostSample",
    "CostSummary",
    "LineCounts",
    "NormalizedPotency",
    "PotencyMetrics",
    "StructCounts",
    "call_graph_depth",
    "call_graph_size",
    "code_lines",
    "count_lines",
    "count_structs",
    "extract_call_graph",
    "measure_graph",
    "measure_message",
    "measure_messages",
    "measure_source",
    "struct_count",
    "summarize",
    "time_call",
]
