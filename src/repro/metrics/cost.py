"""Cost metrics (paper Tables III/IV, Figures 4/5).

The cost of the obfuscation is measured in absolute values: the time to
generate the obfuscated library (specification parsing + transformation +
code generation), the time to serialize and parse messages with it, and the
size of the serialized buffer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.message import Message


@dataclass(frozen=True)
class CostSample:
    """Cost measurements for one message under one obfuscated library."""

    serialize_ms: float
    parse_ms: float
    buffer_size: int


@dataclass(frozen=True)
class CostSummary:
    """Aggregated cost measurements over a set of messages."""

    serialize_ms: float
    parse_ms: float
    buffer_size: float
    samples: int


def time_call(function: Callable[[], object]) -> float:
    """Wall-clock duration of one call, in milliseconds."""
    start = time.perf_counter()
    function()
    return (time.perf_counter() - start) * 1000.0


def measure_message(codec, message: Message | dict, *, repetitions: int = 3) -> CostSample:
    """Measure serialize/parse time and buffer size for one message.

    Each operation is repeated ``repetitions`` times and the minimum is kept,
    the standard way to suppress scheduler and garbage-collector outliers when
    timing sub-millisecond operations.
    """
    repetitions = max(1, repetitions)
    serialize_times: list[float] = []
    parse_times: list[float] = []
    data = codec.serialize(message)
    for _ in range(repetitions):
        start = time.perf_counter()
        data = codec.serialize(message)
        serialize_times.append((time.perf_counter() - start) * 1000.0)
        start = time.perf_counter()
        codec.parse(data)
        parse_times.append((time.perf_counter() - start) * 1000.0)
    return CostSample(
        serialize_ms=min(serialize_times),
        parse_ms=min(parse_times),
        buffer_size=len(data),
    )


def measure_messages(codec, messages: Iterable[Message | dict],
                     *, repetitions: int = 3) -> list[CostSample]:
    """Measure every message of a workload."""
    return [measure_message(codec, message, repetitions=repetitions) for message in messages]


def summarize(samples: Sequence[CostSample]) -> CostSummary:
    """Average the cost samples of one experiment run."""
    if not samples:
        return CostSummary(serialize_ms=0.0, parse_ms=0.0, buffer_size=0.0, samples=0)
    return CostSummary(
        serialize_ms=sum(sample.serialize_ms for sample in samples) / len(samples),
        parse_ms=sum(sample.parse_ms for sample in samples) / len(samples),
        buffer_size=sum(sample.buffer_size for sample in samples) / len(samples),
        samples=len(samples),
    )
