"""Summary statistics used throughout the evaluation tables.

The paper reports every metric as ``average [min, max]`` over repeated random
draws; :class:`Summary` reproduces that presentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Summary:
    """Average / minimum / maximum of a series of measurements."""

    mean: float
    minimum: float
    maximum: float
    count: int

    def format(self, digits: int = 2) -> str:
        """Render as ``avg[min; max]``, the presentation used by the paper's tables."""
        return (
            f"{self.mean:.{digits}f}"
            f"[{self.minimum:.{digits}f}; {self.maximum:.{digits}f}]"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Compute the average/min/max summary of a series (empty series give zeros)."""
    series = list(values)
    if not series:
        return Summary(mean=0.0, minimum=0.0, maximum=0.0, count=0)
    return Summary(
        mean=sum(series) / len(series),
        minimum=min(series),
        maximum=max(series),
        count=len(series),
    )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty series)."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a series (0 ≤ fraction ≤ 1)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]
