"""Least-squares linear regression (paper Figures 4 and 5).

The paper fits the parsing and serialization times against the number of
applied transformations and reports the regression line and its correlation
coefficient.  The implementation below is a plain ordinary-least-squares fit
with no external dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LinearFit:
    """Result of an ordinary-least-squares fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    correlation: float
    samples: int

    def predict(self, x: float) -> float:
        """Value of the regression line at ``x``."""
        return self.slope * x + self.intercept

    def format(self) -> str:
        """Human-readable rendering with the correlation coefficient."""
        return (
            f"y = {self.slope:.5f} * x + {self.intercept:.5f}  (r = {self.correlation:.3f}, "
            f"n = {self.samples})"
        )


def linear_regression(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Fit ``ys`` against ``xs`` with ordinary least squares.

    Degenerate inputs (fewer than two points, or zero variance in ``xs``)
    return a flat line with zero correlation rather than raising, which keeps
    the benchmark harness robust to tiny workloads.
    """
    if len(xs) != len(ys):
        raise ValueError("x and y series must have the same length")
    count = len(xs)
    if count < 2:
        return LinearFit(slope=0.0, intercept=ys[0] if ys else 0.0, correlation=0.0,
                         samples=count)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    variance_x = sum((x - mean_x) ** 2 for x in xs)
    variance_y = sum((y - mean_y) ** 2 for y in ys)
    if variance_x == 0.0:
        return LinearFit(slope=0.0, intercept=mean_y, correlation=0.0, samples=count)
    slope = covariance / variance_x
    intercept = mean_y - slope * mean_x
    if variance_y == 0.0:
        correlation = 0.0
    else:
        correlation = covariance / math.sqrt(variance_x * variance_y)
    return LinearFit(slope=slope, intercept=intercept, correlation=correlation, samples=count)
