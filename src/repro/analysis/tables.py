"""Plain-text table rendering for the benchmark harness output.

The benchmarks print the same rows as the paper's tables; this module keeps
the formatting logic (column alignment, headers) in one place.
"""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: str | None = None) -> str:
    """Render a fixed-width text table."""
    columns = [[str(header)] for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            columns[index].append(str(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            " | ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render a small two-row series (used for figure-style benchmark output)."""
    header = f"{name}:"
    x_line = "  x: " + ", ".join(str(x) for x in xs)
    y_line = "  y: " + ", ".join(str(y) for y in ys)
    return "\n".join((header, x_line, y_line))
