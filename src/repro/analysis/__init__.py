"""Statistics, regression and table-rendering helpers for the evaluation."""

from .regression import LinearFit, linear_regression
from .stats import Summary, mean, percentile, summarize
from .tables import render_series, render_table

__all__ = [
    "LinearFit",
    "Summary",
    "linear_regression",
    "mean",
    "percentile",
    "render_series",
    "render_table",
    "summarize",
]
