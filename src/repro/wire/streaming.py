"""Incremental, resumable wire decoding over byte streams.

The whole-message :class:`~repro.wire.parser.Parser` assumes the complete
message sits in one buffer.  On a live transport that assumption never holds:
bytes arrive in arbitrary chunks, several messages ride back-to-back on one
TCP stream, and the decoder must say *"I need more bytes"* without losing the
parse state it has already built.

This module provides that incremental variant.  The recursive descent of the
parser is re-expressed as a suspendable generator machine:

* a :class:`StreamSource` accumulates fed chunks (with an absolute offset
  base, so consumed prefixes can be released),
* a :class:`StreamWindow` is the streaming counterpart of
  :class:`~repro.wire.window.Window`; every primitive read is a generator
  that yields :data:`NEED_MORE` until the source holds enough bytes (or EOF
  resolves the wait),
* :class:`StreamingParser` mirrors the parser's node dispatch exactly —
  same plan-compiled codecs, same reference resolution, same optional /
  repetition / synthesis / mirror semantics — but suspended mid-node when
  the stream runs dry,
* :class:`StreamingDecoder` drives the machine: ``feed()`` returns every
  newly completed message, ``feed_eof()`` flushes the tail, and back-to-back
  messages on one stream are framed without any outer envelope.

Framing caveat — *greedy* graphs.  A graph whose parse consults the end of
the enclosing window at the top level (an END-bounded terminal such as the
HTTP body, or an Optional without a presence reference) cannot be framed on
a bare stream: the next message's bytes would be swallowed.  Exactly like
HTTP/1.0 without ``Content-Length``, such messages end only at end-of-stream.
:func:`stream_greedy_nodes` / :func:`is_self_framing` perform that static
analysis; the session layer (:mod:`repro.net`) switches to an explicit
record framing when a graph is not self-framing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.boundary import BoundaryKind
from ..core.errors import BudgetExceeded, ParseError, StreamError
from ..core.graph import FormatGraph
from ..core.message import Message
from ..core.node import Node, NodeType
from ..core.values import Value
from .parser import _ParseContext
from .plan import CodecPlan, plan_for

#: Sentinel yielded by the parse machine when the source holds too few bytes.
NEED_MORE = object()


# ---------------------------------------------------------------------------
# the byte source
# ---------------------------------------------------------------------------


class StreamSource:
    """An append-only byte accumulator with an absolute offset base.

    All offsets handed out by the source (and by the windows over it) are
    *absolute stream offsets*: :meth:`release` drops an already-consumed
    prefix without renumbering anything, which keeps memory bounded on
    long-lived sessions.

    ``limit`` caps the bytes *held* at any moment: a feed that would grow
    the retained storage past it raises a typed
    :class:`~repro.core.errors.BudgetExceeded` before buffering anything.
    ``last_wait`` is maintained by the windows: the smallest absolute offset
    a suspended parse can still re-read, i.e. the safe release point while a
    message is incomplete.
    """

    __slots__ = ("_buffer", "_base", "_eof", "limit", "last_wait")

    def __init__(self, data: bytes = b"", *, eof: bool = False,
                 limit: int | None = None):
        self._buffer = bytearray(data)
        self._base = 0
        self._eof = eof
        self.limit = limit
        self.last_wait = 0

    @classmethod
    def of(cls, data: bytes) -> "StreamSource":
        """A complete in-memory source (used for mirrored region re-parses)."""
        return cls(data, eof=True)

    @property
    def length(self) -> int:
        """Absolute offset one past the last byte received so far."""
        return self._base + len(self._buffer)

    @property
    def base(self) -> int:
        """Absolute offset of the first byte still held."""
        return self._base

    @property
    def eof(self) -> bool:
        return self._eof

    def feed(self, data: bytes) -> None:
        if self._eof:
            raise StreamError("cannot feed bytes after end-of-stream")
        if self.limit is not None and len(self._buffer) + len(data) > self.limit:
            raise BudgetExceeded(
                "stream_bytes", limit=self.limit,
                actual=len(self._buffer) + len(data),
            )
        self._buffer += data

    def feed_eof(self) -> None:
        self._eof = True

    def buffered_bytes(self) -> int:
        """Bytes *held* in storage right now (received minus released)."""
        return len(self._buffer)

    def release(self, upto: int) -> None:
        """Drop the bytes before absolute offset ``upto`` (already consumed)."""
        if upto <= self._base:
            return
        del self._buffer[: upto - self._base]
        self._base = upto

    # -- reads (absolute offsets) --------------------------------------------

    def slice(self, start: int, end: int) -> bytes:
        return bytes(self._buffer[start - self._base : end - self._base])

    def find(self, sub: bytes, start: int, end: int) -> int:
        position = self._buffer.find(sub, start - self._base, end - self._base)
        return position if position < 0 else position + self._base

    def startswith(self, prefix: bytes, start: int, end: int) -> bool:
        return self._buffer.startswith(prefix, start - self._base, end - self._base)


# ---------------------------------------------------------------------------
# the suspendable window
# ---------------------------------------------------------------------------


class StreamWindow:
    """A cursor over a :class:`StreamSource`, possibly with an open end.

    The streaming counterpart of :class:`~repro.wire.window.Window`: a
    bounded window (``end`` given) behaves identically once the bytes have
    arrived; an *unbounded* window (``end=None``) extends to the — as yet
    unknown — end of the stream.  Every consuming primitive is a generator
    yielding :data:`NEED_MORE` while the source holds too few bytes; waits
    resolve as soon as the bytes arrive or EOF makes the answer definite.
    """

    __slots__ = ("source", "cursor", "end")

    def __init__(self, source: StreamSource, start: int, end: int | None):
        self.source = source
        self.cursor = start
        self.end = end

    # -- synchronous inspection ----------------------------------------------

    def bounded_at_end(self) -> bool:
        """End check of a bounded window (callers guarantee ``end`` is set)."""
        return self.cursor >= self.end  # type: ignore[operator]

    def bounded_remaining(self) -> int:
        return (self.end or 0) - self.cursor

    # -- suspendable primitives ----------------------------------------------

    def read(self, count: int):
        """Consume exactly ``count`` bytes (suspends until they arrived)."""
        if count < 0:
            raise ParseError(f"cannot read a negative number of bytes ({count})")
        target = self.cursor + count
        if self.end is not None and target > self.end:
            raise ParseError(
                f"unexpected end of data: needed {count} byte(s), "
                f"{self.end - self.cursor} available",
                offset=self.cursor,
            )
        source = self.source
        while source.length < target:
            if source.eof:
                raise StreamError(
                    f"stream ended {target - source.length} byte(s) short of a "
                    f"{count}-byte read",
                    offset=self.cursor,
                )
            source.last_wait = self.cursor
            yield NEED_MORE
        data = source.slice(self.cursor, target)
        self.cursor = target
        return data

    def read_rest(self):
        """Consume every remaining byte of the window.

        On an unbounded window this is the END boundary at stream level: it
        resolves only once EOF is known (HTTP/1.0 body semantics).
        """
        if self.end is not None:
            return (yield from self.read(self.end - self.cursor))
        source = self.source
        while not source.eof:
            source.last_wait = self.cursor
            yield NEED_MORE
        data = source.slice(self.cursor, source.length)
        self.cursor = source.length
        return data

    def read_until(self, delimiter: bytes):
        """Consume up to and including ``delimiter``; return the bytes before it."""
        if not delimiter:
            raise ParseError("cannot search for an empty delimiter")
        source = self.source
        search_from = self.cursor
        while True:
            limit = source.length if self.end is None else min(source.length, self.end)
            position = source.find(delimiter, search_from, limit)
            if position >= 0:
                value = source.slice(self.cursor, position)
                self.cursor = position + len(delimiter)
                return value
            if self.end is not None and source.length >= self.end:
                # The whole window arrived and holds no delimiter.
                raise ParseError(
                    f"delimiter {delimiter!r} not found", offset=self.cursor
                )
            if source.eof:
                raise StreamError(
                    f"stream ended before delimiter {delimiter!r} was found",
                    offset=self.cursor,
                )
            # A partial delimiter may straddle the next chunk: re-scan only
            # from the last position it could have started at.
            search_from = max(self.cursor, limit - len(delimiter) + 1)
            source.last_wait = self.cursor
            yield NEED_MORE

    def at_end(self):
        """End-of-window check (suspends on an unbounded window with no bytes)."""
        if self.end is not None:
            return self.cursor >= self.end
        source = self.source
        while True:
            if source.length > self.cursor:
                return False
            if source.eof:
                return True
            source.last_wait = self.cursor
            yield NEED_MORE

    def starts_with(self, prefix: bytes):
        """True when the unread bytes start with ``prefix`` (suspendable)."""
        target = self.cursor + len(prefix)
        if self.end is not None and target > self.end:
            return False
        source = self.source
        while source.length < target:
            if source.eof:
                if self.end is not None:
                    raise StreamError(
                        "stream ended inside a bounded window", offset=self.cursor
                    )
                return False
            source.last_wait = self.cursor
            yield NEED_MORE
        return source.startswith(prefix, self.cursor, target)

    def subwindow(self, length: int) -> "StreamWindow":
        """Bounded child window over the next ``length`` bytes (consumed here)."""
        if length < 0:
            raise ParseError(f"negative sub-window length ({length})")
        if self.end is not None and self.cursor + length > self.end:
            raise ParseError(
                f"sub-window of {length} byte(s) exceeds the "
                f"{self.end - self.cursor} remaining byte(s)",
                offset=self.cursor,
            )
        child = StreamWindow(self.source, self.cursor, self.cursor + length)
        self.cursor += length
        return child

    def __repr__(self) -> str:
        end = "open" if self.end is None else self.end
        return f"StreamWindow(cursor={self.cursor}, end={end})"


# ---------------------------------------------------------------------------
# the suspendable recursive descent
# ---------------------------------------------------------------------------


class StreamingParser:
    """The parser's recursive descent, re-expressed as a generator machine.

    Node dispatch, reference resolution, optional presence, repetition
    boundaries, synthesis recombination and mirrored-region handling mirror
    :class:`~repro.wire.parser.Parser` exactly — the test suite fuzzes
    byte- and structure-identity against whole-message ``parse()`` for every
    registry protocol under 0–4 obfuscation passes.  The difference is purely
    operational: any read that outruns the stream suspends the whole descent
    (by yielding :data:`NEED_MORE` up through the generator stack) instead of
    failing, and resumes in place when more bytes are fed.
    """

    def __init__(self, graph: FormatGraph, *, plan: CodecPlan | None = None,
                 max_declared_bytes: int | None = None):
        self.graph = graph
        self.plan = plan if plan is not None else plan_for(graph)
        self._ref_targets = self.plan.ref_targets
        #: budget on *declared* lengths — checked against the declaration
        #: itself, before any byte is awaited (let alone buffered) toward it.
        self.max_declared_bytes = max_declared_bytes

    def _check_declared(self, length: int, node: str) -> int:
        if (self.max_declared_bytes is not None
                and length > self.max_declared_bytes):
            raise BudgetExceeded(
                "declared_bytes", limit=self.max_declared_bytes,
                actual=length, node=node,
            )
        return length

    # -- the per-message machine ----------------------------------------------

    def parse_message(self, window: StreamWindow):
        """Generator parsing one message starting at ``window.cursor``.

        Yields :data:`NEED_MORE` while suspended; returns ``(message, end)``
        where ``end`` is the absolute offset one past the message's last byte.
        """
        context = _ParseContext()
        yield from self._parse_node(self.graph.root, window, context)
        return context.message, window.cursor

    # -- node dispatch (generator mirror of Parser._parse_node) ---------------

    def _parse_node(self, node: Node, win: StreamWindow, ctx: _ParseContext,
                    *, prebounded: bool = False):
        if node.mirrored and not prebounded:
            region = yield from self._extract_region(node, win, ctx)
            inner = StreamWindow(StreamSource.of(region[::-1]), 0, len(region))
            yield from self._parse_node(node, inner, ctx, prebounded=True)
            return
        if node.type is NodeType.TERMINAL:
            value = yield from self._parse_terminal(node, win, ctx,
                                                    prebounded=prebounded)
            self._store_terminal(node, value, ctx)
            return
        inner, strict = self._composite_window(node, win, ctx, prebounded)
        if node.type is NodeType.SEQUENCE:
            yield from self._parse_sequence(node, inner, ctx)
        elif node.type is NodeType.OPTIONAL:
            yield from self._parse_optional(node, inner, ctx)
        elif node.type in (NodeType.REPETITION, NodeType.TABULAR):
            yield from self._parse_repetition(node, inner, ctx,
                                              prebounded=prebounded)
        else:  # pragma: no cover - exhaustive enum
            raise ParseError(f"unknown node type {node.type!r}", node=node.name)
        if strict and not inner.bounded_at_end():
            raise ParseError(
                f"{inner.bounded_remaining()} byte(s) left inside bounded node",
                node=node.name,
                offset=inner.cursor,
            )

    def _composite_window(self, node: Node, win: StreamWindow, ctx: _ParseContext,
                          prebounded: bool) -> tuple[StreamWindow, bool]:
        if prebounded:
            return win, True
        if node.boundary.kind is BoundaryKind.LENGTH:
            length = self._check_declared(
                ctx.ref_value(node.boundary.ref, node=node.name),  # type: ignore[arg-type]
                node.name,
            )
            return win.subwindow(length), True
        return win, False

    # -- terminals ------------------------------------------------------------

    def _parse_terminal(self, node: Node, win: StreamWindow, ctx: _ParseContext,
                        *, prebounded: bool = False):
        raw = yield from self._terminal_bytes(node, win, ctx, prebounded)
        if node.is_pad:
            return None
        return self.plan.terminals[node.name].decode(raw)

    def _terminal_bytes(self, node: Node, win: StreamWindow, ctx: _ParseContext,
                        prebounded: bool):
        if prebounded:
            return (yield from win.read_rest())
        kind = node.boundary.kind
        try:
            if kind is BoundaryKind.FIXED:
                return (yield from win.read(node.boundary.size or 0))
            if kind is BoundaryKind.DELIMITED:
                return (yield from win.read_until(node.boundary.delimiter or b""))
            if kind is BoundaryKind.LENGTH:
                length = self._check_declared(
                    ctx.ref_value(node.boundary.ref, node=node.name),  # type: ignore[arg-type]
                    node.name,
                )
                return (yield from win.read(length))
            return (yield from win.read_rest())
        except StreamError:
            raise
        except ParseError as exc:
            raise ParseError(str(exc), node=node.name, offset=win.cursor) from exc

    def _store_terminal(self, node: Node, value: Value | None,
                        ctx: _ParseContext) -> None:
        if node.is_pad or value is None:
            return
        ctx.raw_values[node.name] = value
        if node.origin is not None:
            self.plan.origin_set[node.name](ctx.data, ctx.index_stack, value)

    # -- region extraction for mirrored nodes ----------------------------------

    def _extract_region(self, node: Node, win: StreamWindow, ctx: _ParseContext):
        kind = node.boundary.kind
        if kind is BoundaryKind.FIXED:
            return (yield from win.read(node.boundary.size or 0))
        if kind is BoundaryKind.LENGTH:
            return (yield from win.read(self._check_declared(
                ctx.ref_value(node.boundary.ref, node=node.name),  # type: ignore[arg-type]
                node.name,
            )))
        if kind is BoundaryKind.END:
            return (yield from win.read_rest())
        size = self.plan.static_sizes.get(node.name)
        if size is None:
            raise ParseError(
                "mirrored node has no parse-time determinable extent", node=node.name
            )
        return (yield from win.read(size))

    # -- composites -----------------------------------------------------------

    def _parse_sequence(self, node: Node, win: StreamWindow, ctx: _ParseContext):
        if node.synthesis is not None:
            yield from self._parse_synthesis(node, win, ctx)
            return
        for child in node.children:
            if child.type is NodeType.TERMINAL and not child.mirrored:
                value = yield from self._parse_terminal(child, win, ctx)
                self._store_terminal(child, value, ctx)
            else:
                yield from self._parse_node(child, win, ctx)

    def _parse_synthesis(self, node: Node, win: StreamWindow, ctx: _ParseContext):
        shares: list[Value] = []
        for child in node.children:
            if child.name in self._ref_targets:
                yield from self._parse_node(child, win, ctx)
                continue
            shares.append((yield from self._parse_split_child(child, win, ctx)))
        if len(shares) != 2:
            raise ParseError(
                f"synthesis node {node.name!r} expected two value children, "
                f"found {len(shares)}"
            )
        combined = node.synthesis.combine(shares[0], shares[1])  # type: ignore[union-attr]
        if node.origin is None:
            raise ParseError(f"synthesis node {node.name!r} has no logical origin")
        self.plan.origin_set[node.name](ctx.data, ctx.index_stack, combined)

    def _parse_split_child(self, child: Node, win: StreamWindow, ctx: _ParseContext):
        if child.mirrored:
            region = yield from self._extract_region(child, win, ctx)
            inner = StreamWindow(StreamSource.of(region[::-1]), 0, len(region))
            value = yield from self._parse_terminal(child, inner, ctx, prebounded=True)
        else:
            value = yield from self._parse_terminal(child, win, ctx)
        if value is None:  # pragma: no cover - split children are never pads
            raise ParseError(f"split child {child.name!r} produced no value")
        ctx.raw_values[child.name] = value
        return value

    def _parse_optional(self, node: Node, win: StreamWindow, ctx: _ParseContext):
        present = yield from self._optional_present(node, win, ctx)
        if not present:
            return
        yield from self._parse_node(node.children[0], win, ctx)

    def _optional_present(self, node: Node, win: StreamWindow, ctx: _ParseContext):
        if node.presence_ref is not None:
            if node.presence_ref not in ctx.raw_values:
                raise ParseError(
                    f"presence reference {node.presence_ref!r} has not been parsed yet",
                    node=node.name,
                )
            return ctx.raw_values[node.presence_ref] == node.presence_value
        at_end = yield from win.at_end()
        return not at_end

    def _parse_repetition(self, node: Node, win: StreamWindow, ctx: _ParseContext,
                          *, prebounded: bool = False):
        if node.origin is None:
            raise ParseError(f"repeated node {node.name!r} has no logical origin")
        self.plan.list_init[node.name](ctx.data, ctx.index_stack)
        child = node.children[0]
        kind = node.boundary.kind

        if kind is BoundaryKind.COUNTER:
            count = ctx.ref_value(node.boundary.ref, node=node.name)  # type: ignore[arg-type]
            for index in range(count):
                ctx.index_stack.append(index)
                try:
                    yield from self._parse_node(child, win, ctx)
                finally:
                    ctx.index_stack.pop()
            return
        if kind is BoundaryKind.DELIMITED:
            terminator = node.boundary.delimiter or b""
            index = 0
            while True:
                at_end = yield from win.at_end()
                if at_end:
                    return
                terminated = yield from win.starts_with(terminator)
                if terminated:
                    yield from win.read(len(terminator))
                    return
                ctx.index_stack.append(index)
                try:
                    yield from self._parse_node(child, win, ctx)
                finally:
                    ctx.index_stack.pop()
                index += 1
        # LENGTH / END / prebounded: consume the window.
        index = 0
        while True:
            at_end = yield from win.at_end()
            if at_end:
                return
            ctx.index_stack.append(index)
            try:
                yield from self._parse_node(child, win, ctx)
            finally:
                ctx.index_stack.pop()
            index += 1


# ---------------------------------------------------------------------------
# the stream driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DecodedMessage:
    """One message framed off a stream: logical content plus wire extent."""

    message: Message
    #: exact wire bytes of this message (``stream[start:end]``).
    raw: bytes
    #: absolute stream offset of the first byte.
    start: int
    #: absolute stream offset one past the last byte.
    end: int

    def __len__(self) -> int:
        return self.end - self.start


class StreamingDecoder:
    """Feeds arbitrary chunks; emits complete messages as they frame.

    ``feed()`` returns the messages completed by that chunk (zero or more —
    one chunk can complete several back-to-back messages, or none).
    ``feed_eof()`` flushes the tail: a message suspended on an END boundary
    completes, a message cut mid-field raises :class:`StreamError`.
    ``needs_more`` reports whether a message is currently suspended.

    ``budget`` is any object exposing ``max_stream_bytes`` /
    ``max_declared_bytes`` / ``max_steps_per_feed`` attributes (``None``
    meaning unlimited) — typically a
    :class:`~repro.net.governance.ResourceBudget`, duck-typed so the wire
    layer stays independent of the net layer.  Violations raise
    :class:`~repro.core.errors.BudgetExceeded` and latch the decoder dead
    like any other stream failure.
    """

    def __init__(self, graph: FormatGraph, *, plan: CodecPlan | None = None,
                 budget=None):
        self.parser = StreamingParser(
            graph, plan=plan,
            max_declared_bytes=getattr(budget, "max_declared_bytes", None),
        )
        self._max_stream = getattr(budget, "max_stream_bytes", None)
        self._max_steps = getattr(budget, "max_steps_per_feed", None)
        self._source = StreamSource()
        self._machine = None
        self._start = 0
        self._decoded = 0
        self._steps = 0
        # Prefix of the in-flight message already released from the source
        # (mid-message trim): DecodedMessage.raw still needs those bytes.
        self._raw_parts = bytearray()
        self._failed: StreamError | None = None

    # -- state ----------------------------------------------------------------

    @property
    def needs_more(self) -> bool:
        """True when a partially parsed message is waiting for bytes."""
        return self._machine is not None

    @property
    def buffered(self) -> int:
        """Number of received-but-unconsumed bytes."""
        return self._source.length - self._start

    @property
    def decoded_count(self) -> int:
        """Number of messages completed so far."""
        return self._decoded

    @property
    def at_eof(self) -> bool:
        return self._source.eof

    # -- feeding --------------------------------------------------------------

    def feed(self, data: bytes) -> list[DecodedMessage]:
        """Buffer ``data`` and return every message it completed."""
        self._check_failed()
        if (self._max_stream is not None
                and self.buffered + len(data) > self._max_stream):
            raise self._fail(BudgetExceeded(
                "stream_bytes", limit=self._max_stream,
                actual=self.buffered + len(data),
                message_index=self._decoded,
            ))
        self._steps = 0
        self._source.feed(data)
        return self._pump()

    def feed_eof(self) -> list[DecodedMessage]:
        """Signal end-of-stream and return the flushed tail messages."""
        self._check_failed()
        self._steps = 0
        if not self._source.eof:
            self._source.feed_eof()
        completed = self._pump()
        if self._machine is not None:  # pragma: no cover - machines resolve at EOF
            raise self._fail(StreamError(
                "stream ended inside a message", offset=self._source.length,
                message_index=self._decoded,
            ))
        return completed

    # -- the pump --------------------------------------------------------------

    def _pump(self) -> list[DecodedMessage]:
        completed: list[DecodedMessage] = []
        source = self._source
        while True:
            if self._machine is None:
                if source.length <= self._start:
                    break  # no unconsumed byte: clean inter-message point
                window = StreamWindow(source, self._start, None)
                self._machine = self.parser.parse_message(window)
            try:
                self._machine.send(None)
            except StopIteration as stop:
                message, end = stop.value
                if self._raw_parts:
                    raw = bytes(self._raw_parts) + source.slice(source.base, end)
                    self._raw_parts.clear()
                else:
                    raw = source.slice(self._start, end)
                completed.append(DecodedMessage(
                    message=message, raw=raw, start=self._start, end=end,
                ))
                self._machine = None
                self._start = end
                self._decoded += 1
                source.release(end)
                self._steps += 1
                if self._max_steps is not None and self._steps > self._max_steps:
                    raise self._fail(BudgetExceeded(
                        "decode_steps", limit=self._max_steps,
                        actual=self._steps, message_index=self._decoded,
                    ))
                continue
            except BudgetExceeded as exc:
                # Keep the typed subclass (and its resource/limit/actual
                # attribution) intact instead of re-wrapping it away.
                if exc.message_index is None:
                    exc.message_index = self._decoded
                raise self._fail(exc)
            except StreamError as exc:
                wrapped = StreamError(str(exc), message_index=self._decoded)
                wrapped.offset, wrapped.node = exc.offset, exc.node
                raise self._fail(wrapped) from exc
            except ParseError as exc:
                wrapped = StreamError(
                    f"undecodable bytes on stream: {exc}",
                    message_index=self._decoded,
                )
                wrapped.offset, wrapped.node = exc.offset, exc.node
                raise self._fail(wrapped) from exc
            # The machine yielded NEED_MORE: drop the consumed prefix of the
            # in-flight message before waiting, so a stalled multi-record
            # feed cannot pin the whole stream history in memory.
            self._trim()
            break
        return completed

    def _trim(self) -> None:
        """Release bytes a suspended parse can no longer re-read.

        ``source.last_wait`` is the cursor of the deepest suspended window —
        the minimum offset any resumed read will touch (parent cursors sit at
        or past their child's end, and delimiter re-scans never start before
        the cursor).  Everything before it is retained only for
        :class:`DecodedMessage.raw`, so it moves into ``_raw_parts``.
        """
        source = self._source
        safe = source.last_wait
        if safe > source.base:
            self._raw_parts += source.slice(source.base, safe)
            source.release(safe)

    def _fail(self, error: StreamError) -> StreamError:
        self._failed = error
        self._machine = None
        return error

    def _check_failed(self) -> None:
        # Re-raise the *original* stored error: callers diagnosing a dead
        # stream rely on message_index/offset/node surviving repeated feeds.
        if self._failed is not None:
            raise self._failed


def decode_stream(graph: FormatGraph, chunks, *, plan: CodecPlan | None = None
                  ) -> list[DecodedMessage]:
    """Decode an iterable of chunks into framed messages (EOF at exhaustion)."""
    decoder = StreamingDecoder(graph, plan=plan)
    decoded: list[DecodedMessage] = []
    for chunk in chunks:
        decoded.extend(decoder.feed(chunk))
    decoded.extend(decoder.feed_eof())
    return decoded


# ---------------------------------------------------------------------------
# framability analysis
# ---------------------------------------------------------------------------


def stream_greedy_nodes(graph: FormatGraph) -> tuple[str, ...]:
    """Names of the nodes that make ``graph`` unframable on a bare stream.

    A node is *stream-greedy* when parsing it consults the end of the
    top-level (stream-extent) window: an END-bounded read swallows every
    byte to end-of-stream, and an Optional without a presence reference
    treats the next message's bytes as its own content.  Nodes inside a
    LENGTH-bounded region are never greedy — the region supplies the end.
    """
    greedy: list[str] = []

    def visit(node: Node, bounded: bool) -> None:
        if node.mirrored and not bounded:
            if node.boundary.kind is BoundaryKind.END:
                greedy.append(node.name)
            # The extracted region bounds the sub-parse regardless.
            for child in node.children:
                visit(child, True)
            return
        if node.type is NodeType.TERMINAL:
            if not bounded and node.boundary.kind in (BoundaryKind.END,
                                                      BoundaryKind.DELEGATED):
                greedy.append(node.name)
            return
        child_bounded = bounded or node.boundary.kind is BoundaryKind.LENGTH
        if node.type is NodeType.OPTIONAL:
            if not child_bounded and node.presence_ref is None:
                greedy.append(node.name)
        elif node.type in (NodeType.REPETITION, NodeType.TABULAR):
            if (not child_bounded
                    and node.boundary.kind not in (BoundaryKind.COUNTER,
                                                   BoundaryKind.DELIMITED)):
                greedy.append(node.name)
        for child in node.children:
            visit(child, child_bounded)

    visit(graph.root, False)
    return tuple(greedy)


def is_self_framing(graph: FormatGraph) -> bool:
    """True when back-to-back messages of ``graph`` frame on a bare stream."""
    return not stream_greedy_nodes(graph)
