"""The wire parser.

The parser walks the same (possibly obfuscated) message format graph as the
serializer and rebuilds the *logical* message from the obfuscated byte string,
undoing every transformation on the fly:

* codec chains are inverted after decoding each terminal value,
* Split* sequences recombine their two wire sub-values,
* ReadFromEnd regions are extracted, byte-reversed and re-parsed,
* padding terminals are read and discarded,
* derived length/counter fields are decoded and used to delimit the nodes that
  reference them but are not stored in the logical message.
"""

from __future__ import annotations

from ..core.boundary import BoundaryKind
from ..core.errors import ParseError
from ..core.graph import FormatGraph
from ..core.message import Message
from ..core.node import Node, NodeType
from ..core.values import Value
from .plan import CodecPlan, plan_for
from .window import Window


class _ParseContext:
    """Mutable state shared by one parsing run."""

    __slots__ = ("message", "data", "raw_values", "index_stack")

    def __init__(self) -> None:
        #: the logical message under construction; ``data`` is its live
        #: underlying dictionary, navigated by the plan's compiled accessors.
        self.data: dict = {}
        self.message = Message(self.data)
        #: decoded value of every terminal, keyed by node name; used to resolve
        #: LENGTH/COUNTER boundaries and Optional presence conditions.  Within a
        #: repetition element the latest value is always the one belonging to the
        #: current element because references never cross element boundaries.
        self.raw_values: dict[str, Value] = {}
        self.index_stack: list[int] = []

    def ref_value(self, ref: str, *, node: str) -> int:
        """Integer value of a previously parsed length/counter terminal."""
        if ref not in self.raw_values:
            raise ParseError(
                f"reference {ref!r} has not been parsed yet", node=node
            )
        value = self.raw_values[ref]
        if not isinstance(value, int):
            raise ParseError(f"reference {ref!r} is not an integer", node=node)
        return value


class Parser:
    """Parses (obfuscated) wire messages back into logical messages."""

    def __init__(self, graph: FormatGraph, *, plan: CodecPlan | None = None):
        self.graph = graph
        #: compiled execution plan; resolved through the shared plan cache so
        #: that repeated construction over the same graph does not re-walk it.
        self.plan = plan if plan is not None else plan_for(graph)
        self._ref_targets = self.plan.ref_targets

    # -- public API -----------------------------------------------------------

    def parse(self, data: bytes, *, strict: bool = True) -> Message:
        """Parse ``data`` into the logical message it encodes.

        With ``strict=True`` (the default) trailing unconsumed bytes raise a
        :class:`ParseError`.
        """
        window = Window(bytes(data))
        context = _ParseContext()
        self._parse_node(self.graph.root, window, context)
        if strict and not window.at_end():
            raise ParseError(
                f"{window.remaining()} trailing byte(s) after the message",
                offset=window.cursor,
            )
        return context.message

    # -- node dispatch --------------------------------------------------------

    def _parse_node(self, node: Node, win: Window, ctx: _ParseContext,
                    *, prebounded: bool = False) -> None:
        if node.mirrored and not prebounded:
            region = self._extract_region(node, win, ctx)
            self._parse_node(node, Window(region[::-1]), ctx, prebounded=True)
            return
        if node.type is NodeType.TERMINAL:
            value = self._parse_terminal(node, win, ctx, prebounded=prebounded)
            self._store_terminal(node, value, ctx)
            return
        inner, strict = self._composite_window(node, win, ctx, prebounded)
        if node.type is NodeType.SEQUENCE:
            self._parse_sequence(node, inner, ctx)
        elif node.type is NodeType.OPTIONAL:
            self._parse_optional(node, inner, ctx)
        elif node.type in (NodeType.REPETITION, NodeType.TABULAR):
            self._parse_repetition(node, inner, ctx, prebounded=prebounded)
        else:  # pragma: no cover - exhaustive enum
            raise ParseError(f"unknown node type {node.type!r}", node=node.name)
        if strict and not inner.at_end():
            raise ParseError(
                f"{inner.remaining()} byte(s) left inside bounded node",
                node=node.name,
                offset=inner.cursor,
            )

    def _composite_window(self, node: Node, win: Window, ctx: _ParseContext,
                          prebounded: bool) -> tuple[Window, bool]:
        """Create the byte window of a composite node and tell whether it is strict."""
        if prebounded:
            return win, True
        if node.boundary.kind is BoundaryKind.LENGTH:
            length = ctx.ref_value(node.boundary.ref, node=node.name)  # type: ignore[arg-type]
            return win.subwindow(length), True
        return win, False

    # -- terminals ------------------------------------------------------------

    def _parse_terminal(self, node: Node, win: Window, ctx: _ParseContext,
                        *, prebounded: bool = False) -> Value | None:
        raw = self._terminal_bytes(node, win, ctx, prebounded)
        if node.is_pad:
            return None
        return self.plan.terminals[node.name].decode(raw)

    def _terminal_bytes(self, node: Node, win: Window, ctx: _ParseContext,
                        prebounded: bool) -> bytes:
        if prebounded:
            return win.read_rest()
        kind = node.boundary.kind
        try:
            if kind is BoundaryKind.FIXED:
                return win.read(node.boundary.size or 0)
            if kind is BoundaryKind.DELIMITED:
                return win.read_until(node.boundary.delimiter or b"")
            if kind is BoundaryKind.LENGTH:
                length = ctx.ref_value(node.boundary.ref, node=node.name)  # type: ignore[arg-type]
                return win.read(length)
            return win.read_rest()
        except ParseError as exc:
            raise ParseError(str(exc), node=node.name, offset=win.cursor) from exc

    def _store_terminal(self, node: Node, value: Value | None, ctx: _ParseContext) -> None:
        if node.is_pad or value is None:
            return
        ctx.raw_values[node.name] = value
        if node.origin is not None:
            self.plan.origin_set[node.name](ctx.data, ctx.index_stack, value)

    # -- region extraction for mirrored nodes ----------------------------------

    def _extract_region(self, node: Node, win: Window, ctx: _ParseContext) -> bytes:
        kind = node.boundary.kind
        if kind is BoundaryKind.FIXED:
            return win.read(node.boundary.size or 0)
        if kind is BoundaryKind.LENGTH:
            return win.read(ctx.ref_value(node.boundary.ref, node=node.name))  # type: ignore[arg-type]
        if kind is BoundaryKind.END:
            return win.read_rest()
        size = self.plan.static_sizes.get(node.name)
        if size is None:
            raise ParseError(
                "mirrored node has no parse-time determinable extent", node=node.name
            )
        return win.read(size)

    # -- composites -----------------------------------------------------------

    def _parse_sequence(self, node: Node, win: Window, ctx: _ParseContext) -> None:
        if node.synthesis is not None:
            self._parse_synthesis(node, win, ctx)
            return
        for child in node.children:
            # Plain terminals skip the _parse_node dispatch: one call less on
            # the most common child shape.
            if child.type is NodeType.TERMINAL and not child.mirrored:
                self._store_terminal(child, self._parse_terminal(child, win, ctx), ctx)
            else:
                self._parse_node(child, win, ctx)

    def _parse_synthesis(self, node: Node, win: Window, ctx: _ParseContext) -> None:
        shares: list[Value] = []
        for child in node.children:
            if child.name in self._ref_targets:
                # Derived length prefix created by SplitCat on a variable-size
                # terminal: parsed as a regular terminal to feed later lookups.
                self._parse_node(child, win, ctx)
                continue
            shares.append(self._parse_split_child(child, win, ctx))
        if len(shares) != 2:
            raise ParseError(
                f"synthesis node {node.name!r} expected two value children, "
                f"found {len(shares)}"
            )
        combined = node.synthesis.combine(shares[0], shares[1])  # type: ignore[union-attr]
        if node.origin is None:
            raise ParseError(f"synthesis node {node.name!r} has no logical origin")
        self.plan.origin_set[node.name](ctx.data, ctx.index_stack, combined)

    def _parse_split_child(self, child: Node, win: Window, ctx: _ParseContext) -> Value:
        if child.mirrored:
            region = self._extract_region(child, win, ctx)
            value = self._parse_terminal(child, Window(region[::-1]), ctx, prebounded=True)
        else:
            value = self._parse_terminal(child, win, ctx)
        if value is None:  # pragma: no cover - split children are never pads
            raise ParseError(f"split child {child.name!r} produced no value")
        ctx.raw_values[child.name] = value
        return value

    def _parse_optional(self, node: Node, win: Window, ctx: _ParseContext) -> None:
        if not self._optional_present(node, win, ctx):
            return
        self._parse_node(node.children[0], win, ctx)

    def _optional_present(self, node: Node, win: Window, ctx: _ParseContext) -> bool:
        if node.presence_ref is not None:
            if node.presence_ref not in ctx.raw_values:
                raise ParseError(
                    f"presence reference {node.presence_ref!r} has not been parsed yet",
                    node=node.name,
                )
            return ctx.raw_values[node.presence_ref] == node.presence_value
        return not win.at_end()

    def _parse_repetition(self, node: Node, win: Window, ctx: _ParseContext,
                          *, prebounded: bool = False) -> None:
        if node.origin is None:
            raise ParseError(f"repeated node {node.name!r} has no logical origin")
        self.plan.list_init[node.name](ctx.data, ctx.index_stack)
        child = node.children[0]
        kind = node.boundary.kind

        def parse_element(index: int) -> None:
            ctx.index_stack.append(index)
            try:
                self._parse_node(child, win, ctx)
            finally:
                ctx.index_stack.pop()

        if kind is BoundaryKind.COUNTER:
            count = ctx.ref_value(node.boundary.ref, node=node.name)  # type: ignore[arg-type]
            for index in range(count):
                parse_element(index)
            return
        if kind is BoundaryKind.LENGTH and not prebounded:
            # The enclosing window was already restricted by _composite_window.
            pass
        if kind is BoundaryKind.DELIMITED:
            terminator = node.boundary.delimiter or b""
            index = 0
            while not win.at_end() and not win.starts_with(terminator):
                parse_element(index)
                index += 1
            if win.starts_with(terminator):
                win.skip(len(terminator))
            return
        # LENGTH / END / prebounded: consume the window.
        index = 0
        while not win.at_end():
            parse_element(index)
            index += 1


def parse(graph: FormatGraph, data: bytes, *, strict: bool = True) -> Message:
    """Module-level convenience wrapper around :class:`Parser`.

    Routed through the shared plan cache: the graph is compiled once and every
    subsequent call executes against the cached :class:`CodecPlan` instead of
    re-scanning ``graph.nodes()``.
    """
    return Parser(graph, plan=plan_for(graph)).parse(data, strict=strict)
