"""Byte windows used by the wire parser.

A :class:`Window` is a bounded, cursor-based view over a byte buffer.  Parsing
a node whose extent is known up-front (LENGTH boundary, mirrored region, ...)
creates a sub-window so that END boundaries and repetitions naturally stop at
the right place.
"""

from __future__ import annotations

from ..core.errors import ParseError


class Window:
    """A bounded cursor over a byte buffer."""

    __slots__ = ("_data", "_start", "_end", "_cursor")

    def __init__(self, data: bytes, start: int = 0, end: int | None = None):
        self._data = data
        self._start = start
        self._end = len(data) if end is None else end
        if not 0 <= self._start <= self._end <= len(data):
            raise ParseError(
                f"invalid window bounds [{self._start}, {self._end}) over {len(data)} bytes"
            )
        self._cursor = start

    # -- inspection -----------------------------------------------------------

    @property
    def cursor(self) -> int:
        """Absolute offset of the next unread byte."""
        return self._cursor

    @property
    def end(self) -> int:
        """Absolute offset one past the last byte of the window."""
        return self._end

    def remaining(self) -> int:
        """Number of unread bytes left in the window."""
        return self._end - self._cursor

    def at_end(self) -> bool:
        """True when no byte remains."""
        return self._cursor >= self._end

    def peek(self, count: int) -> bytes:
        """Return up to ``count`` bytes without consuming them."""
        end = self._cursor + count
        if end > self._end:
            end = self._end
        return self._data[self._cursor : end]

    def starts_with(self, prefix: bytes) -> bool:
        """True when the unread bytes start with ``prefix``.

        Compared in place with :meth:`bytes.startswith` bounds — this runs
        once per element in every delimited repetition loop, so it must not
        allocate a slice per check.
        """
        return self._data.startswith(prefix, self._cursor, self._end)

    # -- consumption ----------------------------------------------------------

    def read(self, count: int) -> bytes:
        """Consume exactly ``count`` bytes."""
        if count < 0:
            raise ParseError(f"cannot read a negative number of bytes ({count})")
        cursor = self._cursor
        end = cursor + count
        if end > self._end:
            raise ParseError(
                f"unexpected end of data: needed {count} byte(s), "
                f"{self._end - cursor} available",
                offset=cursor,
            )
        self._cursor = end
        return self._data[cursor:end]

    def read_rest(self) -> bytes:
        """Consume every remaining byte of the window."""
        return self.read(self._end - self._cursor)

    def read_until(self, delimiter: bytes) -> bytes:
        """Consume bytes up to and including ``delimiter``; return the bytes before it."""
        if not delimiter:
            raise ParseError("cannot search for an empty delimiter")
        position = self._data.find(delimiter, self._cursor, self._end)
        if position < 0:
            raise ParseError(
                f"delimiter {delimiter!r} not found", offset=self._cursor
            )
        value = self._data[self._cursor : position]
        self._cursor = position + len(delimiter)
        return value

    def skip(self, count: int) -> None:
        """Discard ``count`` bytes."""
        self.read(count)

    def subwindow(self, length: int) -> "Window":
        """Create a window over the next ``length`` bytes and consume them from this one."""
        if length < 0:
            raise ParseError(f"negative sub-window length ({length})")
        if self.remaining() < length:
            raise ParseError(
                f"sub-window of {length} byte(s) exceeds the {self.remaining()} "
                f"remaining byte(s)",
                offset=self._cursor,
            )
        child = Window(self._data, self._cursor, self._cursor + length)
        self._cursor += length
        return child

    def __repr__(self) -> str:
        return f"Window(cursor={self._cursor}, end={self._end}, remaining={self.remaining()})"
