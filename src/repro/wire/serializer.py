"""The wire serializer.

The serializer walks a (possibly obfuscated) message format graph depth-first
and builds the obfuscated byte string directly from the *logical* message, so
the non-obfuscated representation never exists as a contiguous buffer — this
is the Observation counter-measure of the paper (Section VI).

Transformations are executed on the fly during the traversal:

* aggregation transformations (ConstAdd/Sub/Xor) are applied through each
  terminal's codec chain,
* Split* nodes draw a random share and emit the two wire sub-values,
* ReadFromEnd mirrors the pieces of the affected subtree,
* PadInsert terminals draw random bytes,
* derived length fields are emitted as fixed-width slots and patched once the
  covered region has been measured (two-pass assembly).

The traversal executes against a compiled :class:`~repro.wire.plan.CodecPlan`
(length/counter source maps, fused codec callables, slot templates) and
appends into one shared :class:`PieceList` accumulator instead of merging a
piece list per node, which keeps the per-message cost linear in the number of
emitted pieces.
"""

from __future__ import annotations

from random import Random

from ..core.boundary import BoundaryKind
from ..core.errors import MessageError, SerializationError
from ..core.fieldpath import FieldPath
from ..core.graph import FormatGraph
from ..core.message import Message
from ..core.node import Node, NodeType
from .pieces import LengthSlot, PieceList
from .plan import CodecPlan, plan_for
from .spans import FieldSpan


class _SerializeContext:
    """Mutable state shared by one serialization run."""

    __slots__ = (
        "message",
        "data",
        "rng",
        "index_stack",
        "context",
        "region_lengths",
        "plan",
        "merge_delimiters",
    )

    def __init__(self, plan: CodecPlan, message: Message, rng: Random,
                 *, merge_delimiters: bool = False):
        self.message = message
        #: live underlying dictionary of the message, navigated by the plan's
        #: compiled accessors.
        self.data = message.raw
        #: when True (plain serialize(), no span reporting) a terminal's value
        #: and its delimiter are emitted as one chunk: the assembled bytes are
        #: identical — mirroring reverses the concatenation exactly like the
        #: two chunks in reverse order — but span extents would differ, so the
        #: span-reporting path keeps them separate.
        self.merge_delimiters = merge_delimiters
        self.rng = rng
        self.index_stack: list[int] = []
        #: tuple mirror of ``index_stack``, maintained on push/pop so that
        #: per-node region keys do not re-tuple the stack.
        self.context: tuple[int, ...] = ()
        #: serialized byte length of every node instance, keyed by
        #: (node name, repetition index context)
        self.region_lengths: dict[tuple[str, tuple[int, ...]], int] = {}
        #: compiled length-slot templates and counter source map of the graph;
        #: precomputed once per graph instead of rebuilt per serialize() call.
        self.plan = plan

    def resolve(self, path: FieldPath) -> FieldPath:
        """Bind the unbound repetition indices of ``path`` to the current stack."""
        return path.resolve(self.index_stack)

    def push_index(self, index: int) -> None:
        self.index_stack.append(index)
        self.context += (index,)

    def pop_index(self) -> None:
        self.index_stack.pop()
        self.context = self.context[:-1]


class Serializer:
    """Serializes logical messages against a message format graph."""

    def __init__(self, graph: FormatGraph, *, rng: Random | None = None,
                 plan: CodecPlan | None = None):
        self.graph = graph
        #: compiled execution plan; resolved through the shared plan cache so
        #: that repeated construction over the same graph does not re-walk it.
        self.plan = plan if plan is not None else plan_for(graph)
        self._rng = rng if rng is not None else Random(0)

    # -- public API -----------------------------------------------------------

    def serialize(self, message: Message | dict) -> bytes:
        """Serialize ``message`` into its (obfuscated) wire representation."""
        pieces, context = self._build_pieces(message, merge_delimiters=True)
        data, _ = pieces.assemble(context.region_lengths, with_spans=False)
        return data

    def serialize_with_spans(self, message: Message | dict) -> tuple[bytes, list[FieldSpan]]:
        """Serialize and also return the byte extents of every emitted wire field."""
        pieces, context = self._build_pieces(message, merge_delimiters=False)
        data, raw_spans = pieces.assemble(context.region_lengths)
        spans = [
            FieldSpan(node=node, origin=origin, start=start, end=end)
            for node, origin, start, end in raw_spans
            if node is not None
        ]
        return data, spans

    def _build_pieces(self, message: Message | dict, *,
                      merge_delimiters: bool) -> tuple[PieceList, _SerializeContext]:
        logical = message if isinstance(message, Message) else Message.from_dict(message)
        context = _SerializeContext(self.plan, logical, self._rng,
                                    merge_delimiters=merge_delimiters)
        out = PieceList()
        self._serialize_node(self.graph.root, context, out)
        return out, context

    # -- node dispatch --------------------------------------------------------

    def _serialize_node(self, node: Node, ctx: _SerializeContext, out: PieceList) -> None:
        # Only LENGTH-bounded nodes ever have their measured region length
        # read back (when their slot is resolved); every other node skips the
        # bookkeeping entirely.
        measured = node.name in ctx.plan.length_targets
        if measured or node.mirrored:
            mark = len(out.pieces)
            length_before = out.byte_length()
        node_type = node.type
        if node_type is NodeType.TERMINAL:
            self._serialize_terminal(node, ctx, out)
        elif node_type is NodeType.SEQUENCE:
            self._serialize_sequence(node, ctx, out)
        elif node_type is NodeType.OPTIONAL:
            self._serialize_optional(node, ctx, out)
        elif node_type in (NodeType.REPETITION, NodeType.TABULAR):
            self._serialize_repetition(node, ctx, out)
        else:  # pragma: no cover - exhaustive enum
            raise SerializationError(f"unknown node type {node.type!r}")
        if node.mirrored:
            out.mirror_from(mark)
        if measured:
            ctx.region_lengths[(node.name, ctx.context)] = out.byte_length() - length_before

    # -- terminals ------------------------------------------------------------

    def _serialize_terminal(self, node: Node, ctx: _SerializeContext, out: PieceList,
                            value_override: object = None) -> None:
        if node.is_pad:
            size = node.boundary.size or 0
            out.add_bytes(bytes(ctx.rng.randrange(256) for _ in range(size)),
                          node=node.name, origin=None)
            return
        if value_override is None:
            derived = ctx.plan.derived_fields.get(node.name)
            if derived is not None:
                if type(derived) is LengthSlot:
                    out.add_slot(
                        LengthSlot(
                            node=derived.node,
                            target=derived.target,
                            width=derived.width,
                            endian=derived.endian,
                            codec_chain=derived.codec_chain,
                            mirrored=False,
                            origin=derived.origin,
                            context=ctx.context,
                        )
                    )
                    return
                source_name, source_origin = derived
                if source_origin is None:
                    raise SerializationError(
                        f"counted node {source_name!r} carries no logical origin"
                    )
                count = self._list_length(
                    ctx.plan.counter_get[node.name](ctx.data, ctx.index_stack),
                    source_origin, ctx,
                )
                self._emit_value(node, count, ctx, out)
                return
        value = value_override
        if value is None:
            value = self._logical_value(node, ctx)
        self._emit_value(node, value, ctx, out)

    @staticmethod
    def _emit_value(node: Node, value: object, ctx: _SerializeContext,
                    out: PieceList) -> None:
        terminal = ctx.plan.terminals[node.name]
        encoded = terminal.encode(value)
        delimiter = terminal.delimiter
        if delimiter:
            if ctx.merge_delimiters:
                out.add_bytes(encoded + delimiter, node=node.name, origin=node.origin)
                return
            out.add_bytes(encoded, node=node.name, origin=node.origin)
            out.add_bytes(delimiter)
            return
        out.add_bytes(encoded, node=node.name, origin=node.origin)

    def _logical_value(self, node: Node, ctx: _SerializeContext) -> object:
        if node.origin is None:
            raise SerializationError(
                f"terminal {node.name!r} carries no logical origin and no derived value"
            )
        value = ctx.plan.origin_get[node.name](ctx.data, ctx.index_stack)
        if value is None:
            raise SerializationError(
                f"logical message is missing field {ctx.resolve(node.origin)} "
                f"(terminal {node.name!r})"
            )
        return value

    @staticmethod
    def _list_length(value: object, origin: FieldPath, ctx: _SerializeContext) -> int:
        if value is None:
            return 0
        if not isinstance(value, list):
            raise MessageError(f"field {ctx.resolve(origin)} is not a list")
        return len(value)

    # -- composites -----------------------------------------------------------

    def _serialize_sequence(self, node: Node, ctx: _SerializeContext, out: PieceList) -> None:
        if node.synthesis is not None:
            self._serialize_synthesis(node, ctx, out)
            return
        length_targets = ctx.plan.length_targets
        for child in node.children:
            # Plain terminals (no mirror, no measured region) skip the
            # _serialize_node bookkeeping: one call less on the most common
            # child shape.
            if (child.type is NodeType.TERMINAL and not child.mirrored
                    and child.name not in length_targets):
                self._serialize_terminal(child, ctx, out)
            else:
                self._serialize_node(child, ctx, out)

    def _serialize_synthesis(self, node: Node, ctx: _SerializeContext, out: PieceList) -> None:
        if node.origin is None:
            raise SerializationError(f"synthesis node {node.name!r} has no logical origin")
        value = ctx.plan.origin_get[node.name](ctx.data, ctx.index_stack)
        if value is None:
            raise SerializationError(
                f"logical message is missing field {ctx.resolve(node.origin)} "
                f"(synthesis node {node.name!r})"
            )
        shares = list(node.synthesis.split(value, ctx.rng, split_at=node.split_at))
        for child in node.children:
            if child.name in ctx.plan.length_slots:
                # Derived length prefix created by SplitCat on a variable-size
                # terminal: emitted as a regular length slot.
                self._serialize_node(child, ctx, out)
                continue
            if not shares:
                raise SerializationError(
                    f"synthesis node {node.name!r} has more value children than shares"
                )
            self._serialize_split_child(child, shares.pop(0), ctx, out)
        if shares:
            raise SerializationError(
                f"synthesis node {node.name!r} has fewer value children than shares"
            )

    def _serialize_split_child(self, child: Node, value: object,
                               ctx: _SerializeContext, out: PieceList) -> None:
        measured = child.name in ctx.plan.length_targets
        if measured or child.mirrored:
            mark = len(out.pieces)
            length_before = out.byte_length()
        self._serialize_terminal(child, ctx, out, value_override=value)
        if child.mirrored:
            out.mirror_from(mark)
        if measured:
            ctx.region_lengths[(child.name, ctx.context)] = out.byte_length() - length_before

    def _serialize_optional(self, node: Node, ctx: _SerializeContext, out: PieceList) -> None:
        if not self._optional_present(node, ctx):
            return
        self._serialize_node(node.children[0], ctx, out)

    def _optional_present(self, node: Node, ctx: _SerializeContext) -> bool:
        if node.presence_ref is not None:
            presence_get = ctx.plan.presence_get.get(node.name)
            if presence_get is not None:
                return presence_get(ctx.data, ctx.index_stack) == node.presence_value
        if node.origin is None:
            return False
        return ctx.plan.origin_get[node.name](ctx.data, ctx.index_stack) is not None

    def _serialize_repetition(self, node: Node, ctx: _SerializeContext, out: PieceList) -> None:
        if node.origin is None:
            raise SerializationError(f"repeated node {node.name!r} has no logical origin")
        count = self._list_length(
            ctx.plan.origin_get[node.name](ctx.data, ctx.index_stack), node.origin, ctx
        )
        child = node.children[0]
        for index in range(count):
            ctx.push_index(index)
            try:
                self._serialize_node(child, ctx, out)
            finally:
                ctx.pop_index()
        if node.type is NodeType.REPETITION and node.boundary.kind is BoundaryKind.DELIMITED:
            out.add_bytes(node.boundary.delimiter or b"")


def serialize(graph: FormatGraph, message: Message | dict, *, rng: Random | None = None) -> bytes:
    """Module-level convenience wrapper around :class:`Serializer`.

    Routed through the shared plan cache: the graph is compiled once and every
    subsequent call executes against the cached :class:`CodecPlan` instead of
    re-scanning ``graph.nodes()``.
    """
    return Serializer(graph, rng=rng, plan=plan_for(graph)).serialize(message)


def serialize_with_spans(
    graph: FormatGraph, message: Message | dict, *, rng: Random | None = None
) -> tuple[bytes, list[FieldSpan]]:
    """Serialize and return the emitted wire field spans (plan-cache backed)."""
    return Serializer(graph, rng=rng, plan=plan_for(graph)).serialize_with_spans(message)
