"""The wire serializer.

The serializer walks a (possibly obfuscated) message format graph depth-first
and builds the obfuscated byte string directly from the *logical* message, so
the non-obfuscated representation never exists as a contiguous buffer — this
is the Observation counter-measure of the paper (Section VI).

Transformations are executed on the fly during the traversal:

* aggregation transformations (ConstAdd/Sub/Xor) are applied through each
  terminal's codec chain,
* Split* nodes draw a random share and emit the two wire sub-values,
* ReadFromEnd mirrors the pieces of the affected subtree,
* PadInsert terminals draw random bytes,
* derived length fields are emitted as fixed-width slots and patched once the
  covered region has been measured (two-pass assembly).
"""

from __future__ import annotations

from random import Random

from ..core.boundary import BoundaryKind
from ..core.errors import SerializationError
from ..core.fieldpath import FieldPath
from ..core.graph import FormatGraph
from ..core.message import Message
from ..core.node import Node, NodeType
from ..core.values import ValueKind, apply_chain, encode_uint, encode_value
from .pieces import LengthSlot, PieceList
from .spans import FieldSpan


class _SerializeContext:
    """Mutable state shared by one serialization run."""

    __slots__ = (
        "message",
        "rng",
        "index_stack",
        "region_lengths",
        "length_sources",
        "counter_sources",
    )

    def __init__(self, graph: FormatGraph, message: Message, rng: Random):
        self.message = message
        self.rng = rng
        self.index_stack: list[int] = []
        #: serialized byte length of every node instance, keyed by
        #: (node name, repetition index context)
        self.region_lengths: dict[tuple[str, tuple[int, ...]], int] = {}
        #: length-field name -> node whose length it carries
        self.length_sources: dict[str, Node] = {}
        #: counter-field name -> node whose element count it carries
        self.counter_sources: dict[str, Node] = {}
        for node in graph.nodes():
            if node.boundary.kind is BoundaryKind.LENGTH:
                self.length_sources[node.boundary.ref] = node  # type: ignore[index]
            elif node.boundary.kind is BoundaryKind.COUNTER:
                self.counter_sources.setdefault(node.boundary.ref, node)  # type: ignore[arg-type]

    def resolve(self, path: FieldPath) -> FieldPath:
        """Bind the unbound repetition indices of ``path`` to the current stack."""
        return path.resolve(self.index_stack)

    def context_key(self) -> tuple[int, ...]:
        """Current repetition index context, used to key per-instance lengths."""
        return tuple(self.index_stack)


class Serializer:
    """Serializes logical messages against a message format graph."""

    def __init__(self, graph: FormatGraph, *, rng: Random | None = None):
        self.graph = graph
        self._rng = rng if rng is not None else Random(0)

    # -- public API -----------------------------------------------------------

    def serialize(self, message: Message | dict) -> bytes:
        """Serialize ``message`` into its (obfuscated) wire representation."""
        data, _ = self.serialize_with_spans(message)
        return data

    def serialize_with_spans(self, message: Message | dict) -> tuple[bytes, list[FieldSpan]]:
        """Serialize and also return the byte extents of every emitted wire field."""
        logical = message if isinstance(message, Message) else Message.from_dict(message)
        context = _SerializeContext(self.graph, logical, self._rng)
        pieces = self._serialize_node(self.graph.root, context)
        data, raw_spans = pieces.assemble(context.region_lengths)
        spans = [
            FieldSpan(node=node, origin=origin, start=start, end=end)
            for node, origin, start, end in raw_spans
            if node is not None
        ]
        return data, spans

    # -- node dispatch --------------------------------------------------------

    def _serialize_node(self, node: Node, ctx: _SerializeContext) -> PieceList:
        if node.type is NodeType.TERMINAL:
            pieces = self._serialize_terminal(node, ctx)
        elif node.type is NodeType.SEQUENCE:
            pieces = self._serialize_sequence(node, ctx)
        elif node.type is NodeType.OPTIONAL:
            pieces = self._serialize_optional(node, ctx)
        elif node.type in (NodeType.REPETITION, NodeType.TABULAR):
            pieces = self._serialize_repetition(node, ctx)
        else:  # pragma: no cover - exhaustive enum
            raise SerializationError(f"unknown node type {node.type!r}")
        if node.mirrored:
            pieces = pieces.mirrored()
        ctx.region_lengths[(node.name, ctx.context_key())] = pieces.byte_length()
        return pieces

    # -- terminals ------------------------------------------------------------

    def _serialize_terminal(self, node: Node, ctx: _SerializeContext,
                            value_override: object = None) -> PieceList:
        pieces = PieceList()
        if node.is_pad:
            size = node.boundary.size or 0
            pieces.add_bytes(bytes(ctx.rng.randrange(256) for _ in range(size)),
                             node=node.name, origin=None)
            return pieces
        if node.name in ctx.length_sources and value_override is None:
            pieces.add_slot(
                LengthSlot(
                    node=node.name,
                    target=ctx.length_sources[node.name].name,
                    width=node.boundary.size or 0,
                    endian=node.endian,
                    codec_chain=node.codec_chain,
                    mirrored=False,
                    origin=node.origin,
                    context=ctx.context_key(),
                )
            )
            return pieces
        if node.name in ctx.counter_sources and value_override is None:
            count = self._counter_value(node, ctx)
            encoded = self._encode_terminal_value(node, count)
            pieces.add_bytes(encoded, node=node.name, origin=node.origin)
            self._append_delimiter(node, pieces)
            return pieces
        value = value_override
        if value is None:
            value = self._logical_value(node, ctx)
        encoded = self._encode_terminal_value(node, value)
        pieces.add_bytes(encoded, node=node.name, origin=node.origin)
        self._append_delimiter(node, pieces)
        return pieces

    def _logical_value(self, node: Node, ctx: _SerializeContext) -> object:
        if node.origin is None:
            raise SerializationError(
                f"terminal {node.name!r} carries no logical origin and no derived value"
            )
        value = ctx.message.get(ctx.resolve(node.origin))
        if value is None:
            raise SerializationError(
                f"logical message is missing field {ctx.resolve(node.origin)} "
                f"(terminal {node.name!r})"
            )
        return value

    def _counter_value(self, node: Node, ctx: _SerializeContext) -> int:
        source = ctx.counter_sources[node.name]
        if source.origin is None:
            raise SerializationError(
                f"counted node {source.name!r} carries no logical origin"
            )
        return ctx.message.list_length(ctx.resolve(source.origin))

    def _encode_terminal_value(self, node: Node, value: object) -> bytes:
        assert node.value_kind is not None
        obfuscated = apply_chain(value, node.value_kind, node.codec_chain)
        size = node.boundary.size if node.boundary.kind is BoundaryKind.FIXED else None
        try:
            encoded = encode_value(obfuscated, node.value_kind, size=size, endian=node.endian)
        except SerializationError as exc:
            raise SerializationError(f"terminal {node.name!r}: {exc}") from exc
        if node.boundary.kind is BoundaryKind.DELIMITED:
            delimiter = node.boundary.delimiter or b""
            if delimiter in encoded:
                raise SerializationError(
                    f"value of delimited terminal {node.name!r} contains its "
                    f"delimiter {delimiter!r}"
                )
        return encoded

    @staticmethod
    def _append_delimiter(node: Node, pieces: PieceList) -> None:
        if node.boundary.kind is BoundaryKind.DELIMITED:
            pieces.add_bytes(node.boundary.delimiter or b"")

    # -- composites -----------------------------------------------------------

    def _serialize_sequence(self, node: Node, ctx: _SerializeContext) -> PieceList:
        if node.synthesis is not None:
            return self._serialize_synthesis(node, ctx)
        pieces = PieceList()
        for child in node.children:
            pieces.extend(self._serialize_node(child, ctx))
        return pieces

    def _serialize_synthesis(self, node: Node, ctx: _SerializeContext) -> PieceList:
        if node.origin is None:
            raise SerializationError(f"synthesis node {node.name!r} has no logical origin")
        value = ctx.message.get(ctx.resolve(node.origin))
        if value is None:
            raise SerializationError(
                f"logical message is missing field {ctx.resolve(node.origin)} "
                f"(synthesis node {node.name!r})"
            )
        shares = list(node.synthesis.split(value, ctx.rng, split_at=node.split_at))
        pieces = PieceList()
        for child in node.children:
            if child.name in ctx.length_sources:
                # Derived length prefix created by SplitCat on a variable-size
                # terminal: emitted as a regular length slot.
                pieces.extend(self._serialize_node(child, ctx))
                continue
            if not shares:
                raise SerializationError(
                    f"synthesis node {node.name!r} has more value children than shares"
                )
            pieces.extend(self._serialize_split_child(child, shares.pop(0), ctx))
        if shares:
            raise SerializationError(
                f"synthesis node {node.name!r} has fewer value children than shares"
            )
        return pieces

    def _serialize_split_child(self, child: Node, value: object,
                               ctx: _SerializeContext) -> PieceList:
        pieces = self._serialize_terminal(child, ctx, value_override=value)
        if child.mirrored:
            pieces = pieces.mirrored()
        ctx.region_lengths[(child.name, ctx.context_key())] = pieces.byte_length()
        return pieces

    def _serialize_optional(self, node: Node, ctx: _SerializeContext) -> PieceList:
        if not self._optional_present(node, ctx):
            return PieceList()
        return self._serialize_node(node.children[0], ctx)

    def _optional_present(self, node: Node, ctx: _SerializeContext) -> bool:
        if node.presence_ref is not None:
            reference = self.graph.find(node.presence_ref)
            if reference is not None and reference.origin is not None:
                value = ctx.message.get(ctx.resolve(reference.origin))
                return value == node.presence_value
        if node.origin is None:
            return False
        return ctx.message.get(ctx.resolve(node.origin)) is not None

    def _serialize_repetition(self, node: Node, ctx: _SerializeContext) -> PieceList:
        if node.origin is None:
            raise SerializationError(f"repeated node {node.name!r} has no logical origin")
        count = ctx.message.list_length(ctx.resolve(node.origin))
        pieces = PieceList()
        child = node.children[0]
        for index in range(count):
            ctx.index_stack.append(index)
            try:
                pieces.extend(self._serialize_node(child, ctx))
            finally:
                ctx.index_stack.pop()
        if node.type is NodeType.REPETITION and node.boundary.kind is BoundaryKind.DELIMITED:
            pieces.add_bytes(node.boundary.delimiter or b"")
        return pieces


def serialize(graph: FormatGraph, message: Message | dict, *, rng: Random | None = None) -> bytes:
    """Module-level convenience wrapper around :class:`Serializer`."""
    return Serializer(graph, rng=rng).serialize(message)


def serialize_with_spans(
    graph: FormatGraph, message: Message | dict, *, rng: Random | None = None
) -> tuple[bytes, list[FieldSpan]]:
    """Serialize and return the emitted wire field spans."""
    return Serializer(graph, rng=rng).serialize_with_spans(message)
