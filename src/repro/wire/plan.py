"""Compiled codec plans.

The interpreted wire runtime used to re-derive graph-wide metadata on every
message: the parser collected the LENGTH/COUNTER reference targets in its
constructor, the serializer rebuilt the length/counter source maps per
``serialize()`` call, and the module-level convenience wrappers constructed a
fresh :class:`~repro.wire.parser.Parser` / :class:`~repro.wire.serializer.Serializer`
per invocation.  A :class:`CodecPlan` compiles a :class:`~repro.core.graph.FormatGraph`
once into a flat execution plan so that every subsequent parse/serialize runs
against precomputed state — the same compile-once/execute-many discipline the
source paper applies to its generated C++ parsers:

* the set of LENGTH/COUNTER reference targets,
* the length/counter source maps keyed by the derived field's name,
* the resolved static size of every node,
* one composed codec callable per terminal (codec chain + value encoding
  fused, with byte-translation tables for byte-wise chains),
* pre-encoded delimiters and fixed-width length-slot templates.

Plans are cached at two levels (:func:`plan_for`).  Graphs stamped with an
obfuscation-plan fingerprint (``graph.plan_fingerprint``, set by
:meth:`repro.transforms.plan.ObfuscationPlan.replay` and
:meth:`~repro.transforms.engine.ObfuscationResult.plan`) are keyed by that
fingerprint — a value stable across replays and across processes — so every
replay of one plan shares a single compiled slot instead of compiling per
graph object.  Unstamped graphs fall back to caching per graph *identity*.
Both levels are invalidated when a transformation rewrites the graph in place
(the obfuscation engine calls :func:`invalidate` after every applied
transformation, which also clears the stamp: a mutated graph no longer is the
format its plan fingerprint names).  A plan never holds a reference to the
graph or its nodes — only names, primitives and closures over immutable node
attributes — so the cache cannot leak graphs and a plan can never observe a
node mutated after compilation.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from ..core.boundary import BoundaryKind
from ..core.errors import MessageError, SerializationError
from ..core.fieldpath import INDEX, FieldPath
from ..core.graph import FormatGraph
from ..core.node import Node, NodeType
from ..core.values import (
    Value,
    ValueKind,
    ValueOp,
    ValueOpKind,
    apply_chain,
    encode_value,
    invert_chain,
)
from .pieces import LengthSlot


# ---------------------------------------------------------------------------
# codec chain composition
# ---------------------------------------------------------------------------


def _byte_tables(chain: tuple[ValueOp, ...]) -> tuple[bytes, bytes]:
    """Fused 256-entry translation tables of a purely byte-wise chain.

    Byte-wise operations map each byte independently, so an arbitrarily long
    chain collapses into a single ``bytes.translate`` table per direction.
    """
    forward = list(range(256))
    for op in chain:
        forward = [op._byte_op(byte, False) for byte in forward]
    inverse = list(range(256))
    for op in reversed(chain):
        inverse = [op._byte_op(byte, True) for byte in inverse]
    return bytes(forward), bytes(inverse)


def _int_chain_fn(chain: tuple[ValueOp, ...], *, inverse: bool
                  ) -> Callable[[Value], Value] | None:
    """Fuse a pure-integer chain into one closure over (add, xor) steps.

    Every integer operation is either an addition modulo a power of two or a
    xor; subtractions (and inverted additions) normalize to additions of the
    complement, so one ``(v + c) & mask`` / ``v ^ c`` step per op remains.
    Returns ``None`` when the chain contains byte-wise or width-less ops.
    """
    steps: list[tuple[bool, int, int]] = []  # (is_add, constant, mask)
    ordered = reversed(chain) if inverse else chain
    for op in ordered:
        if op.bytewise or op.width is None:
            return None
        modulus = 1 << (8 * op.width)
        mask = modulus - 1
        constant = op.constant % modulus
        if op.kind is ValueOpKind.XOR:
            steps.append((False, constant, mask))
        elif (op.kind is ValueOpKind.ADD) != inverse:
            steps.append((True, constant, mask))
        else:  # subtraction: add the modular complement
            steps.append((True, (modulus - constant) & mask, mask))
    if len(steps) == 1:
        is_add, constant, mask = steps[0]
        if is_add:
            return lambda value: (int(value) + constant) & mask
        return lambda value: int(value) ^ constant
    fused = tuple(steps)

    def run(value: Value) -> Value:
        integer = int(value)  # type: ignore[arg-type]
        for is_add, constant, mask in fused:
            integer = (integer + constant) & mask if is_add else integer ^ constant
        return integer

    return run


def _compile_chain(kind: ValueKind, chain: tuple[ValueOp, ...]
                   ) -> tuple[Callable[[Value], Value], Callable[[Value], Value]] | None:
    """Compose a codec chain into one ``(apply, invert)`` callable pair.

    Returns ``None`` for the identity chain.  Chains that mix byte-wise and
    integer operations (never produced by the transformations, but permitted
    by the data model) fall back to the generic per-op interpreters.
    """
    if not chain:
        return None
    if kind is ValueKind.UINT:
        apply_fn = _int_chain_fn(chain, inverse=False)
        invert_fn = _int_chain_fn(chain, inverse=True)
        if apply_fn is not None and invert_fn is not None:
            return apply_fn, invert_fn
    if all(op.bytewise for op in chain) and kind in (ValueKind.BYTES, ValueKind.TEXT):
        forward_table, inverse_table = _byte_tables(chain)
        if kind is ValueKind.BYTES:
            def apply_fused(value: Value) -> Value:
                data = value if isinstance(value, bytes) else encode_value(value, kind)
                return data.translate(forward_table)

            def invert_fused(value: Value) -> Value:
                data = value if isinstance(value, bytes) else encode_value(value, kind)
                return data.translate(inverse_table)
        else:
            def apply_fused(value: Value) -> Value:
                data = encode_value(value, kind)
                return data.translate(forward_table).decode("latin-1")

            def invert_fused(value: Value) -> Value:
                data = encode_value(value, kind)
                return data.translate(inverse_table).decode("latin-1")
        return apply_fused, invert_fused

    def apply_generic(value: Value) -> Value:
        return apply_chain(value, kind, chain)

    def invert_generic(value: Value) -> Value:
        return invert_chain(value, kind, chain)

    return apply_generic, invert_generic


# ---------------------------------------------------------------------------
# per-terminal plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TerminalPlan:
    """Precompiled encode/decode path of one value-carrying terminal.

    ``decode`` maps raw wire bytes to the logical value (value decoding fused
    with the inverted codec chain); ``encode`` maps a logical value to wire
    bytes (codec chain fused with value encoding, fixed-size and delimiter
    checks included).  ``delimiter`` is the pre-encoded terminator appended
    after the value (``b""`` when the terminal is not delimited).
    """

    name: str
    decode: Callable[[bytes], Value]
    encode: Callable[[object], bytes]
    delimiter: bytes


def _compile_decode(node: Node) -> Callable[[bytes], Value]:
    kind = node.value_kind
    assert kind is not None
    compiled = _compile_chain(kind, node.codec_chain)
    if kind is ValueKind.UINT:
        byteorder = node.endian.value
        if compiled is None:
            return lambda raw: int.from_bytes(raw, byteorder)
        _, invert = compiled
        return lambda raw: invert(int.from_bytes(raw, byteorder))
    if kind is ValueKind.BYTES:
        if compiled is None:
            return bytes
        _, invert = compiled
        return lambda raw: invert(bytes(raw))
    # TEXT
    if compiled is None:
        return lambda raw: raw.decode("latin-1")
    _, invert = compiled
    return lambda raw: invert(raw.decode("latin-1"))


def _compile_encode(node: Node) -> Callable[[object], bytes]:
    kind = node.value_kind
    assert kind is not None
    name = node.name
    endian = node.endian
    size = node.boundary.size if node.boundary.kind is BoundaryKind.FIXED else None
    delimiter = (
        node.boundary.delimiter or b""
        if node.boundary.kind is BoundaryKind.DELIMITED
        else b""
    )
    compiled = _compile_chain(kind, node.codec_chain)
    apply_ops = compiled[0] if compiled is not None else None

    if apply_ops is None and kind is ValueKind.UINT and size is not None and size > 0:
        # Fixed-width unsigned integer without a codec chain: by far the most
        # common terminal shape — encode with one bound int.to_bytes call.
        modulus = 1 << (8 * size)
        byteorder = endian.value

        def encode_uint_fast(value: object) -> bytes:
            integer = int(value)  # type: ignore[arg-type]
            if not 0 <= integer < modulus:
                raise SerializationError(
                    f"terminal {name!r}: value {integer} does not fit in {size} byte(s)"
                )
            return integer.to_bytes(size, byteorder)

        return encode_uint_fast

    if apply_ops is None and kind in (ValueKind.BYTES, ValueKind.TEXT):
        label = "bytes" if kind is ValueKind.BYTES else "text"

        def encode_data_fast(value: object) -> bytes:
            if isinstance(value, str):
                data = value.encode("latin-1")
            elif isinstance(value, (bytes, bytearray)):
                data = bytes(value)
            else:
                raise SerializationError(
                    f"terminal {name!r}: cannot encode {type(value).__name__} as {label}"
                )
            if size is not None and len(data) != size:
                raise SerializationError(
                    f"terminal {name!r}: fixed-size field expects {size} byte(s), "
                    f"value has {len(data)}"
                )
            if delimiter and delimiter in data:
                raise SerializationError(
                    f"value of delimited terminal {name!r} contains its "
                    f"delimiter {delimiter!r}"
                )
            return data

        return encode_data_fast

    def encode(value: object) -> bytes:
        if apply_ops is not None:
            value = apply_ops(value)  # type: ignore[arg-type]
        try:
            encoded = encode_value(value, kind, size=size, endian=endian)  # type: ignore[arg-type]
        except SerializationError as exc:
            raise SerializationError(f"terminal {name!r}: {exc}") from exc
        if delimiter and delimiter in encoded:
            raise SerializationError(
                f"value of delimited terminal {name!r} contains its "
                f"delimiter {delimiter!r}"
            )
        return encoded

    return encode


# ---------------------------------------------------------------------------
# compiled origin accessors
# ---------------------------------------------------------------------------
#
# The parser stores every decoded value at its node's origin path and the
# serializer reads every terminal value from it — once per terminal per
# message.  Navigating through FieldPath.resolve + Message.get/set costs a
# path allocation and a generically dispatched walk per access; the closures
# below bind the path's steps at compile time and read the repetition indices
# straight off the live index stack (leftmost INDEX marker ↔ outermost
# repetition, exactly like FieldPath.resolve).


def _bind_steps(steps: tuple, indices: list[int], path: FieldPath) -> list:
    """Replace the INDEX markers of ``steps`` with the live repetition indices."""
    bound = list(steps)
    cursor = 0
    for position, step in enumerate(bound):
        if step is INDEX:
            if cursor >= len(indices):
                raise MessageError(
                    f"cannot resolve {path}: needs more than {len(indices)} bound indices"
                )
            bound[position] = indices[cursor]
            cursor += 1
    return bound


def _compile_getter(path: FieldPath) -> Callable[[dict, list[int]], object]:
    """Equivalent of ``message.get(path.resolve(indices))`` (``None`` if absent)."""
    steps = path.steps
    if len(steps) == 1 and isinstance(steps[0], str):
        key = steps[0]

        def get_flat(data: dict, indices: list[int]) -> object:
            return data.get(key)

        return get_flat

    if len(steps) == 2 and isinstance(steps[0], str) and isinstance(steps[1], str):
        first, second = steps

        def get_nested(data: dict, indices: list[int]) -> object:
            container = data.get(first)
            if not isinstance(container, dict):
                return None
            return container.get(second)

        return get_nested

    if (len(steps) == 3 and isinstance(steps[0], str)
            and steps[1] is INDEX and isinstance(steps[2], str)):
        # The repetition-element shape (`headers[*].name`) — once per element
        # terminal per message, worth a dedicated closure.
        outer, _, inner = steps

        def get_element(data: dict, indices: list[int]) -> object:
            if not indices:
                raise MessageError(
                    f"cannot resolve {path}: needs more than 0 bound indices"
                )
            index = indices[0]
            container = data.get(outer)
            if not isinstance(container, list) or not 0 <= index < len(container):
                return None
            entry = container[index]
            if not isinstance(entry, dict):
                return None
            return entry.get(inner)

        return get_element

    def get(data: dict, indices: list[int]) -> object:
        container: object = data
        cursor = 0
        for position, step in enumerate(steps):
            if step is INDEX:
                if cursor >= len(indices):
                    raise MessageError(
                        f"cannot resolve {path}: needs more than "
                        f"{len(indices)} bound indices"
                    )
                step = indices[cursor]
                cursor += 1
            if isinstance(step, str):
                if not isinstance(container, dict) or step not in container:
                    return None
                container = container[step]
            else:
                if not isinstance(container, list) or not 0 <= step < len(container):
                    return None
                container = container[step]
        return container

    return get


def _compile_setter(path: FieldPath) -> Callable[[dict, list[int], object], None]:
    """Equivalent of ``message.set(path.resolve(indices), value)``."""
    steps = path.steps
    if len(steps) == 1 and isinstance(steps[0], str):
        key = steps[0]

        def set_flat(data: dict, indices: list[int], value: object) -> None:
            data[key] = value

        return set_flat

    if len(steps) == 2 and isinstance(steps[0], str) and isinstance(steps[1], str):
        first, second = steps

        def set_nested(data: dict, indices: list[int], value: object) -> None:
            container = data.get(first)
            if not isinstance(container, (dict, list)):
                container = {}
                data[first] = container
            if not isinstance(container, dict):
                raise MessageError(f"expected a dict at {(first,)!r}")
            container[second] = value

        return set_nested

    if (len(steps) == 3 and isinstance(steps[0], str)
            and steps[1] is INDEX and isinstance(steps[2], str)):
        outer, _, inner = steps

        def set_element(data: dict, indices: list[int], value: object) -> None:
            if not indices:
                raise MessageError(
                    f"cannot resolve {path}: needs more than 0 bound indices"
                )
            index = indices[0]
            container = data.get(outer)
            if not isinstance(container, (dict, list)):
                container = []
                data[outer] = container
            if not isinstance(container, list):
                raise MessageError(f"expected a list at {(outer,)!r}")
            while len(container) <= index:
                container.append(None)
            entry = container[index]
            if not isinstance(entry, (dict, list)):
                entry = {}
                container[index] = entry
            if not isinstance(entry, dict):
                raise MessageError(f"expected a dict at {(outer, index)!r}")
            entry[inner] = value

        return set_element

    def set_(data: dict, indices: list[int], value: object) -> None:
        container: object = data
        bound = _bind_steps(steps, indices, path)
        last = len(bound) - 1
        for position in range(last):
            step = bound[position]
            next_step = bound[position + 1]
            if isinstance(step, str):
                if not isinstance(container, dict):
                    raise MessageError(f"expected a dict at {tuple(bound[:position])!r}")
                existing = container.get(step)
                if isinstance(existing, (dict, list)):
                    container = existing
                else:
                    created: object = [] if isinstance(next_step, int) else {}
                    container[step] = created
                    container = created
            else:
                if not isinstance(container, list):
                    raise MessageError(f"expected a list at {tuple(bound[:position])!r}")
                while len(container) <= step:
                    container.append(None)
                existing = container[step]
                if isinstance(existing, (dict, list)):
                    container = existing
                else:
                    created = [] if isinstance(next_step, int) else {}
                    container[step] = created
                    container = created
        step = bound[last]
        if isinstance(step, str):
            if not isinstance(container, dict):
                raise MessageError(f"expected a dict at {tuple(bound[:last])!r}")
            container[step] = value
        else:
            if not isinstance(container, list):
                raise MessageError(f"expected a list at {tuple(bound[:last])!r}")
            while len(container) <= step:
                container.append(None)
            container[step] = value

    return set_


def _compile_list_init(path: FieldPath) -> Callable[[dict, list[int]], None]:
    """Equivalent of ``if not message.has(p): message.set(p, [])`` for a list origin."""
    setter = _compile_setter(path)
    steps = path.steps
    if len(steps) == 1 and isinstance(steps[0], str):
        key = steps[0]

        def init_flat(data: dict, indices: list[int]) -> None:
            if key not in data:
                data[key] = []

        return init_flat

    def init(data: dict, indices: list[int]) -> None:
        container: object = data
        cursor = 0
        for step in steps:
            if step is INDEX:
                if cursor >= len(indices):
                    raise MessageError(
                        f"cannot resolve {path}: needs more than "
                        f"{len(indices)} bound indices"
                    )
                step = indices[cursor]
                cursor += 1
            if isinstance(step, str):
                if not isinstance(container, dict) or step not in container:
                    setter(data, indices, [])
                    return
                container = container[step]
            else:
                if not isinstance(container, list) or not 0 <= step < len(container):
                    setter(data, indices, [])
                    return
                container = container[step]

    return init


# ---------------------------------------------------------------------------
# static size resolution
# ---------------------------------------------------------------------------


def _compute_static_sizes(root: Node) -> dict[str, int | None]:
    """Resolve :func:`repro.core.graph.static_size` for every node in one pass."""
    sizes: dict[str, int | None] = {}
    # Post-order: children are resolved before their parent sums them.
    stack: list[tuple[Node, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            for child in node.children:
                stack.append((child, False))
            continue
        if node.type is NodeType.TERMINAL:
            sizes[node.name] = (
                node.boundary.size if node.boundary.kind is BoundaryKind.FIXED else None
            )
            continue
        if node.type in (NodeType.OPTIONAL, NodeType.REPETITION, NodeType.TABULAR):
            sizes[node.name] = None
            continue
        total: int | None = 0
        for child in node.children:
            child_size = sizes[child.name]
            if child_size is None:
                total = None
                break
            total += child_size
        if (
            total is not None
            and node.boundary.kind is BoundaryKind.FIXED
            and node.boundary.size != total
        ):
            total = None
        sizes[node.name] = total
    return sizes


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------


class CodecPlan:
    """Flat, precomputed execution plan of one format graph.

    Attributes
    ----------
    ref_targets:
        Names of the terminals referenced by a LENGTH or COUNTER boundary.
    length_slots:
        Length-field terminal name -> pre-built :class:`LengthSlot` template
        (``context=()``; the serializer stamps the live repetition context).
    counter_sources:
        Counter-field terminal name -> ``(counted node name, counted node
        origin path)``.
    static_sizes:
        Node name -> statically known serialized size, or ``None``.
    terminals:
        Value-carrying terminal name -> :class:`TerminalPlan`.
    presence_origins:
        Optional-node name -> logical origin path of its presence terminal
        (only nodes whose presence reference resolves to an origin-carrying
        terminal appear here).
    origin_get / origin_set / list_init:
        Node name -> compiled accessor over the logical message data
        (:func:`_compile_getter` and friends); ``counter_get`` and
        ``presence_get`` are the same accessors keyed for counter fields and
        Optional presence checks.
    """

    __slots__ = (
        "graph_name",
        "ref_targets",
        "length_slots",
        "length_targets",
        "counter_sources",
        "derived_fields",
        "static_sizes",
        "terminals",
        "presence_origins",
        "origin_get",
        "origin_set",
        "list_init",
        "counter_get",
        "presence_get",
    )

    def __init__(
        self,
        graph_name: str,
        ref_targets: frozenset[str],
        length_slots: dict[str, LengthSlot],
        length_targets: frozenset[str],
        counter_sources: dict[str, tuple[str, FieldPath | None]],
        static_sizes: dict[str, int | None],
        terminals: dict[str, TerminalPlan],
        presence_origins: dict[str, FieldPath],
        origin_get: dict[str, Callable],
        origin_set: dict[str, Callable],
        list_init: dict[str, Callable],
        counter_get: dict[str, Callable],
        presence_get: dict[str, Callable],
    ):
        self.graph_name = graph_name
        self.ref_targets = ref_targets
        self.length_slots = length_slots
        #: names of the LENGTH-bounded nodes: the only nodes whose measured
        #: region length is ever read back when resolving length slots.
        self.length_targets = length_targets
        self.counter_sources = counter_sources
        #: one-probe union of the two derived-field maps, checked once per
        #: terminal per message: length-field name -> its LengthSlot template,
        #: counter-field name -> its (counted node name, origin) tuple.
        self.derived_fields: dict[str, LengthSlot | tuple[str, FieldPath | None]] = {
            **counter_sources,
            **length_slots,
        }
        self.static_sizes = static_sizes
        self.terminals = terminals
        self.presence_origins = presence_origins
        self.origin_get = origin_get
        self.origin_set = origin_set
        self.list_init = list_init
        self.counter_get = counter_get
        self.presence_get = presence_get

    def __repr__(self) -> str:
        return (
            f"CodecPlan({self.graph_name!r}, terminals={len(self.terminals)}, "
            f"length_slots={len(self.length_slots)}, "
            f"counters={len(self.counter_sources)})"
        )


def compile_plan(graph: FormatGraph) -> CodecPlan:
    """Compile ``graph`` into a fresh :class:`CodecPlan` (no caching)."""
    ref_targets: set[str] = set()
    length_sources: dict[str, Node] = {}
    counter_sources: dict[str, tuple[str, FieldPath | None]] = {}
    terminal_nodes: list[Node] = []
    origins: dict[str, FieldPath] = {}
    presence_refs: dict[str, str] = {}
    for node in graph.nodes():
        kind = node.boundary.kind
        if kind is BoundaryKind.LENGTH and node.boundary.ref is not None:
            ref_targets.add(node.boundary.ref)
            length_sources[node.boundary.ref] = node
        elif kind is BoundaryKind.COUNTER and node.boundary.ref is not None:
            ref_targets.add(node.boundary.ref)
            counter_sources.setdefault(
                node.boundary.ref, (node.name, node.origin)
            )
        if node.origin is not None:
            origins[node.name] = node.origin
        if node.type is NodeType.OPTIONAL and node.presence_ref is not None:
            presence_refs[node.name] = node.presence_ref
        if node.type is NodeType.TERMINAL and not node.is_pad:
            terminal_nodes.append(node)
    presence_origins = {
        name: origins[ref] for name, ref in presence_refs.items() if ref in origins
    }
    origin_get: dict[str, Callable] = {}
    origin_set: dict[str, Callable] = {}
    list_init: dict[str, Callable] = {}
    for node_name, origin in origins.items():
        origin_get[node_name] = _compile_getter(origin)
        origin_set[node_name] = _compile_setter(origin)
        list_init[node_name] = _compile_list_init(origin)
    counter_get = {
        field_name: origin_get[source_name]
        for field_name, (source_name, source_origin) in counter_sources.items()
        if source_origin is not None
    }
    presence_get = {
        name: _compile_getter(path) for name, path in presence_origins.items()
    }
    length_slots: dict[str, LengthSlot] = {}
    terminals: dict[str, TerminalPlan] = {}
    for node in terminal_nodes:
        terminals[node.name] = TerminalPlan(
            name=node.name,
            decode=_compile_decode(node),
            encode=_compile_encode(node),
            delimiter=(
                node.boundary.delimiter or b""
                if node.boundary.kind is BoundaryKind.DELIMITED
                else b""
            ),
        )
        target = length_sources.get(node.name)
        if target is not None:
            length_slots[node.name] = LengthSlot(
                node=node.name,
                target=target.name,
                width=node.boundary.size or 0,
                endian=node.endian,
                codec_chain=node.codec_chain,
                mirrored=False,
                origin=node.origin,
                context=(),
            )
    return CodecPlan(
        graph_name=graph.name,
        ref_targets=frozenset(ref_targets),
        length_slots=length_slots,
        length_targets=frozenset(node.name for node in length_sources.values()),
        counter_sources=counter_sources,
        static_sizes=_compute_static_sizes(graph.root),
        terminals=terminals,
        presence_origins=presence_origins,
        origin_get=origin_get,
        origin_set=origin_set,
        list_init=list_init,
        counter_get=counter_get,
        presence_get=presence_get,
    )


# ---------------------------------------------------------------------------
# the shared plan cache
# ---------------------------------------------------------------------------

#: Plans keyed by graph identity (unstamped graphs), least-recently-used
#: first.  Each entry holds a dead-callback weakref to its graph, so entries
#: evict both on garbage collection *and* — the case weak references alone
#: cannot bound — when a long-lived rotation-heavy server keeps thousands of
#: dialect graphs alive at once: beyond the capacity the least recently used
#: plan is dropped (and recompiled on demand if that graph comes back).
_PLAN_CACHE: "OrderedDict[int, tuple[weakref.ref, CodecPlan]]" = OrderedDict()
_PLAN_CACHE_CAPACITY = 128

#: Plans keyed by obfuscation-plan fingerprint (stamped graphs).  The key is
#: content-derived, so two replays of the same plan — different graph objects,
#: different processes compiling independently — resolve to one slot.  Bounded
#: LRU: rotation workloads cycle through many plans, and an unbounded
#: content-keyed dict would never evict.
_FINGERPRINT_PLANS: "OrderedDict[str, CodecPlan]" = OrderedDict()
_FINGERPRINT_CAPACITY = 64

#: Hit/miss/evict counters of both cache levels (diagnostics: a long-lived
#: server can watch eviction churn to detect a capacity set too low).
_CACHE_STATS = {
    "identity_hits": 0, "identity_misses": 0, "identity_evictions": 0,
    "fingerprint_hits": 0, "fingerprint_misses": 0, "fingerprint_evictions": 0,
}


def _forget_identity(key: int) -> None:
    """Weakref death callback: drop the entry of a collected graph."""
    _PLAN_CACHE.pop(key, None)


def plan_for(graph: FormatGraph) -> CodecPlan:
    """Cached plan of ``graph``; compiled on first use.

    Stamped graphs (``graph.plan_fingerprint`` set by the obfuscation-plan
    layer) share their compiled plan with every other graph replayed from the
    same plan; unstamped graphs are cached per object identity in a bounded
    LRU.
    """
    fingerprint = getattr(graph, "plan_fingerprint", None)
    if fingerprint is not None:
        plan = _FINGERPRINT_PLANS.get(fingerprint)
        if plan is not None:
            _CACHE_STATS["fingerprint_hits"] += 1
            _FINGERPRINT_PLANS.move_to_end(fingerprint)
            return plan
        _CACHE_STATS["fingerprint_misses"] += 1
        plan = compile_plan(graph)
        while len(_FINGERPRINT_PLANS) >= _FINGERPRINT_CAPACITY:
            _FINGERPRINT_PLANS.popitem(last=False)
            _CACHE_STATS["fingerprint_evictions"] += 1
        _FINGERPRINT_PLANS[fingerprint] = plan
        return plan
    key = id(graph)
    entry = _PLAN_CACHE.get(key)
    if entry is not None and entry[0]() is graph:
        _CACHE_STATS["identity_hits"] += 1
        _PLAN_CACHE.move_to_end(key)
        return entry[1]
    _CACHE_STATS["identity_misses"] += 1
    plan = compile_plan(graph)
    while len(_PLAN_CACHE) >= _PLAN_CACHE_CAPACITY:
        _PLAN_CACHE.popitem(last=False)
        _CACHE_STATS["identity_evictions"] += 1
    _PLAN_CACHE[key] = (weakref.ref(graph, lambda _ref, _k=key: _forget_identity(_k)), plan)
    return plan


def invalidate(graph: FormatGraph) -> bool:
    """Drop the cached plan of ``graph`` (after an in-place transformation).

    Clears the graph's plan-fingerprint stamp as well: a mutated graph is no
    longer the format its fingerprint names.  The fingerprint-keyed slot
    itself stays — other replays of the same plan remain valid.  Returns True
    when a cached plan or a stamp was actually dropped.
    """
    dropped = _PLAN_CACHE.pop(id(graph), None) is not None
    if getattr(graph, "plan_fingerprint", None) is not None:
        graph.plan_fingerprint = None
        dropped = True
    return dropped


def cached_plan_count() -> int:
    """Number of live cached plans (diagnostics and tests)."""
    return len(_PLAN_CACHE) + len(_FINGERPRINT_PLANS)


def cache_stats() -> dict[str, int]:
    """Hit/miss/evict counters of both plan-cache levels (a copy)."""
    return dict(_CACHE_STATS)


def reset_cache_stats() -> None:
    """Zero the cache counters (test isolation and fresh measurement runs)."""
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0
