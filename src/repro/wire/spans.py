"""Field spans: byte extents of wire fields inside a serialized message.

Spans are the ground truth used by the protocol reverse engineering (PRE)
substrate: they give, for each terminal of the (possibly obfuscated) graph,
the byte range it occupies in a concrete serialized message.  The resilience
experiment (paper Section VII.D) scores the field boundaries inferred by the
PRE engine against these spans.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fieldpath import FieldPath


@dataclass(frozen=True)
class FieldSpan:
    """Byte extent of one wire field occurrence inside a serialized message."""

    node: str
    origin: FieldPath | None
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "FieldSpan") -> bool:
        """True when the two spans share at least one byte."""
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:
        origin = str(self.origin) if self.origin is not None else "-"
        return f"FieldSpan({self.node}, {origin}, [{self.start}, {self.end}))"


def boundaries(spans: list[FieldSpan], *, total_length: int | None = None) -> set[int]:
    """Set of field boundary offsets implied by a list of spans.

    A boundary is the start offset of a field (message start and end excluded,
    since every segmentation trivially agrees on them).
    """
    cut_points = {span.start for span in spans} | {span.end for span in spans}
    cut_points.discard(0)
    if total_length is not None:
        cut_points.discard(total_length)
    return cut_points
