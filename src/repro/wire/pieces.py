"""Serialization pieces.

The serializer works in two passes.  The first pass walks the (possibly
obfuscated) format graph and produces a flat list of *pieces*: literal byte
chunks and fixed-width *length slots* standing in for derived length fields
whose value is only known once the covered region has been measured.  The
second pass resolves the slots and concatenates everything.

This piece model is what makes the paper's transformations composable: a
length field can itself be value-obfuscated (ConstAdd/Sub/Xor) or mirrored
(ReadFromEnd) because the slot records the codec chain and mirroring flag and
applies them when the final value is written.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import SerializationError
from ..core.fieldpath import FieldPath
from ..core.values import Endian, ValueKind, ValueOp, apply_chain, encode_uint


class Chunk:
    """A literal run of bytes, optionally labelled with the terminal that produced it.

    A plain ``__slots__`` class rather than a dataclass: chunks are allocated
    once per emitted field per message, making construction cost part of the
    serialization hot path.
    """

    __slots__ = ("data", "node", "origin")

    def __init__(self, data: bytes, node: str | None = None,
                 origin: FieldPath | None = None):
        self.data = data
        self.node = node
        self.origin = origin

    def byte_length(self) -> int:
        return len(self.data)

    def mirrored(self) -> "Chunk":
        """Byte-reversed copy (labels are preserved: the extent is unchanged)."""
        return Chunk(self.data[::-1], node=self.node, origin=self.origin)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Chunk):
            return (self.data, self.node, self.origin) == (
                other.data, other.node, other.origin
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"Chunk(data={self.data!r}, node={self.node!r}, origin={self.origin!r})"


@dataclass
class LengthSlot:
    """A fixed-width placeholder for a derived length field.

    ``target`` is the name of the node whose serialized byte length must be
    written here once known; ``context`` is the repetition index stack active
    when the slot was emitted, so that a length field inside a repeated
    element refers to the element instance it belongs to.  ``codec_chain`` and
    ``mirrored`` reproduce the obfuscations applied to the length terminal
    itself.
    """

    node: str
    target: str
    width: int
    endian: Endian = Endian.BIG
    codec_chain: tuple[ValueOp, ...] = ()
    mirrored: bool = False
    origin: FieldPath | None = None
    context: tuple[int, ...] = ()

    def byte_length(self) -> int:
        return self.width

    def mirror_toggled(self) -> "LengthSlot":
        """Copy with the mirroring flag flipped (mirroring twice cancels out)."""
        return LengthSlot(
            node=self.node,
            target=self.target,
            width=self.width,
            endian=self.endian,
            codec_chain=self.codec_chain,
            mirrored=not self.mirrored,
            origin=self.origin,
            context=self.context,
        )

    def resolve(self, length: int) -> bytes:
        """Encode the measured ``length`` of the target region."""
        value = apply_chain(length, ValueKind.UINT, self.codec_chain)
        if not isinstance(value, int):  # pragma: no cover - chains keep ints
            raise SerializationError("length field codec chain produced a non-integer")
        data = encode_uint(value % (1 << (8 * self.width)), self.width, self.endian)
        return data[::-1] if self.mirrored else data


Piece = Chunk | LengthSlot


@dataclass
class PieceList:
    """An ordered list of pieces with helpers for measurement and mirroring.

    The total byte length is maintained incrementally as pieces are appended:
    every composite node records its region length after serializing, so a
    re-summing :meth:`byte_length` would be quadratic in the piece count.
    """

    pieces: list[Piece] = field(default_factory=list)
    _length: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.pieces:
            self._length = sum(piece.byte_length() for piece in self.pieces)

    # -- construction ---------------------------------------------------------

    def add_bytes(self, data: bytes, *, node: str | None = None,
                  origin: FieldPath | None = None) -> None:
        """Append a literal chunk (empty chunks are dropped)."""
        if data:
            self.pieces.append(Chunk(bytes(data), node=node, origin=origin))
            self._length += len(data)

    def add_slot(self, slot: LengthSlot) -> None:
        """Append a length slot."""
        self.pieces.append(slot)
        self._length += slot.width

    def extend(self, other: "PieceList") -> None:
        """Append every piece of ``other``."""
        self.pieces.extend(other.pieces)
        self._length += other._length

    # -- measurement ----------------------------------------------------------

    def byte_length(self) -> int:
        """Total serialized length (slots count for their fixed width)."""
        return self._length

    # -- transformations ------------------------------------------------------

    def mirrored(self) -> "PieceList":
        """Piece list whose assembled bytes are the byte-reversal of this one."""
        reversed_pieces: list[Piece] = []
        for piece in reversed(self.pieces):
            if isinstance(piece, Chunk):
                reversed_pieces.append(piece.mirrored())
            else:
                reversed_pieces.append(piece.mirror_toggled())
        return PieceList(reversed_pieces)

    def mirror_from(self, index: int) -> None:
        """Mirror the pieces appended since ``index`` in place (ReadFromEnd).

        Equivalent to replacing ``pieces[index:]`` with its :meth:`mirrored`
        counterpart; used by the serializer to mirror one node's region inside
        the shared accumulator.  The pieces are mutated directly — the
        serializer owns every piece it appends, they are never shared — so no
        intermediate piece list or piece copies are built.  The total byte
        length is unchanged.
        """
        tail = self.pieces[index:]
        tail.reverse()
        for piece in tail:
            if isinstance(piece, Chunk):
                piece.data = piece.data[::-1]
            else:
                piece.mirrored = not piece.mirrored
        self.pieces[index:] = tail

    # -- assembly -------------------------------------------------------------

    def assemble(self, region_lengths: dict[tuple[str, tuple[int, ...]], int],
                 *, with_spans: bool = True
                 ) -> tuple[bytes, list[tuple[str | None, FieldPath | None, int, int]]]:
        """Resolve slots and concatenate all pieces.

        ``region_lengths`` maps ``(node name, repetition index context)`` to
        the measured serialized length of that node instance.  Returns the
        final byte string and the list of labelled spans
        ``(node, origin, start, end)`` for pieces that carry a node label
        (empty when ``with_spans`` is False — the plain ``serialize()`` path
        does not pay for span bookkeeping it discards).

        The output buffer is preallocated from the incrementally maintained
        total length instead of grown chunk by chunk.
        """
        if not with_spans:
            return b"".join(
                piece.data if type(piece) is Chunk
                else piece.resolve(region_lengths.get((piece.target, piece.context), 0))
                for piece in self.pieces
            ), []
        output = bytearray(self._length)
        spans: list[tuple[str | None, FieldPath | None, int, int]] = []
        position = 0
        for piece in self.pieces:
            if isinstance(piece, Chunk):
                data = piece.data
            else:
                length = region_lengths.get((piece.target, piece.context), 0)
                data = piece.resolve(length)
            end = position + len(data)
            output[position:end] = data
            if piece.node is not None:
                spans.append((piece.node, piece.origin, position, end))
            position = end
        if position != len(output):
            del output[position:]
        return bytes(output), spans
