"""High-level codec facade pairing a serializer and a parser for one graph.

A :class:`WireCodec` is the interpreted (non-generated) counterpart of the
library emitted by :mod:`repro.codegen`: it serializes logical messages into
their obfuscated wire form and parses them back.  The generated library and
the interpreted codec are required to be byte-for-byte interchangeable, which
the test suite checks.
"""

from __future__ import annotations

from random import Random

from ..core.graph import FormatGraph
from ..core.message import Message
from .parser import Parser
from .plan import CodecPlan, plan_for
from .serializer import Serializer
from .spans import FieldSpan


class WireCodec:
    """Serializer/parser pair for one (possibly obfuscated) format graph."""

    def __init__(self, graph: FormatGraph, *, seed: int | None = None,
                 rng: Random | None = None, plan: CodecPlan | None = None):
        if rng is None:
            rng = Random(seed if seed is not None else 0)
        self.graph = graph
        #: one compiled plan shared by both directions (cached per graph).
        self.plan = plan if plan is not None else plan_for(graph)
        self._serializer = Serializer(graph, rng=rng, plan=self.plan)
        self._parser = Parser(graph, plan=self.plan)

    def serialize(self, message: Message | dict) -> bytes:
        """Serialize a logical message into its wire representation."""
        return self._serializer.serialize(message)

    def serialize_with_spans(self, message: Message | dict) -> tuple[bytes, list[FieldSpan]]:
        """Serialize and return the wire field spans (PRE ground truth)."""
        return self._serializer.serialize_with_spans(message)

    def parse(self, data: bytes, *, strict: bool = True) -> Message:
        """Parse a wire message back into its logical representation."""
        return self._parser.parse(data, strict=strict)

    def round_trip(self, message: Message | dict) -> Message:
        """Serialize then parse ``message`` (used pervasively by tests)."""
        return self.parse(self.serialize(message))

    def round_trips(self, message: Message | dict) -> bool:
        """True when serialize→parse reproduces the logical message exactly."""
        logical = message if isinstance(message, Message) else Message.from_dict(message)
        return self.round_trip(logical) == logical
