"""Wire runtime: on-the-fly serialization and parsing of (obfuscated) messages."""

from .codec import WireCodec
from .parser import Parser, parse
from .pieces import Chunk, LengthSlot, PieceList
from .plan import CodecPlan, TerminalPlan, compile_plan, invalidate, plan_for
from .serializer import Serializer, serialize, serialize_with_spans
from .spans import FieldSpan, boundaries
from .window import Window

__all__ = [
    "Chunk",
    "CodecPlan",
    "FieldSpan",
    "LengthSlot",
    "Parser",
    "PieceList",
    "Serializer",
    "TerminalPlan",
    "Window",
    "WireCodec",
    "boundaries",
    "compile_plan",
    "invalidate",
    "parse",
    "plan_for",
    "serialize",
    "serialize_with_spans",
]
