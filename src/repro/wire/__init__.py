"""Wire runtime: on-the-fly serialization and parsing of (obfuscated) messages."""

from .codec import WireCodec
from .parser import Parser, parse
from .pieces import Chunk, LengthSlot, PieceList
from .serializer import Serializer, serialize, serialize_with_spans
from .spans import FieldSpan, boundaries
from .window import Window

__all__ = [
    "Chunk",
    "FieldSpan",
    "LengthSlot",
    "Parser",
    "PieceList",
    "Serializer",
    "Window",
    "WireCodec",
    "boundaries",
    "parse",
    "serialize",
    "serialize_with_spans",
]
