"""Wire runtime: on-the-fly serialization and parsing of (obfuscated) messages."""

from .codec import WireCodec
from .parser import Parser, parse
from .pieces import Chunk, LengthSlot, PieceList
from .plan import (
    CodecPlan,
    TerminalPlan,
    cache_stats,
    compile_plan,
    invalidate,
    plan_for,
    reset_cache_stats,
)
from .serializer import Serializer, serialize, serialize_with_spans
from .spans import FieldSpan, boundaries
from .streaming import (
    NEED_MORE,
    DecodedMessage,
    StreamingDecoder,
    StreamingParser,
    StreamSource,
    StreamWindow,
    decode_stream,
    is_self_framing,
    stream_greedy_nodes,
)
from .window import Window

__all__ = [
    "Chunk",
    "CodecPlan",
    "DecodedMessage",
    "FieldSpan",
    "LengthSlot",
    "NEED_MORE",
    "Parser",
    "PieceList",
    "Serializer",
    "StreamSource",
    "StreamWindow",
    "StreamingDecoder",
    "StreamingParser",
    "TerminalPlan",
    "Window",
    "WireCodec",
    "boundaries",
    "cache_stats",
    "compile_plan",
    "decode_stream",
    "invalidate",
    "is_self_framing",
    "parse",
    "plan_for",
    "reset_cache_stats",
    "serialize",
    "serialize_with_spans",
    "stream_greedy_nodes",
]
