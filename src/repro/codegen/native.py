"""Optional ahead-of-time compilation of emitted codec modules.

The specialized modules are plain Python and already clear the throughput
gate interpreted; when a supported compiler toolchain is installed the same
source can additionally be compiled to a native extension.  Two backends are
probed, in order:

* **mypyc** — compiles the emitted module as-is (it is already straight-line,
  monomorphic code, the shape mypyc optimizes best),
* **Cython** — ``cythonize`` in pure-Python mode.

Neither toolchain is a dependency of this project.  Every import, build and
load step is guarded: any missing package, compiler error or import failure
makes :func:`compile_native` return ``None`` and callers silently continue
with the pure-Python module.  The build is also gated behind an explicit
opt-in (the ``native=True`` argument or the ``REPRO_NATIVE_CODEC``
environment variable), so no workflow pays a compiler invocation by default.
"""

from __future__ import annotations

import importlib.util
import os
import tempfile
import types
from pathlib import Path

#: Environment variable enabling native compilation attempts ("1"/"true").
NATIVE_ENV = "REPRO_NATIVE_CODEC"


def native_enabled() -> bool:
    """True when the environment opts into native compilation attempts."""
    return os.environ.get(NATIVE_ENV, "").lower() in ("1", "true", "yes")


def available_backends() -> list[str]:
    """Names of the native backends importable in this interpreter."""
    backends = []
    for backend, probe in (("mypyc", "mypyc.build"), ("cython", "Cython.Build")):
        try:
            if importlib.util.find_spec(probe) is not None:
                backends.append(backend)
        except (ImportError, ValueError):
            continue
    return backends


def _load_extension(directory: Path, module_name: str) -> types.ModuleType | None:
    """Import the built extension from ``directory``, or ``None``."""
    for candidate in directory.glob(f"{module_name}.*"):
        if candidate.suffix in (".so", ".pyd"):
            spec = importlib.util.spec_from_file_location(module_name, candidate)
            if spec is None or spec.loader is None:
                return None
            module = importlib.util.module_from_spec(spec)
            try:
                spec.loader.exec_module(module)
            except Exception:
                return None
            return module
    return None


def _build_mypyc(source_path: Path, build_dir: Path) -> types.ModuleType | None:
    try:
        from mypyc.build import mypycify  # type: ignore[import-not-found]
        from setuptools.dist import Distribution
    except Exception:
        return None
    try:
        extensions = mypycify([str(source_path)], target_dir=str(build_dir))
        dist = Distribution({"ext_modules": extensions})
        cmd = dist.get_command_obj("build_ext")
        cmd.build_lib = str(build_dir)  # type: ignore[union-attr]
        cmd.ensure_finalized()  # type: ignore[union-attr]
        cmd.run()  # type: ignore[union-attr]
        return _load_extension(build_dir, source_path.stem)
    except Exception:
        return None


def _build_cython(source_path: Path, build_dir: Path) -> types.ModuleType | None:
    try:
        from Cython.Build import cythonize  # type: ignore[import-not-found]
        from setuptools.dist import Distribution
    except Exception:
        return None
    try:
        extensions = cythonize(
            [str(source_path)], quiet=True,
            compiler_directives={"language_level": "3"},
        )
        dist = Distribution({"ext_modules": extensions})
        cmd = dist.get_command_obj("build_ext")
        cmd.build_lib = str(build_dir)  # type: ignore[union-attr]
        cmd.ensure_finalized()  # type: ignore[union-attr]
        cmd.run()  # type: ignore[union-attr]
        return _load_extension(build_dir, source_path.stem)
    except Exception:
        return None


def compile_native(source: str, *, module_name: str = "repro_codec_native",
                   build_dir: str | Path | None = None) -> types.ModuleType | None:
    """Try to compile emitted codec ``source`` to a native extension module.

    Returns the loaded extension module, or ``None`` when no backend is
    installed or any step of the build fails — callers fall back to the
    pure-Python module with no behavioral difference (equivalence is a
    property of the *source*, which both paths share).
    """
    backends = available_backends()
    if not backends:
        return None
    directory = Path(build_dir) if build_dir is not None else Path(
        tempfile.mkdtemp(prefix="repro_native_")
    )
    source_path = directory / f"{module_name}.py"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        source_path.write_text(source, encoding="utf-8")
    except OSError:
        return None
    for backend in backends:
        builder = _build_mypyc if backend == "mypyc" else _build_cython
        module = builder(source_path, directory)
        if module is not None:
            module.__dict__.setdefault("__native_backend__", backend)
            return module
    return None


def maybe_native(source: str, fallback: types.ModuleType, *,
                 native: bool | None = None) -> types.ModuleType:
    """The native build of ``source`` when opted in and possible, else ``fallback``.

    ``native=None`` defers to the ``REPRO_NATIVE_CODEC`` environment switch.
    """
    if native is None:
        native = native_enabled()
    if not native:
        return fallback
    module = compile_native(source)
    return module if module is not None else fallback
