'''Fixed runtime preamble embedded in every generated serialization library.

The generated module is standalone: it does not import :mod:`repro`.  The
preamble provides the low-level helpers (byte reader, piece assembly with
derived-length slots, value codecs, message path access) that the generated
per-node functions call.  Everything protocol- and transformation-specific is
emitted by the emitter as literal arguments of those calls, so the preamble is
identical across generated libraries.
'''

PREAMBLE = '''
import random as _random

_TEXT_ENCODING = "latin-1"


class GeneratedCodecError(Exception):
    """Raised by the generated library on malformed input or missing fields."""


# --------------------------------------------------------------------------
# byte reader
# --------------------------------------------------------------------------


class _Reader:
    __slots__ = ("_data", "_start", "_end", "_cursor")

    def __init__(self, data, start=0, end=None):
        self._data = data
        self._start = start
        self._end = len(data) if end is None else end
        self._cursor = start

    def remaining(self):
        return self._end - self._cursor

    def at_end(self):
        return self._cursor >= self._end

    def starts_with(self, prefix):
        return self._data[self._cursor:min(self._cursor + len(prefix), self._end)] == prefix

    def read(self, count):
        if count < 0 or self.remaining() < count:
            raise GeneratedCodecError(
                "unexpected end of data: needed %d byte(s), %d available"
                % (count, self.remaining()))
        data = self._data[self._cursor:self._cursor + count]
        self._cursor += count
        return data

    def read_rest(self):
        return self.read(self.remaining())

    def read_until(self, delimiter):
        position = self._data.find(delimiter, self._cursor, self._end)
        if position < 0:
            raise GeneratedCodecError("delimiter %r not found" % (delimiter,))
        value = self._data[self._cursor:position]
        self._cursor = position + len(delimiter)
        return value

    def sub(self, length):
        if self.remaining() < length:
            raise GeneratedCodecError(
                "sub-window of %d byte(s) exceeds remaining %d" % (length, self.remaining()))
        child = _Reader(self._data, self._cursor, self._cursor + length)
        self._cursor += length
        return child


# --------------------------------------------------------------------------
# value codecs
# --------------------------------------------------------------------------


def _enc_uint(value, size, endian):
    return int(value).to_bytes(size, endian)


def _dec_uint(data, endian):
    return int.from_bytes(data, endian)


def _enc_value(value, kind, size, endian):
    if kind == "uint":
        return _enc_uint(value, size, endian)
    if isinstance(value, str):
        data = value.encode(_TEXT_ENCODING)
    else:
        data = bytes(value)
    if size is not None and len(data) != size:
        raise GeneratedCodecError(
            "fixed-size field expects %d byte(s), value has %d" % (size, len(data)))
    return data


def _dec_value(data, kind, endian):
    if kind == "uint":
        return _dec_uint(data, endian)
    if kind == "text":
        return data.decode(_TEXT_ENCODING)
    return bytes(data)


def _chain_step(value, kind, op, const, bytewise, width, inverse):
    if bytewise:
        data = _enc_value(value, kind, None, "big")
        out = bytearray()
        for byte in data:
            if op == "xor":
                out.append(byte ^ (const & 0xFF))
            elif (op == "add") != inverse:
                out.append((byte + const) % 256)
            else:
                out.append((byte - const) % 256)
        return _dec_value(bytes(out), kind, "big")
    modulus = 1 << (8 * width)
    value = int(value)
    if op == "xor":
        return value ^ (const % modulus)
    if (op == "add") != inverse:
        return (value + const) % modulus
    return (value - const) % modulus


def _chain_apply(value, kind, chain):
    for op, const, bytewise, width in chain:
        value = _chain_step(value, kind, op, const, bytewise, width, False)
    return value


def _chain_invert(value, kind, chain):
    for op, const, bytewise, width in reversed(chain):
        value = _chain_step(value, kind, op, const, bytewise, width, True)
    return value


def _combine(op, kind, width, first, second):
    if op == "cat":
        if isinstance(first, str) or isinstance(second, str):
            first = first if isinstance(first, str) else first.decode(_TEXT_ENCODING)
            second = second if isinstance(second, str) else second.decode(_TEXT_ENCODING)
            merged = first + second
            return merged if kind == "text" else merged.encode(_TEXT_ENCODING)
        merged = bytes(first) + bytes(second)
        return merged.decode(_TEXT_ENCODING) if kind == "text" else merged
    modulus = 1 << (8 * width)
    first, second = int(first), int(second)
    if op == "add":
        return (first + second) % modulus
    if op == "sub":
        return (first - second) % modulus
    return first ^ second


def _split_values(ctx, origin, op, kind, width, split_at):
    value = _msg_get(ctx["message"], _resolve(origin, ctx["idx"]))
    if value is None:
        raise GeneratedCodecError("missing logical field %r" % (origin,))
    rng = ctx["rng"]
    if op == "cat":
        data = value
        cut = split_at if split_at is not None else rng.randint(0, len(data))
        cut = max(0, min(cut, len(data)))
        return data[:cut], data[cut:]
    modulus = 1 << (8 * width)
    logical = int(value) % modulus
    share = rng.randrange(modulus)
    if op == "add":
        return share, (logical - share) % modulus
    if op == "sub":
        return share, (share - logical) % modulus
    return share, logical ^ share


# --------------------------------------------------------------------------
# logical message access
# --------------------------------------------------------------------------


def _resolve(path, indices):
    if path is None:
        return None
    resolved = []
    cursor = 0
    for step in path:
        if step == "*":
            resolved.append(indices[cursor])
            cursor += 1
        else:
            resolved.append(step)
    return tuple(resolved)


def _msg_get(message, path):
    current = message
    for step in path:
        if isinstance(step, str):
            if not isinstance(current, dict) or step not in current:
                return None
            current = current[step]
        else:
            if not isinstance(current, list) or not 0 <= step < len(current):
                return None
            current = current[step]
    return current


def _msg_set(message, path, value):
    current = message
    for position, step in enumerate(path):
        final = position == len(path) - 1
        if isinstance(step, str):
            if final:
                current[step] = value
                return
            nxt = current.get(step)
            if not isinstance(nxt, (dict, list)):
                nxt = [] if isinstance(path[position + 1], int) else {}
                current[step] = nxt
            current = nxt
        else:
            while len(current) <= step:
                current.append(None)
            if final:
                current[step] = value
                return
            nxt = current[step]
            if not isinstance(nxt, (dict, list)):
                nxt = [] if isinstance(path[position + 1], int) else {}
                current[step] = nxt
            current = nxt


def _msg_list_len(message, path):
    value = _msg_get(message, path)
    return len(value) if isinstance(value, list) else 0


# --------------------------------------------------------------------------
# serialization pieces (chunks and derived-length slots)
# --------------------------------------------------------------------------


def _out_bytes(out, data):
    if data:
        out.append(bytes(data))


def _out_slot(out, name, target, width, endian, chain, context):
    out.append({"target": target, "width": width, "endian": endian,
                "chain": chain, "mirrored": False, "context": context})


def _out_len(out):
    total = 0
    for piece in out:
        total += piece["width"] if isinstance(piece, dict) else len(piece)
    return total


def _out_mirror(out):
    mirrored = []
    for piece in reversed(out):
        if isinstance(piece, dict):
            flipped = dict(piece)
            flipped["mirrored"] = not piece["mirrored"]
            mirrored.append(flipped)
        else:
            mirrored.append(piece[::-1])
    return mirrored


def _close(ctx, out, sub, name, mirrored):
    if mirrored:
        sub = _out_mirror(sub)
    ctx["lengths"][(name, tuple(ctx["idx"]))] = _out_len(sub)
    out.extend(sub)


def _assemble(out, lengths):
    buffer = bytearray()
    for piece in out:
        if isinstance(piece, dict):
            length = lengths.get((piece["target"], piece["context"]), 0)
            value = _chain_apply(length, "uint", piece["chain"])
            data = _enc_uint(value % (1 << (8 * piece["width"])), piece["width"], piece["endian"])
            buffer += data[::-1] if piece["mirrored"] else data
        else:
            buffer += piece
    return bytes(buffer)


# --------------------------------------------------------------------------
# terminal serialization / parsing
# --------------------------------------------------------------------------


def _terminal_ser(ctx, out, name, origin, kind, endian, chain, mirrored, pad,
                  boundary, value_override=None):
    sub = []
    if pad:
        size = boundary[1]
        _out_bytes(sub, bytes(ctx["rng"].randrange(256) for _ in range(size)))
    elif name in _LENGTH_TARGETS and value_override is None:
        _out_slot(sub, name, _LENGTH_TARGETS[name], boundary[1], endian, chain,
                  tuple(ctx["idx"]))
    else:
        if value_override is not None:
            value = value_override
        elif name in _COUNTER_ORIGINS and origin is None:
            value = _msg_list_len(ctx["message"],
                                  _resolve(_COUNTER_ORIGINS[name], ctx["idx"]))
        else:
            value = _msg_get(ctx["message"], _resolve(origin, ctx["idx"]))
            if value is None:
                raise GeneratedCodecError("missing logical field %r" % (origin,))
        value = _chain_apply(value, kind, chain)
        size = boundary[1] if boundary[0] == "fixed" else None
        encoded = _enc_value(value, kind, size, endian)
        if boundary[0] == "delimited":
            if boundary[1] in encoded:
                raise GeneratedCodecError(
                    "value of %s contains its delimiter %r" % (name, boundary[1]))
            _out_bytes(sub, encoded)
            _out_bytes(sub, boundary[1])
        else:
            _out_bytes(sub, encoded)
    _close(ctx, out, sub, name, mirrored)


def _terminal_par(reader, ctx, name, kind, endian, chain, mirrored, pad, boundary,
                  prebounded=False):
    if prebounded:
        raw = reader.read_rest()
    elif boundary[0] == "fixed":
        raw = reader.read(boundary[1])
    elif boundary[0] == "delimited":
        raw = reader.read_until(boundary[1])
    elif boundary[0] == "length":
        raw = reader.read(_ref_val(ctx, boundary[1]))
    else:
        raw = reader.read_rest()
    if mirrored and not prebounded:
        raw = raw[::-1]
    if pad:
        return None
    value = _dec_value(raw, kind, endian)
    return _chain_invert(value, kind, chain)


def _store(ctx, msg, name, origin, value):
    if value is None:
        return
    ctx["raw"][name] = value
    if origin is not None:
        _msg_set(msg, _resolve(origin, ctx["idx"]), value)


def _ref_val(ctx, ref):
    if ref not in ctx["raw"]:
        raise GeneratedCodecError("reference %r not parsed yet" % (ref,))
    return int(ctx["raw"][ref])


# --------------------------------------------------------------------------
# composite helpers
# --------------------------------------------------------------------------


def _window_par(reader, ctx, boundary, mirrored, static_size):
    if mirrored:
        if boundary[0] == "fixed":
            region = reader.read(boundary[1])
        elif boundary[0] == "length":
            region = reader.read(_ref_val(ctx, boundary[1]))
        elif boundary[0] == "end":
            region = reader.read_rest()
        else:
            region = reader.read(static_size)
        return _Reader(region[::-1]), True
    if boundary[0] == "length":
        return reader.sub(_ref_val(ctx, boundary[1])), True
    return reader, False


def _check_consumed(reader, strict, name):
    if strict and not reader.at_end():
        raise GeneratedCodecError(
            "%d byte(s) left inside bounded node %s" % (reader.remaining(), name))


def _optional_present_ser(ctx, origin, presence_origin, presence_value):
    if presence_origin is not None:
        return _msg_get(ctx["message"], _resolve(presence_origin, ctx["idx"])) == presence_value
    if origin is None:
        return False
    return _msg_get(ctx["message"], _resolve(origin, ctx["idx"])) is not None


def _opt_present_par(reader, ctx, presence_ref, presence_value):
    if presence_ref is not None:
        if presence_ref not in ctx["raw"]:
            raise GeneratedCodecError("presence reference %r not parsed yet" % (presence_ref,))
        return ctx["raw"][presence_ref] == presence_value
    return not reader.at_end()


def _init_list(ctx, msg, origin):
    if origin is None:
        return
    path = _resolve(origin, ctx["idx"])
    if _msg_get(msg, path) is None:
        _msg_set(msg, path, [])
'''
