"""Loading generated serialization libraries.

The generated source can be written to disk and imported like any module, or
compiled and executed in memory for the benchmarks.  :class:`GeneratedCodec`
wraps a loaded module behind the same ``serialize`` / ``parse`` interface as
:class:`repro.wire.WireCodec`, which lets the test suite check that the two
are byte-for-byte interchangeable.
"""

from __future__ import annotations

import types
from pathlib import Path
from random import Random

from ..core.errors import CodegenError
from ..core.graph import FormatGraph
from ..core.message import Message
from .emitter import generate_module

_MODULE_COUNTER = 0


def load_source(source: str, *, module_name: str | None = None) -> types.ModuleType:
    """Compile and execute generated source code, returning the module object."""
    global _MODULE_COUNTER
    _MODULE_COUNTER += 1
    name = module_name or f"repro_generated_{_MODULE_COUNTER}"
    module = types.ModuleType(name)
    module.__dict__["__file__"] = f"<generated:{name}>"
    try:
        code = compile(source, module.__dict__["__file__"], "exec")
        exec(code, module.__dict__)
    except SyntaxError as exc:  # pragma: no cover - emitter bugs only
        raise CodegenError(f"generated module does not compile: {exc}") from exc
    return module


def write_module(source: str, path: str | Path) -> Path:
    """Write generated source code to ``path`` and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


class GeneratedCodec:
    """A loaded generated library exposed behind the WireCodec interface."""

    def __init__(self, graph: FormatGraph, *, seed: int | None = None,
                 source: str | None = None):
        self.graph = graph
        self.source = source if source is not None else generate_module(graph)
        self.module = load_source(self.source)
        self._rng = Random(seed if seed is not None else 0)

    def serialize(self, message: Message | dict) -> bytes:
        """Serialize a logical message with the generated library."""
        logical = message.to_dict() if isinstance(message, Message) else message
        return self.module.serialize(logical, rng=self._rng)

    def parse(self, data: bytes, *, strict: bool = True) -> Message:
        """Parse wire bytes with the generated library."""
        return Message(self.module.parse(data, strict=strict))

    def parse_ast(self, data: bytes) -> object:
        """Parse wire bytes into the generated AST struct classes."""
        return self.module.parse_ast(data)

    def round_trips(self, message: Message | dict) -> bool:
        """True when serialize→parse reproduces the logical message exactly."""
        logical = message if isinstance(message, Message) else Message.from_dict(message)
        return self.parse(self.serialize(logical)) == logical
