"""Loading generated serialization libraries.

The generated source can be written to disk and imported like any module, or
compiled and executed in memory for the benchmarks.  :class:`GeneratedCodec`
wraps a loaded module behind the same ``serialize`` / ``parse`` interface as
:class:`repro.wire.WireCodec`, which lets the test suite check that the two
are byte-for-byte interchangeable; :class:`SpecializedCodec` does the same
for the specializing emitter's straight-line modules, translating their
``GeneratedCodecError`` back into the interpreted runtime's typed errors.
"""

from __future__ import annotations

import types
from pathlib import Path
from random import Random

from ..core.errors import CodegenError, ParseError, SerializationError
from ..core.graph import FormatGraph
from ..core.message import Message
from .emitter import EMITTER_VERSION, generate_module

_MODULE_COUNTER = 0


def check_module_version(module: types.ModuleType) -> None:
    """Refuse a generated module emitted by a different emitter version.

    A stale module (e.g. an on-disk cache entry written by an older emitter)
    must be regenerated, never silently run: the emitted API and semantics are
    only guaranteed for the current :data:`EMITTER_VERSION`.
    """
    version = getattr(module, "__emitter_version__", None)
    if version != EMITTER_VERSION:
        raise CodegenError(
            f"generated module was emitted by emitter version {version!r}, "
            f"this runtime requires {EMITTER_VERSION!r}; regenerate it"
        )


def load_source(source: str, *, module_name: str | None = None,
                require_version: bool = False) -> types.ModuleType:
    """Compile and execute generated source code, returning the module object.

    A module *declaring* an emitter version other than the current one is
    always refused.  ``require_version=True`` additionally refuses modules
    carrying no version stamp at all (used for sources read back from disk,
    where an unstamped file is by definition stale).
    """
    global _MODULE_COUNTER
    _MODULE_COUNTER += 1
    name = module_name or f"repro_generated_{_MODULE_COUNTER}"
    module = types.ModuleType(name)
    module.__dict__["__file__"] = f"<generated:{name}>"
    try:
        code = compile(source, module.__dict__["__file__"], "exec")
        exec(code, module.__dict__)
    except SyntaxError as exc:  # pragma: no cover - emitter bugs only
        raise CodegenError(f"generated module does not compile: {exc}") from exc
    declared = getattr(module, "__emitter_version__", None)
    if declared is not None and declared != EMITTER_VERSION:
        raise CodegenError(
            f"generated module was emitted by emitter version {declared!r}, "
            f"this runtime requires {EMITTER_VERSION!r}; regenerate it"
        )
    if require_version and declared is None:
        raise CodegenError(
            "generated module carries no __emitter_version__ stamp; "
            f"this runtime requires {EMITTER_VERSION!r}; regenerate it"
        )
    return module


def write_module(source: str, path: str | Path) -> Path:
    """Write generated source code to ``path`` and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


class GeneratedCodec:
    """A loaded generated library exposed behind the WireCodec interface."""

    def __init__(self, graph: FormatGraph, *, seed: int | None = None,
                 source: str | None = None):
        self.graph = graph
        self.source = source if source is not None else generate_module(graph)
        self.module = load_source(self.source)
        self._rng = Random(seed if seed is not None else 0)

    def serialize(self, message: Message | dict) -> bytes:
        """Serialize a logical message with the generated library."""
        logical = message.to_dict() if isinstance(message, Message) else message
        return self.module.serialize(logical, rng=self._rng)

    def parse(self, data: bytes, *, strict: bool = True) -> Message:
        """Parse wire bytes with the generated library."""
        return Message(self.module.parse(data, strict=strict))

    def parse_ast(self, data: bytes) -> object:
        """Parse wire bytes into the generated AST struct classes."""
        return self.module.parse_ast(data)

    def round_trips(self, message: Message | dict) -> bool:
        """True when serialize→parse reproduces the logical message exactly."""
        logical = message if isinstance(message, Message) else Message.from_dict(message)
        return self.parse(self.serialize(logical)) == logical


class SpecializedCodec:
    """A loaded *specialized* module behind the WireCodec interface.

    Failures raised by the module's ``GeneratedCodecError`` are translated
    back into the interpreted runtime's typed errors with the same raw
    message, offset and node identity, so callers observe byte-for-byte
    identical behavior on malformed input.
    """

    def __init__(self, graph: FormatGraph, *, seed: int | None = None,
                 source: str | None = None,
                 module: types.ModuleType | None = None):
        self.graph = graph
        if module is not None:
            self.source = source
            self.module = module
        else:
            if source is None:
                source = generate_module(graph, specialize=True)
            self.source = source
            self.module = load_source(source)
        self._error = self.module.GeneratedCodecError
        self._rng = Random(seed if seed is not None else 0)

    def serialize(self, message: Message | dict) -> bytes:
        """Serialize a logical message with the specialized module."""
        logical = message.to_dict() if isinstance(message, Message) else message
        try:
            return self.module.serialize(logical, rng=self._rng)
        except self._error as exc:
            raise SerializationError(exc.raw) from exc

    def parse(self, data: bytes, *, strict: bool = True) -> Message:
        """Parse wire bytes with the specialized module."""
        try:
            return Message(self.module.parse(data, strict=strict))
        except self._error as exc:
            raise ParseError(exc.raw, offset=exc.offset, node=exc.node) from exc

    def round_trips(self, message: Message | dict) -> bool:
        """True when serialize→parse reproduces the logical message exactly."""
        logical = message if isinstance(message, Message) else Message.from_dict(message)
        return self.parse(self.serialize(logical)) == logical
