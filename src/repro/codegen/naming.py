"""Identifier naming helpers for the code generator."""

from __future__ import annotations

import keyword
import re

from ..core.fieldpath import INDEX, FieldPath

_IDENTIFIER_RE = re.compile(r"[^0-9A-Za-z_]")


def sanitize(name: str) -> str:
    """Turn an arbitrary node name into a valid Python identifier fragment."""
    cleaned = _IDENTIFIER_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"n_{cleaned}"
    if keyword.iskeyword(cleaned):
        cleaned = f"{cleaned}_"
    return cleaned


def struct_class(name: str) -> str:
    """Name of the generated AST struct class of a node."""
    return f"S_{sanitize(name)}"


def serializer_function(name: str) -> str:
    """Name of the generated serializer function of a node."""
    return f"_ser_{sanitize(name)}"


def parser_function(name: str) -> str:
    """Name of the generated parser function of a node."""
    return f"_par_{sanitize(name)}"


def accessor_suffix(path: FieldPath) -> str:
    """Accessor name fragment derived from a logical field path."""
    parts = [str(step) for step in path if step is not INDEX]
    return sanitize("_".join(parts)) if parts else "root"
