"""The specializing code generator (native-speed codec tier).

Where :func:`repro.codegen.emitter.generate_module` emits a *readable mirror*
of the interpreted runtime (one function per graph node, dict-based piece
assembly), this module compiles a format graph into **straight-line code**:
one ``parse`` and one ``serialize`` function with every graph-level decision
resolved at emit time.

* the parser runs over the raw ``bytes`` buffer with explicit offset/limit
  variables instead of :class:`~repro.wire.window.Window` objects; mirrored
  regions are extracted through a ``memoryview`` with a single reversed copy,
* runs of consecutive fixed-size terminals fuse into one
  ``struct.Struct.unpack_from`` / ``pack`` call,
* delimiter scans compile to ``bytes.find`` against pre-encoded terminators,
* codec chains inline as local-variable pipelines — masked int arithmetic for
  integer chains, module-level 256-byte translation tables for byte-wise
  chains,
* serialization appends into one shared ``bytearray``; derived length fields
  are emitted as zero placeholders and back-patched in place once their
  region has been measured (no :class:`~repro.wire.pieces.PieceList`).

The emitted module raises ``GeneratedCodecError`` carrying the *same* raw
message, offset and node identity as the interpreted runtime's
:class:`~repro.core.errors.ParseError`, so the
:class:`~repro.codegen.loader.SpecializedCodec` wrapper can translate
failures into byte-for-byte identical typed errors.
"""

from __future__ import annotations

from ..core.boundary import BoundaryKind
from ..core.errors import CodegenError
from ..core.fieldpath import INDEX, FieldPath
from ..core.graph import FormatGraph
from ..core.node import Node, NodeType
from ..core.values import SynthesisOp, ValueKind, ValueOp, ValueOpKind
from ..wire.plan import _byte_tables, _compute_static_sizes

_UINT_FMT = {1: "B", 2: "H", 4: "I", 8: "Q"}


# ---------------------------------------------------------------------------
# chain folding
# ---------------------------------------------------------------------------


def _int_steps(chain: tuple[ValueOp, ...], *, inverse: bool
               ) -> list[tuple[str, int, int]] | None:
    """``(op, constant, mask)`` steps of a pure-integer chain, or ``None``.

    Mirrors the normalization of :func:`repro.wire.plan._int_chain_fn`:
    subtractions (and inverted additions) become additions of the modular
    complement, so each op is one ``(v + c) & mask`` or ``v ^ c`` step.
    """
    steps: list[tuple[str, int, int]] = []
    ordered = reversed(chain) if inverse else chain
    for op in ordered:
        if op.bytewise or op.width is None:
            return None
        modulus = 1 << (8 * op.width)
        mask = modulus - 1
        constant = op.constant % modulus
        if op.kind is ValueOpKind.XOR:
            steps.append(("xor", constant, mask))
        elif (op.kind is ValueOpKind.ADD) != inverse:
            steps.append(("add", constant, mask))
        else:
            steps.append(("add", (modulus - constant) & mask, mask))
    return steps


def _fold_int_steps(expr: str, steps: list[tuple[str, int, int]]) -> str:
    """Fold integer chain steps around ``expr`` as one nested expression."""
    for op, constant, mask in steps:
        if op == "add":
            expr = f"(({expr} + {constant}) & {mask})"
        else:
            # XOR is applied without a result mask, exactly like ValueOp.
            expr = f"({expr} ^ {constant})"
    return expr


def _chain_literal(chain: tuple[ValueOp, ...]) -> str:
    """Render a chain as op tuples for the generic preamble interpreters."""
    rendered = [
        f"({op.kind.value!r}, {op.constant}, {op.bytewise}, {op.width!r})"
        for op in chain
    ]
    if len(rendered) == 1:
        return f"({rendered[0]},)"
    return "(" + ", ".join(rendered) + ")"


# ---------------------------------------------------------------------------
# emit-time window state
# ---------------------------------------------------------------------------


class _Win:
    """Names of the buffer/offset/limit variables of the current byte window."""

    __slots__ = ("buf", "off", "end", "mv")

    def __init__(self, buf: str, off: str, end: str, mv: str | None = None):
        self.buf = buf
        self.off = off
        self.end = end
        #: name of the buffer's memoryview variable (zero-copy mirrored
        #: region extraction), when one was emitted for this buffer.
        self.mv = mv

    def bounded(self, end: str) -> "_Win":
        return _Win(self.buf, self.off, end, self.mv)


class _SpecEmitter:
    """Builds the specialized module source for one format graph."""

    def __init__(self, graph: FormatGraph, *, plan_fingerprint: str | None = None,
                 codec_key: str | None = None, emitter_version: str = "?"):
        self.graph = graph
        self.fingerprint = (
            plan_fingerprint if plan_fingerprint is not None
            else getattr(graph, "plan_fingerprint", None)
        )
        self.codec_key = codec_key
        self.emitter_version = emitter_version
        self.nodes = list(graph.nodes())
        self.index = {node.name: i for i, node in enumerate(self.nodes)}
        self.node_map = {node.name: node for node in self.nodes}
        # Reference maps, replicating compile_plan's construction order
        # (length: last bounded node per ref wins; counter: first wins).
        self.length_sources: dict[str, str] = {}
        self.counter_sources: dict[str, Node] = {}
        self.presence_refs: set[str] = set()
        for node in self.nodes:
            kind = node.boundary.kind
            if kind is BoundaryKind.LENGTH and node.boundary.ref is not None:
                self.length_sources[node.boundary.ref] = node.name
            elif kind is BoundaryKind.COUNTER and node.boundary.ref is not None:
                self.counter_sources.setdefault(node.boundary.ref, node)
            if node.type is NodeType.OPTIONAL and node.presence_ref is not None:
                self.presence_refs.add(node.presence_ref)
        self.length_targets = frozenset(self.length_sources.values())
        self.ref_targets = frozenset(self.length_sources) | frozenset(self.counter_sources)
        self.static_sizes = _compute_static_sizes(graph.root)
        # -- emission state ---------------------------------------------------
        self.cur: list[str] = []
        self.ind = 0
        self._n = 0
        self._ploops: list[str] = []
        self._sloops: list[str] = []
        self._assigned: set[str] = set()
        self._pdecls: set[str] = set()
        # -- module-level constants (deduplicated) ----------------------------
        self._structs: dict[str, str] = {}
        self._tables: dict[bytes, str] = {}
        self._zeros: set[int] = set()
        self._resolvers: dict[tuple, int] = {}
        self._needs: set[str] = set()

    # -- writer ---------------------------------------------------------------

    def w(self, line: str = "") -> None:
        self.cur.append("    " * self.ind + line if line else "")

    def var(self, prefix: str) -> str:
        self._n += 1
        return f"{prefix}{self._n}"

    def vvar(self, name: str) -> str:
        """The local variable holding the decoded value of terminal ``name``."""
        return f"v{self.index[name]}"

    # -- constants ------------------------------------------------------------

    def struct_const(self, fmt: str) -> str:
        name = self._structs.get(fmt)
        if name is None:
            name = f"_S{len(self._structs)}"
            self._structs[fmt] = name
        self._needs.add("struct")
        return name

    def table_const(self, table: bytes) -> str:
        name = self._tables.get(table)
        if name is None:
            name = f"_T{len(self._tables)}"
            self._tables[table] = name
        return name

    def zero_const(self, width: int) -> str:
        self._zeros.add(width)
        return f"_Z{width}"

    def resolver_id(self, width: int, endian: str, chain: tuple[ValueOp, ...]) -> int:
        key = (width, endian, chain)
        rid = self._resolvers.get(key)
        if rid is None:
            rid = len(self._resolvers)
            self._resolvers[key] = rid
        return rid

    # -- field paths ----------------------------------------------------------

    def bind_steps(self, path: FieldPath, loops: list[str]) -> list[tuple[str, str]]:
        """Bind the INDEX markers of ``path`` to the enclosing loop variables.

        Returns ``(kind, token)`` pairs: ``("k", repr(key))`` for dict keys,
        ``("i", varname_or_int)`` for list indices.
        """
        bound: list[tuple[str, str]] = []
        cursor = 0
        for step in path.steps:
            if step is INDEX:
                if cursor >= len(loops):
                    raise CodegenError(
                        f"cannot specialize {path}: needs more than "
                        f"{len(loops)} bound repetition indices"
                    )
                bound.append(("i", loops[cursor]))
                cursor += 1
            elif isinstance(step, str):
                bound.append(("k", repr(step)))
            else:
                bound.append(("i", str(step)))
        return bound

    def path_display(self, path: FieldPath, loops: list[str]) -> str:
        """Source of a runtime expression rendering the resolved path string."""
        parts: list[str] = []
        args: list[str] = []
        cursor = 0
        for step in path.steps:
            if isinstance(step, str):
                parts.append(("." if parts else "") + step)
            elif step is INDEX:
                if cursor < len(loops):
                    parts.append("[%d]")
                    args.append(loops[cursor])
                else:  # pragma: no cover - rejected earlier by bind_steps
                    parts.append("[*]")
                cursor += 1
            else:
                parts.append(f"[{step}]")
        literal = repr("".join(parts))
        if args:
            return f"({literal} % ({', '.join(args)},))"
        return literal

    def steps_literal(self, bound: list[tuple[str, str]]) -> str:
        tokens = [token for _, token in bound]
        if len(tokens) == 1:
            return f"({tokens[0]},)"
        return "(" + ", ".join(tokens) + ")"

    # -- message accessors (inline fast shapes + generic fallback) ------------

    def emit_get(self, dst: str, path: FieldPath, loops: list[str],
                 src: str = "message") -> None:
        """Emit statements assigning ``dst`` the value at ``path`` (or None)."""
        bound = self.bind_steps(path, loops)
        kinds = "".join(kind for kind, _ in bound)
        if kinds == "k":
            self.w(f"{dst} = {src}.get({bound[0][1]})")
            return
        if kinds == "kk":
            c = self.var("c")
            self.w(f"{c} = {src}.get({bound[0][1]})")
            self.w(f"{dst} = {c}.get({bound[1][1]}) if isinstance({c}, dict) else None")
            return
        if kinds == "kik":
            c, d = self.var("c"), self.var("c")
            iv = bound[1][1]
            self.w(f"{c} = {src}.get({bound[0][1]})")
            self.w(f"if isinstance({c}, list) and {iv} < len({c}):")
            self.w(f"    {d} = {c}[{iv}]")
            self.w(f"    {dst} = {d}.get({bound[2][1]}) if isinstance({d}, dict) else None")
            self.w("else:")
            self.w(f"    {dst} = None")
            return
        self._needs.add("paths")
        self.w(f"{dst} = _get_path({src}, {self.steps_literal(bound)})")

    def emit_set(self, path: FieldPath, loops: list[str], value: str,
                 dst: str = "msg") -> None:
        """Emit statements storing ``value`` at ``path`` inside ``dst``."""
        bound = self.bind_steps(path, loops)
        kinds = "".join(kind for kind, _ in bound)
        if kinds == "k":
            self.w(f"{dst}[{bound[0][1]}] = {value}")
            return
        if kinds == "kk":
            c = self.var("c")
            self.w(f"{c} = {dst}.get({bound[0][1]})")
            self.w(f"if not isinstance({c}, dict):")
            self.w(f"    {c} = {{}}")
            self.w(f"    {dst}[{bound[0][1]}] = {c}")
            self.w(f"{c}[{bound[1][1]}] = {value}")
            return
        if kinds == "kik":
            c, d = self.var("c"), self.var("c")
            iv = bound[1][1]
            self.w(f"{c} = {dst}.get({bound[0][1]})")
            self.w(f"if not isinstance({c}, list):")
            self.w(f"    {c} = []")
            self.w(f"    {dst}[{bound[0][1]}] = {c}")
            self.w(f"while len({c}) <= {iv}:")
            self.w(f"    {c}.append(None)")
            self.w(f"{d} = {c}[{iv}]")
            self.w(f"if not isinstance({d}, dict):")
            self.w(f"    {d} = {{}}")
            self.w(f"    {c}[{iv}] = {d}")
            self.w(f"{d}[{bound[2][1]}] = {value}")
            return
        self._needs.add("paths")
        self.w(f"_set_path({dst}, {self.steps_literal(bound)}, {value})")

    def emit_list_init(self, path: FieldPath, loops: list[str],
                       dst: str = "msg") -> None:
        bound = self.bind_steps(path, loops)
        if len(bound) == 1 and bound[0][0] == "k":
            key = bound[0][1]
            self.w(f"if {key} not in {dst}:")
            self.w(f"    {dst}[{key}] = []")
            return
        self._needs.add("paths")
        self.w(f"_ensure_list({dst}, {self.steps_literal(bound)})")

    # ======================================================================
    # parse emission
    # ======================================================================

    def _p_raise(self, msg_expr: str, off_expr: str, node: str | None) -> None:
        self.w(f"raise _E({msg_expr}, {off_expr}, {node!r})")

    def _p_ref_int(self, ref: str, node_name: str, st: _Win, *,
                   wrapped: bool) -> str:
        """Emit the ``ref_value`` checks for ``ref``; return the value expr.

        ``wrapped`` replays the :meth:`Parser._terminal_bytes` rewrapping:
        the inner error string (with its own suffix) becomes the raw message
        and the error carries ``offset=win.cursor``.
        """
        ref_node = self.node_map.get(ref)
        if ref_node is None or ref_node.type is not NodeType.TERMINAL or ref_node.is_pad:
            # The reference can never have been parsed.
            if wrapped:
                raw = f"reference {ref!r} has not been parsed yet [node={node_name!r}]"
                self._p_raise(repr(raw), st.off, node_name)
            else:
                raw = f"reference {ref!r} has not been parsed yet"
                self._p_raise(repr(raw), "None", node_name)
            return "0"
        v = self.vvar(ref)
        if v not in self._assigned:
            self._pdecls.add(v)
            if wrapped:
                raw = f"reference {ref!r} has not been parsed yet [node={node_name!r}]"
                self.w(f"if {v} is None:")
                self.ind += 1
                self._p_raise(repr(raw), st.off, node_name)
                self.ind -= 1
            else:
                raw = f"reference {ref!r} has not been parsed yet"
                self.w(f"if {v} is None:")
                self.ind += 1
                self._p_raise(repr(raw), "None", node_name)
                self.ind -= 1
        if ref_node.value_kind is not ValueKind.UINT:
            if wrapped:
                raw = f"reference {ref!r} is not an integer [node={node_name!r}]"
                self._p_raise(repr(raw), st.off, node_name)
            else:
                raw = f"reference {ref!r} is not an integer"
                self._p_raise(repr(raw), "None", node_name)
        return v

    # -- terminal byte consumption --------------------------------------------

    def _p_fixed_guard(self, st: _Win, size: str | int, node: str | None) -> None:
        """Bounds check replaying Window.read's error through the rewrap."""
        if node is not None:
            self._needs.add("eof")
            self.w(f"if {st.off} + {size} > {st.end}:")
            self.w(f"    _eof({size}, {st.end} - {st.off}, {st.off}, {node!r})")
        else:
            self._needs.add("eof0")
            self.w(f"if {st.off} + {size} > {st.end}:")
            self.w(f"    _eof0({size}, {st.end} - {st.off}, {st.off})")

    def _p_terminal_raw(self, node: Node, st: _Win, prebounded: bool) -> str:
        """Emit consumption of one terminal's wire bytes; return the raw expr.

        The returned expression is a ``bytes`` slice (callers slice lazily:
        pads never materialize it, one-byte uints index instead).
        """
        name = node.name
        if prebounded:
            raw = f"{st.buf}[{st.off}:{st.end}]"
            return raw
        kind = node.boundary.kind
        if kind is BoundaryKind.FIXED:
            size = node.boundary.size or 0
            self._p_fixed_guard(st, size, name)
            return f"{st.buf}[{st.off}:{st.off} + {size}]"
        if kind is BoundaryKind.DELIMITED:
            delim = node.boundary.delimiter or b""
            if not delim:
                self._p_raise(repr("cannot search for an empty delimiter"),
                              st.off, name)
                return "b''"
            p = self.var("p")
            self.w(f"{p} = {st.buf}.find({delim!r}, {st.off}, {st.end})")
            self.w(f"if {p} < 0:")
            template = f"delimiter {delim!r} not found [offset=%d]"
            self.w(f"    raise _E({template!r} % {st.off}, {st.off}, {name!r})")
            return f"{st.buf}[{st.off}:{p}]"
        if kind is BoundaryKind.LENGTH:
            length = self._p_ref_int(node.boundary.ref or "", name, st, wrapped=True)
            self.w(f"if {length} < 0:")
            template = "cannot read a negative number of bytes (%d)"
            self.w(f"    raise _E({template!r} % {length}, {st.off}, {name!r})")
            self._p_fixed_guard(st, length, name)
            return f"{st.buf}[{st.off}:{st.off} + {length}]"
        # END / DELEGATED: the rest of the window.
        return f"{st.buf}[{st.off}:{st.end}]"

    def _p_advance(self, node: Node, st: _Win, prebounded: bool, raw: str) -> None:
        """Advance the offset past the bytes of ``raw`` (kind-specific)."""
        if prebounded:
            self.w(f"{st.off} = {st.end}")
            return
        kind = node.boundary.kind
        if kind is BoundaryKind.FIXED:
            self.w(f"{st.off} += {node.boundary.size or 0}")
        elif kind is BoundaryKind.DELIMITED:
            # raw is buf[off:pN]; the find position is embedded in the expr.
            p = raw.rsplit(":", 1)[1].rstrip("]")
            self.w(f"{st.off} = {p} + {len(node.boundary.delimiter or b'')}")
        elif kind is BoundaryKind.LENGTH:
            length = raw.rsplit("+ ", 1)[1].rstrip("]")
            self.w(f"{st.off} += {length}")
        else:
            self.w(f"{st.off} = {st.end}")

    # -- terminal decoding ----------------------------------------------------

    def _p_decode(self, node: Node, raw: str, dst: str) -> None:
        """Emit the decode of ``raw`` into ``dst`` (chain inversion fused)."""
        kind = node.value_kind
        chain = node.codec_chain
        if kind is ValueKind.UINT:
            base = f"int.from_bytes({raw}, {node.endian.value!r})"
            if not chain:
                self.w(f"{dst} = {base}")
                return
            steps = _int_steps(chain, inverse=True)
            if steps is not None:
                self.w(f"{dst} = {_fold_int_steps(base, steps)}")
                return
            self._needs.add("chains")
            self.w(f"{dst} = _chain_invert({base}, 'uint', {_chain_literal(chain)})")
            return
        if kind is ValueKind.BYTES:
            if not chain:
                self.w(f"{dst} = {raw}")
                return
            if all(op.bytewise for op in chain):
                _, inverse = _byte_tables(chain)
                self.w(f"{dst} = {raw}.translate({self.table_const(inverse)})")
                return
            self._needs.add("chains")
            self.w(f"{dst} = _chain_invert({raw}, 'bytes', {_chain_literal(chain)})")
            return
        # TEXT
        if not chain:
            self.w(f"{dst} = {raw}.decode('latin-1')")
            return
        if all(op.bytewise for op in chain):
            _, inverse = _byte_tables(chain)
            self.w(f"{dst} = {raw}.translate({self.table_const(inverse)})"
                   f".decode('latin-1')")
            return
        self._needs.add("chains")
        self.w(f"{dst} = _chain_invert({raw}.decode('latin-1'), 'text', "
               f"{_chain_literal(chain)})")

    def _p_terminal(self, node: Node, st: _Win, *, prebounded: bool = False,
                    store_origin: bool = True) -> None:
        """Emit parse + store of one terminal (the _parse_terminal path)."""
        if node.is_pad:
            # Pads consume their extent and are discarded: zero-copy skip.
            if prebounded:
                self.w(f"{st.off} = {st.end}")
                return
            kind = node.boundary.kind
            if kind is BoundaryKind.FIXED:
                size = node.boundary.size or 0
                self._p_fixed_guard(st, size, node.name)
                self.w(f"{st.off} += {size}")
                return
            raw = self._p_terminal_raw(node, st, prebounded)
            self._p_advance(node, st, prebounded, raw)
            return
        dst = self.vvar(node.name)
        fixed1 = (not prebounded and node.boundary.kind is BoundaryKind.FIXED
                  and (node.boundary.size or 0) == 1
                  and node.value_kind is ValueKind.UINT)
        if fixed1:
            # One-byte unsigned integer: index the buffer, no slice.
            self._p_fixed_guard(st, 1, node.name)
            base = f"{st.buf}[{st.off}]"
            chain = node.codec_chain
            if not chain:
                self.w(f"{dst} = {base}")
            else:
                steps = _int_steps(chain, inverse=True)
                if steps is not None:
                    self.w(f"{dst} = {_fold_int_steps(base, steps)}")
                else:
                    self._needs.add("chains")
                    self.w(f"{dst} = _chain_invert({base}, 'uint', "
                           f"{_chain_literal(node.codec_chain)})")
            self.w(f"{st.off} += 1")
        else:
            raw = self._p_terminal_raw(node, st, prebounded)
            self._p_decode(node, raw, dst)
            self._p_advance(node, st, prebounded, raw)
        self._assigned.add(dst)
        if store_origin and node.origin is not None:
            self.emit_set(node.origin, self._ploops, dst)

    # -- mirrored regions ------------------------------------------------------

    def _p_region(self, node: Node, st: _Win) -> _Win:
        """Emit extraction of a mirrored node's byte region (reversed).

        Replays :meth:`Parser._extract_region`: errors propagate *unwrapped*.
        Returns the window over the reversed region buffer.
        """
        kind = node.boundary.kind
        name = node.name
        size_expr: str | None
        if kind is BoundaryKind.FIXED:
            size_expr = str(node.boundary.size or 0)
        elif kind is BoundaryKind.LENGTH:
            size_expr = self._p_ref_int(node.boundary.ref or "", name, st,
                                        wrapped=False)
            self.w(f"if {size_expr} < 0:")
            template = "cannot read a negative number of bytes (%d)"
            self.w(f"    raise _E({template!r} % {size_expr}, None, None)")
        elif kind is BoundaryKind.END:
            size_expr = f"{st.end} - {st.off}"
        else:
            static = self.static_sizes.get(name)
            if static is None:
                self._p_raise(
                    repr("mirrored node has no parse-time determinable extent"),
                    "None", name)
                return st
            size_expr = str(static)
        if kind is not BoundaryKind.END:
            self._p_fixed_guard(st, size_expr, None)
        buf = self.var("r")
        if st.mv is not None:
            # Zero-copy: one reversed copy straight off the memoryview.
            self.w(f"{buf} = bytes({st.mv}[{st.off}:{st.off} + {size_expr}][::-1])")
        else:
            self.w(f"{buf} = {st.buf}[{st.off}:{st.off} + {size_expr}][::-1]")
        self.w(f"{st.off} += {size_expr}")
        off, end = self.var("o"), self.var("e")
        self.w(f"{off} = 0")
        self.w(f"{end} = len({buf})")
        return _Win(buf, off, end)

    # -- composite windows -----------------------------------------------------

    def _p_window(self, node: Node, st: _Win, prebounded: bool
                  ) -> tuple[_Win, bool]:
        """Replay :meth:`Parser._composite_window` at emit time."""
        if prebounded:
            return st, True
        if node.boundary.kind is BoundaryKind.LENGTH:
            length = self._p_ref_int(node.boundary.ref or "", node.name, st,
                                     wrapped=False)
            self.w(f"if {length} < 0:")
            template = "negative sub-window length (%d)"
            self.w(f"    raise _E({template!r} % {length}, None, None)")
            self.w(f"if {st.end} - {st.off} < {length}:")
            template = "sub-window of %d byte(s) exceeds the %d remaining byte(s)"
            self.w(f"    raise _E({template!r} % ({length}, {st.end} - {st.off}), "
                   f"{st.off}, None)")
            end = self.var("e")
            self.w(f"{end} = {st.off} + {length}")
            return st.bounded(end), True
        return st, False

    def _p_strict_check(self, node: Node, st: _Win) -> None:
        self.w(f"if {st.off} != {st.end}:")
        template = "%d byte(s) left inside bounded node"
        self.w(f"    raise _E({template!r} % ({st.end} - {st.off}), "
               f"{st.off}, {node.name!r})")

    # -- node dispatch ---------------------------------------------------------

    def _p_node(self, node: Node, st: _Win, *, prebounded: bool = False) -> None:
        if node.mirrored and not prebounded:
            sub = self._p_region(node, st)
            if sub is not st:
                self._p_node(node, sub, prebounded=True)
            return
        if node.type is NodeType.TERMINAL:
            self._p_terminal(node, st, prebounded=prebounded)
            return
        inner, strict = self._p_window(node, st, prebounded)
        if node.type is NodeType.SEQUENCE:
            if node.synthesis is not None:
                self._p_synthesis(node, inner)
            else:
                self._p_sequence(node, inner)
        elif node.type is NodeType.OPTIONAL:
            self._p_optional(node, inner)
        else:  # REPETITION / TABULAR
            self._p_repetition(node, inner, prebounded=prebounded)
        if strict:
            self._p_strict_check(node, inner)

    # -- sequences with struct-run fusion --------------------------------------

    def _p_run_member(self, child: Node) -> tuple[str, str] | None:
        """``(struct format, endian)`` of a fusable child, or ``None``."""
        if child.type is not NodeType.TERMINAL or child.mirrored:
            return None
        if child.boundary.kind is not BoundaryKind.FIXED:
            return None
        size = child.boundary.size or 0
        if size <= 0:
            return None
        if child.is_pad:
            return f"{size}x", ""
        if child.value_kind is ValueKind.UINT:
            fmt = _UINT_FMT.get(size)
            if fmt is None:
                return None
            endian = "" if size == 1 else child.endian.value
            return fmt, endian
        return f"{size}s", ""

    def _p_sequence(self, node: Node, st: _Win) -> None:
        children = node.children
        i = 0
        while i < len(children):
            run: list[tuple[Node, str, str]] = []
            endian = ""
            j = i
            while j < len(children):
                member = self._p_run_member(children[j])
                if member is None:
                    break
                fmt, member_endian = member
                if member_endian and endian and member_endian != endian:
                    break
                run.append((children[j], fmt, member_endian))
                if member_endian:
                    endian = member_endian
                j += 1
            if len(run) >= 2:
                self._p_emit_run(run, endian or "big", st)
                i = j
                continue
            child = children[i]
            self._p_node(child, st)
            i += 1

    def _p_emit_run(self, run: list[tuple[Node, str, str]], endian: str,
                    st: _Win) -> None:
        """Fuse a run of fixed-size terminals into one unpack_from call."""
        fmt = (">" if endian == "big" else "<") + "".join(f for _, f, _ in run)
        total = sum((child.boundary.size or 0) for child, _, _ in run)
        parts = ", ".join(
            f"({child.name!r}, {child.boundary.size or 0})" for child, _, _ in run
        )
        self._needs.add("runfail")
        self.w(f"if {st.off} + {total} > {st.end}:")
        self.w(f"    _run_fail({st.off}, {st.end} - {st.off}, ({parts}))")
        struct_name = self.struct_const(fmt)
        targets: list[str] = []
        post: list[tuple[Node, str]] = []
        for child, _, _ in run:
            if child.is_pad:
                continue
            dst = self.vvar(child.name)
            if child.value_kind is ValueKind.UINT and not child.codec_chain:
                targets.append(dst)
            else:
                tmp = self.var("u")
                targets.append(tmp)
                post.append((child, tmp))
        if targets:
            head = ", ".join(targets) + ("," if len(targets) == 1 else "")
            self.w(f"{head} = {struct_name}.unpack_from({st.buf}, {st.off})")
        self.w(f"{st.off} += {total}")
        for child, tmp in post:
            dst = self.vvar(child.name)
            kind = child.value_kind
            chain = child.codec_chain
            if kind is ValueKind.UINT:
                steps = _int_steps(chain, inverse=True)
                if steps is not None:
                    self.w(f"{dst} = {_fold_int_steps(tmp, steps)}")
                else:
                    self._needs.add("chains")
                    self.w(f"{dst} = _chain_invert({tmp}, 'uint', "
                           f"{_chain_literal(chain)})")
            elif kind is ValueKind.BYTES:
                self._p_decode(child, tmp, dst)
            else:  # TEXT: unpack produced bytes
                self._p_decode(child, tmp, dst)
        for child, _, _ in run:
            if child.is_pad:
                continue
            dst = self.vvar(child.name)
            self._assigned.add(dst)
            if child.origin is not None:
                self.emit_set(child.origin, self._ploops, dst)

    # -- synthesis --------------------------------------------------------------

    def _p_synthesis(self, node: Node, st: _Win) -> None:
        shares: list[Node] = []
        for child in node.children:
            if child.name in self.ref_targets:
                self._p_node(child, st)
                continue
            shares.append(child)
            if child.mirrored:
                sub = self._p_region(child, st)
                if sub is not st:
                    self._p_terminal(child, sub, prebounded=True,
                                     store_origin=False)
            else:
                self._p_terminal(child, st, store_origin=False)
        if len(shares) != 2:
            raw = (f"synthesis node {node.name!r} expected two value children, "
                   f"found {len(shares)}")
            self._p_raise(repr(raw), "None", None)
            return
        synthesis = node.synthesis
        assert synthesis is not None
        first, second = self.vvar(shares[0].name), self.vvar(shares[1].name)
        combined = self.var("y")
        if synthesis.op is SynthesisOp.CAT:
            self._p_emit_cat(synthesis, shares, first, second, combined)
        else:
            if synthesis.width is None:
                raise CodegenError(
                    f"synthesis node {node.name!r} carries no width"
                )
            modulus = 1 << (8 * synthesis.width)
            if synthesis.op is SynthesisOp.ADD:
                self.w(f"{combined} = ({first} + {second}) % {modulus}")
            elif synthesis.op is SynthesisOp.SUB:
                self.w(f"{combined} = ({first} - {second}) % {modulus}")
            else:
                self.w(f"{combined} = {first} ^ {second}")
        if node.origin is None:
            raw = f"synthesis node {node.name!r} has no logical origin"
            self._p_raise(repr(raw), "None", None)
            return
        self.emit_set(node.origin, self._ploops, combined)

    def _p_emit_cat(self, synthesis, shares: list[Node], first: str,
                    second: str, combined: str) -> None:
        """Inline Synthesis.combine for CAT with statically known child kinds."""
        kinds = [child.value_kind for child in shares]
        if kinds == [ValueKind.TEXT, ValueKind.TEXT]:
            self.w(f"{combined} = {first} + {second}")
            return
        left = (f"{first}.encode('latin-1')"
                if kinds[0] is ValueKind.TEXT else first)
        right = (f"{second}.encode('latin-1')"
                 if kinds[1] is ValueKind.TEXT else second)
        if synthesis.kind is ValueKind.TEXT:
            self.w(f"{combined} = ({left} + {right}).decode('latin-1')")
        else:
            self.w(f"{combined} = {left} + {right}")

    # -- optionals ---------------------------------------------------------------

    def _p_optional(self, node: Node, st: _Win) -> None:
        if node.presence_ref is not None:
            ref = node.presence_ref
            ref_node = self.node_map.get(ref)
            v = self.vvar(ref) if ref_node is not None else None
            if v is None or v not in self._assigned:
                if v is not None:
                    self._pdecls.add(v)
                raw = f"presence reference {ref!r} has not been parsed yet"
                if v is None:
                    self._p_raise(repr(raw), "None", node.name)
                    return
                self.w(f"if {v} is None:")
                self.ind += 1
                self._p_raise(repr(raw), "None", node.name)
                self.ind -= 1
            self.w(f"if {v} == {node.presence_value!r}:")
        else:
            self.w(f"if {st.off} < {st.end}:")
        self.ind += 1
        snapshot = set(self._assigned)
        self._p_node(node.children[0], st)
        self._assigned = snapshot
        self.ind -= 1

    # -- repetitions -------------------------------------------------------------

    def _p_repetition(self, node: Node, st: _Win, *, prebounded: bool) -> None:
        if node.origin is None:
            raw = f"repeated node {node.name!r} has no logical origin"
            self._p_raise(repr(raw), "None", None)
            return
        self.emit_list_init(node.origin, self._ploops)
        child = node.children[0]
        kind = node.boundary.kind
        loop = f"i{len(self._ploops)}"
        snapshot = set(self._assigned)
        if kind is BoundaryKind.COUNTER:
            count = self._p_ref_int(node.boundary.ref or "", node.name, st,
                                    wrapped=False)
            self.w(f"for {loop} in range({count}):")
            self.ind += 1
            self._ploops.append(loop)
            self._p_node(child, st)
            self._ploops.pop()
            self.ind -= 1
        elif kind is BoundaryKind.DELIMITED:
            term = node.boundary.delimiter or b""
            self.w(f"{loop} = 0")
            self.w(f"while {st.off} < {st.end} and not "
                   f"{st.buf}.startswith({term!r}, {st.off}, {st.end}):")
            self.ind += 1
            self._ploops.append(loop)
            self._p_node(child, st)
            self.w(f"{loop} += 1")
            self._ploops.pop()
            self.ind -= 1
            self.w(f"if {st.buf}.startswith({term!r}, {st.off}, {st.end}):")
            self.w(f"    {st.off} += {len(term)}")
        else:
            # LENGTH / END / prebounded: consume the (bounded) window.
            self.w(f"{loop} = 0")
            self.w(f"while {st.off} < {st.end}:")
            self.ind += 1
            self._ploops.append(loop)
            self._p_node(child, st)
            self.w(f"{loop} += 1")
            self._ploops.pop()
            self.ind -= 1
        self._assigned = snapshot

    # ======================================================================
    # serialize emission
    # ======================================================================

    def _region_tid(self, name: str) -> int:
        if not hasattr(self, "_tids"):
            self._tids: dict[str, int] = {}
        tid = self._tids.get(name)
        if tid is None:
            tid = len(self._tids)
            self._tids[name] = tid
        return tid

    def _region_key(self, name: str) -> str:
        tid = self._region_tid(name)
        if self._sloops:
            return f"({tid}, {', '.join(self._sloops)})"
        return f"({tid},)"

    def _s_missing(self, node: Node, value: str, label: str) -> None:
        """None-check replaying the missing-field SerializationError."""
        assert node.origin is not None
        path = self.path_display(node.origin, self._sloops)
        self.w(f"if {value} is None:")
        template = f"logical message is missing field %s ({label} %r)"
        self.w(f"    raise _E({template!r} % ({path}, {node.name!r}))")

    def _s_node(self, node: Node) -> None:
        measured = node.name in self.length_targets
        mark = None
        if measured or node.mirrored:
            mark = self.var("m")
            self.w(f"{mark} = len(out)")
        if node.type is NodeType.TERMINAL:
            self._s_terminal(node)
        elif node.type is NodeType.SEQUENCE:
            if node.synthesis is not None:
                self._s_synthesis(node)
            else:
                self._s_sequence(node)
        elif node.type is NodeType.OPTIONAL:
            self._s_optional(node)
        else:
            self._s_repetition(node)
        if node.mirrored:
            self._needs.add("mirror")
            self.w(f"_mirror(out, {mark}, pend)")
        if measured:
            self.w(f"lens[{self._region_key(node.name)}] = len(out) - {mark}")

    # -- terminals ----------------------------------------------------------

    def _s_terminal(self, node: Node, value_override: str | None = None) -> None:
        if node.is_pad:
            size = node.boundary.size or 0
            self.w(f"out += bytes(rng.randrange(256) for _ in range({size}))")
            return
        if value_override is None:
            if node.name in self.length_sources:
                self._s_length_slot(node)
                return
            counted = self.counter_sources.get(node.name)
            if counted is not None:
                self._s_counter(node, counted)
                return
        x = self.var("x")
        if value_override is not None:
            self.w(f"{x} = {value_override}")
        else:
            if node.origin is None:
                template = (f"terminal {node.name!r} carries no logical origin "
                            f"and no derived value")
                self.w(f"raise _E({template!r})")
                return
            self.emit_get(x, node.origin, self._sloops)
            self._s_missing(node, x, "terminal")
        self._s_encode(node, x)

    def _s_length_slot(self, node: Node) -> None:
        width = node.boundary.size or 0
        rid = self.resolver_id(width, node.endian.value, node.codec_chain)
        target = self.length_sources[node.name]
        key = self._region_key(target)
        self._needs.add("slots")
        self.w(f"pend.append([len(out), {width}, False, {rid}, {key}])")
        self.w(f"out += {self.zero_const(width)}")

    def _s_counter(self, node: Node, counted: Node) -> None:
        if counted.origin is None:
            template = f"counted node {counted.name!r} carries no logical origin"
            self.w(f"raise _E({template!r})")
            return
        x = self.var("x")
        self.emit_get(x, counted.origin, self._sloops)
        path = self.path_display(counted.origin, self._sloops)
        self.w(f"if {x} is None:")
        self.w(f"    {x} = 0")
        self.w(f"elif isinstance({x}, list):")
        self.w(f"    {x} = len({x})")
        self.w("else:")
        template = "field %s is not a list"
        self.w(f"    raise _E({template!r} % ({path},))")
        self._s_encode(node, x)

    def _s_encode(self, node: Node, x: str) -> None:
        """Emit wire encoding of the value in ``x`` (chain + checks fused)."""
        kind = node.value_kind
        chain = node.codec_chain
        size = (node.boundary.size
                if node.boundary.kind is BoundaryKind.FIXED else None)
        delim = (node.boundary.delimiter or b""
                 if node.boundary.kind is BoundaryKind.DELIMITED else b"")
        if kind is ValueKind.UINT:
            steps = _int_steps(chain, inverse=False) if chain else []
            if steps is None:
                self._s_encode_generic(node, x, size, delim)
                return
            if size is None or size <= 0:
                # UINT without a fixed size fails in encode_value; replicate.
                self._s_encode_generic(node, x, size, delim)
                return
            modulus = 1 << (8 * size)
            if not steps:
                self.w(f"{x} = int({x})")
            else:
                self.w(f"{x} = {_fold_int_steps(f'int({x})', steps)}")
            # A chain whose final mask fits the field never overflows it.
            if not steps or steps[-1][2] >= modulus or steps[-1][0] == "xor":
                self.w(f"if not 0 <= {x} < {modulus}:")
                template = f"terminal {node.name!r}: value %d does not fit in {size} byte(s)"
                self.w(f"    raise _E({template!r} % {x})")
            if size == 1:
                self.w(f"out.append({x})")
            else:
                self.w(f"out += {x}.to_bytes({size}, {node.endian.value!r})")
        else:
            label = "bytes" if kind is ValueKind.BYTES else "text"
            if chain and all(op.bytewise for op in chain):
                forward, _ = _byte_tables(chain)
                # ValueOp.apply encodes the value before translating; an
                # encode failure here is *unwrapped* (no terminal prefix).
                self.w(f"if isinstance({x}, bytes):")
                self.w("    pass")
                self.w(f"elif isinstance({x}, bytearray):")
                self.w(f"    {x} = bytes({x})")
                self.w(f"elif isinstance({x}, str):")
                self.w(f"    {x} = {x}.encode('latin-1')")
                self.w("else:")
                template = f"cannot encode %s as {label}"
                self.w(f"    raise _E({template!r} % type({x}).__name__)")
                self.w(f"{x} = {x}.translate({self.table_const(forward)})")
                if size is not None:
                    self.w(f"if len({x}) != {size}:")
                    template = (f"terminal {node.name!r}: fixed-size field expects "
                                f"{size} byte(s), value has %d")
                    self.w(f"    raise _E({template!r} % len({x}))")
            elif chain:
                self._s_encode_generic(node, x, size, delim)
                return
            else:
                self.w(f"if isinstance({x}, str):")
                self.w(f"    {x} = {x}.encode('latin-1')")
                self.w(f"elif isinstance({x}, (bytes, bytearray)):")
                self.w(f"    {x} = bytes({x})")
                self.w("else:")
                template = f"terminal {node.name!r}: cannot encode %s as {label}"
                self.w(f"    raise _E({template!r} % type({x}).__name__)")
                if size is not None:
                    self.w(f"if len({x}) != {size}:")
                    template = (f"terminal {node.name!r}: fixed-size field expects "
                                f"{size} byte(s), value has %d")
                    self.w(f"    raise _E({template!r} % len({x}))")
            if delim:
                self.w(f"if {delim!r} in {x}:")
                template = (f"value of delimited terminal {node.name!r} contains "
                            f"its delimiter {delim!r}")
                self.w(f"    raise _E({template!r})")
            self.w(f"out += {x}")
        if delim:
            self.w(f"out += {delim!r}")

    def _s_encode_generic(self, node: Node, x: str, size: int | None,
                          delim: bytes) -> None:
        """Exotic chains / sizeless uints: defer to the generic preamble path."""
        self._needs.add("chains")
        self._needs.add("encval")
        if node.codec_chain:
            self.w(f"{x} = _chain_apply({x}, {node.value_kind.value!r}, "
                   f"{_chain_literal(node.codec_chain)})")
        self.w(f"out += _enc_value({x}, {node.value_kind.value!r}, {size!r}, "
               f"{node.endian.value!r}, {node.name!r}, {delim!r})")
        if delim:
            self.w(f"out += {delim!r}")

    # -- sequences with pack-run fusion ---------------------------------------

    def _s_run_member(self, child: Node) -> bool:
        if child.type is not NodeType.TERMINAL or child.mirrored or child.is_pad:
            return False
        if child.name in self.length_sources or child.name in self.counter_sources:
            return False
        if child.name in self.length_targets:
            return False
        if child.origin is None or child.value_kind is not ValueKind.UINT:
            return False
        if child.boundary.kind is not BoundaryKind.FIXED:
            return False
        if (child.boundary.size or 0) not in _UINT_FMT:
            return False
        if child.codec_chain and _int_steps(child.codec_chain, inverse=False) is None:
            return False
        return True

    def _s_sequence(self, node: Node) -> None:
        children = node.children
        i = 0
        while i < len(children):
            run: list[Node] = []
            endian = ""
            j = i
            while j < len(children) and self._s_run_member(children[j]):
                child_endian = ("" if (children[j].boundary.size or 0) == 1
                                else children[j].endian.value)
                if child_endian and endian and child_endian != endian:
                    break
                run.append(children[j])
                if child_endian:
                    endian = child_endian
                j += 1
            if len(run) >= 2:
                self._s_emit_run(run, endian or "big")
                i = j
                continue
            child = children[i]
            if (child.type is NodeType.TERMINAL and not child.mirrored
                    and child.name not in self.length_targets):
                self._s_terminal(child)
            else:
                self._s_node(child)
            i += 1

    def _s_emit_run(self, run: list[Node], endian: str) -> None:
        """Fuse a run of plain fixed-width uints into one struct pack call."""
        fmt = (">" if endian == "big" else "<") + "".join(
            _UINT_FMT[child.boundary.size or 0] for child in run
        )
        struct_name = self.struct_const(fmt)
        names: list[str] = []
        for child in run:
            x = self.var("x")
            names.append(x)
            assert child.origin is not None
            self.emit_get(x, child.origin, self._sloops)
            self._s_missing(child, x, "terminal")
            steps = _int_steps(child.codec_chain, inverse=False) or []
            if steps:
                self.w(f"{x} = {_fold_int_steps(f'int({x})', steps)}")
            else:
                self.w(f"{x} = int({x})")
        self._needs.add("packfail")
        self.w("try:")
        self.w(f"    out += {struct_name}.pack({', '.join(names)})")
        self.w("except Exception:")
        entries = ", ".join(
            f"({x}, {child.boundary.size or 0}, {child.name!r})"
            for x, child in zip(names, run)
        )
        self.w(f"    _pack_fail(({entries}))")

    # -- synthesis --------------------------------------------------------------

    def _s_synthesis(self, node: Node) -> None:
        if node.origin is None:
            template = f"synthesis node {node.name!r} has no logical origin"
            self.w(f"raise _E({template!r})")
            return
        x = self.var("x")
        self.emit_get(x, node.origin, self._sloops)
        self._s_missing(node, x, "synthesis node")
        synthesis = node.synthesis
        assert synthesis is not None
        s1, s2 = self.var("x"), self.var("x")
        if synthesis.op is SynthesisOp.CAT:
            d = self.var("x")
            self.w(f"{d} = {x} if isinstance({x}, (bytes, str)) else bytes({x})")
            cut = self.var("x")
            if node.split_at is None:
                self.w(f"{cut} = rng.randint(0, len({d}))")
            else:
                self.w(f"{cut} = max(0, min({node.split_at}, len({d})))")
            self.w(f"{s1} = {d}[:{cut}]")
            self.w(f"{s2} = {d}[{cut}:]")
        else:
            if synthesis.width is None:
                raise CodegenError(f"synthesis node {node.name!r} carries no width")
            modulus = 1 << (8 * synthesis.width)
            logical = self.var("x")
            self.w(f"{logical} = int({x}) % {modulus}")
            self.w(f"{s1} = rng.randrange({modulus})")
            if synthesis.op is SynthesisOp.ADD:
                self.w(f"{s2} = ({logical} - {s1}) % {modulus}")
            elif synthesis.op is SynthesisOp.SUB:
                self.w(f"{s2} = ({s1} - {logical}) % {modulus}")
            else:
                self.w(f"{s2} = {logical} ^ {s1}")
        shares = [s1, s2]
        value_children = [
            child for child in node.children
            if child.name not in self.length_sources
        ]
        if len(value_children) != 2:
            template = (f"synthesis node {node.name!r} has "
                        f"{'more' if len(value_children) > 2 else 'fewer'} "
                        f"value children than shares")
            self.w(f"raise _E({template!r})")
            return
        for child in node.children:
            if child.name in self.length_sources:
                self._s_node(child)
                continue
            share = shares.pop(0)
            self._s_split_child(child, share)

    def _s_split_child(self, child: Node, share: str) -> None:
        measured = child.name in self.length_targets
        mark = None
        if measured or child.mirrored:
            mark = self.var("m")
            self.w(f"{mark} = len(out)")
        self._s_terminal(child, value_override=share)
        if child.mirrored:
            self._needs.add("mirror")
            self.w(f"_mirror(out, {mark}, pend)")
        if measured:
            self.w(f"lens[{self._region_key(child.name)}] = len(out) - {mark}")

    # -- optionals ----------------------------------------------------------------

    def _s_optional(self, node: Node) -> None:
        presence_origin = None
        if node.presence_ref is not None:
            ref_node = self.node_map.get(node.presence_ref)
            if ref_node is not None and ref_node.origin is not None:
                presence_origin = ref_node.origin
        if presence_origin is not None:
            x = self.var("x")
            self.emit_get(x, presence_origin, self._sloops)
            self.w(f"if {x} == {node.presence_value!r}:")
        elif node.origin is None:
            return
        else:
            x = self.var("x")
            self.emit_get(x, node.origin, self._sloops)
            self.w(f"if {x} is not None:")
        self.ind += 1
        self._s_node(node.children[0])
        self.ind -= 1

    # -- repetitions ---------------------------------------------------------------

    def _s_repetition(self, node: Node) -> None:
        if node.origin is None:
            template = f"repeated node {node.name!r} has no logical origin"
            self.w(f"raise _E({template!r})")
            return
        x = self.var("x")
        self.emit_get(x, node.origin, self._sloops)
        path = self.path_display(node.origin, self._sloops)
        n = self.var("n")
        self.w(f"if {x} is None:")
        self.w(f"    {n} = 0")
        self.w(f"elif isinstance({x}, list):")
        self.w(f"    {n} = len({x})")
        self.w("else:")
        template = "field %s is not a list"
        self.w(f"    raise _E({template!r} % ({path},))")
        loop = f"i{len(self._sloops)}"
        self.w(f"for {loop} in range({n}):")
        self.ind += 1
        self._sloops.append(loop)
        self._s_node(node.children[0])
        self._sloops.pop()
        self.ind -= 1
        if (node.type is NodeType.REPETITION
                and node.boundary.kind is BoundaryKind.DELIMITED):
            self.w(f"out += {node.boundary.delimiter or b''!r}")

    # ======================================================================
    # module assembly
    # ======================================================================

    def emit(self) -> str:
        parse_body = self._emit_parse_body()
        serialize_body = self._emit_serialize_body()
        lines: list[str] = []
        stats = self.graph.stats()
        lines.append(
            f'"""Specialized serialization library for protocol '
            f"{self.graph.name!r}.\n\n"
            f"Automatically generated by repro.codegen (specializing emitter) "
            f"— do not edit.\n"
            f"Graph: {stats.node_count} nodes ({stats.terminal_count} "
            f'terminals), fully inlined.\n"""'
        )
        lines.append("")
        lines.append(f"__plan_fingerprint__ = {self.fingerprint!r}")
        lines.append(f"__emitter_version__ = {self.emitter_version!r}")
        lines.append("__specialized__ = True")
        lines.append(f"__codec_key__ = {self.codec_key!r}")
        lines.append(self._emit_preamble())
        lines.append("# === generated code (emitted per specification) ===")
        lines.append(self._emit_constants())
        lines.extend(parse_body)
        lines.append("")
        lines.extend(serialize_body)
        lines.append("")
        return "\n".join(lines) + "\n"

    def _emit_parse_body(self) -> list[str]:
        self.cur = []
        self.ind = 1
        self._assigned = set()
        self._pdecls = set()
        mv = None
        if any(node.mirrored for node in self.nodes):
            mv = "mv"
        root_state = _Win("data", "o", "e", mv)
        self._p_node(self.graph.root, root_state)
        body = self.cur
        out = ["", ""]
        out.append("def parse(data, strict=True):")
        out.append('    """Parse wire bytes back into the logical message '
                   '(nested dict)."""')
        out.append("    if type(data) is not bytes:")
        out.append("        data = bytes(data)")
        out.append("    o = 0")
        out.append("    e = len(data)")
        if mv is not None:
            out.append("    mv = memoryview(data)")
        out.append("    msg = {}")
        for decl in sorted(self._pdecls):
            out.append(f"    {decl} = None")
        out.extend(body)
        out.append("    if strict and o != e:")
        out.append("        raise _E('%d trailing byte(s) after the message'"
                   " % (e - o), o, None)")
        out.append("    return msg")
        return out

    def _emit_serialize_body(self) -> list[str]:
        self.cur = []
        self.ind = 1
        self._s_node(self.graph.root)
        body = self.cur
        has_slots = "slots" in self._needs
        out = []
        out.append("def serialize(message, rng=None):")
        out.append('    """Serialize a logical message (nested dict) into '
                   'wire bytes."""')
        out.append("    if rng is None:")
        out.append("        rng = _random.Random(0)")
        out.append("    out = bytearray()")
        if has_slots or "mirror" in self._needs:
            out.append("    pend = []")
        if has_slots:
            out.append("    lens = {}")
        out.extend(body)
        if has_slots:
            out.append("    for _s in pend:")
            out.append("        _b = _RES[_s[3]](lens.get(_s[4], 0))")
            out.append("        if _s[2]:")
            out.append("            _b = _b[::-1]")
            out.append("        out[_s[0]:_s[0] + _s[1]] = _b")
        out.append("    return bytes(out)")
        return out

    # -- preamble (conditional helper sections) --------------------------------

    def _emit_preamble(self) -> str:
        needs = self._needs
        chunks = ["", "import random as _random"]
        if "struct" in needs:
            chunks.append("import struct as _struct")
        chunks.append("""

class GeneratedCodecError(Exception):
    \"\"\"Codec failure carrying the interpreted runtime's error identity.\"\"\"

    def __init__(self, message, offset=None, node=None):
        details = []
        if node is not None:
            details.append("node=%r" % (node,))
        if offset is not None:
            details.append("offset=%d" % (offset,))
        suffix = " [%s]" % ", ".join(details) if details else ""
        super().__init__(message + suffix)
        self.raw = message
        self.offset = offset
        self.node = node


_E = GeneratedCodecError""")
        if "eof" in needs or "runfail" in needs:
            chunks.append("""

def _eof(needed, avail, off, node):
    raise _E(
        "unexpected end of data: needed %d byte(s), %d available [offset=%d]"
        % (needed, avail, off), off, node)""")
        if "eof0" in needs:
            chunks.append("""

def _eof0(needed, avail, off):
    raise _E("unexpected end of data: needed %d byte(s), %d available"
             % (needed, avail), off, None)""")
        if "runfail" in needs:
            chunks.append("""

def _run_fail(off, avail, parts):
    # Replay a fused read's per-terminal bounds checks: the error must name
    # the first terminal that does not fit, exactly like the one-by-one path.
    used = 0
    for name, size in parts:
        if used + size > avail:
            _eof(size, avail - used, off + used, name)
        used += size
    raise _E("fused read failed", off, None)  # pragma: no cover""")
        if "packfail" in needs:
            chunks.append("""

def _pack_fail(entries):
    # Replay a fused pack's per-terminal range checks in emission order.
    for value, size, name in entries:
        value = int(value)
        if not 0 <= value < (1 << (8 * size)):
            raise _E("terminal %r: value %d does not fit in %d byte(s)"
                     % (name, value, size))
    raise _E("fused pack failed")  # pragma: no cover""")
        if "mirror" in needs:
            chunks.append("""

def _mirror(out, mark, pend):
    # Byte-reverse the region appended since ``mark`` and remap the pending
    # length slots inside it (their resolved bytes flip with the region).
    seg = out[mark:]
    seg.reverse()
    out[mark:] = seg
    end = len(out)
    for slot in pend:
        position = slot[0]
        if position >= mark:
            slot[0] = mark + end - position - slot[1]
            slot[2] = not slot[2]""")
        if "paths" in needs:
            chunks.append("""

def _get_path(data, steps):
    container = data
    for step in steps:
        if isinstance(step, str):
            if not isinstance(container, dict) or step not in container:
                return None
        else:
            if not isinstance(container, list) or not 0 <= step < len(container):
                return None
        container = container[step]
    return container


def _set_path(data, steps, value):
    container = data
    last = len(steps) - 1
    for position in range(last):
        step = steps[position]
        next_step = steps[position + 1]
        if isinstance(step, str):
            existing = container.get(step) if isinstance(container, dict) else None
            if isinstance(existing, (dict, list)):
                container = existing
            else:
                created = [] if isinstance(next_step, int) else {}
                container[step] = created
                container = created
        else:
            while len(container) <= step:
                container.append(None)
            existing = container[step]
            if isinstance(existing, (dict, list)):
                container = existing
            else:
                created = [] if isinstance(next_step, int) else {}
                container[step] = created
                container = created
    step = steps[last]
    if isinstance(step, str):
        container[step] = value
    else:
        while len(container) <= step:
            container.append(None)
        container[step] = value


def _ensure_list(data, steps):
    container = data
    for step in steps:
        if isinstance(step, str):
            if not isinstance(container, dict) or step not in container:
                _set_path(data, steps, [])
                return
        else:
            if not isinstance(container, list) or not 0 <= step < len(container):
                _set_path(data, steps, [])
                return
        container = container[step]""")
        if "chains" in needs:
            chunks.append("""

def _chain_step(value, kind, op, inverse):
    op_kind, constant, bytewise, width = op
    if bytewise:
        if isinstance(value, int):
            raise _E("non-bytewise value operations only apply to UINT terminals")
        data = value.encode("latin-1") if isinstance(value, str) else bytes(value)
        out = bytearray()
        for byte in data:
            c = constant & 0xFF
            if op_kind == "xor":
                out.append(byte ^ c)
            elif (op_kind == "add") != inverse:
                out.append((byte + c) % 256)
            else:
                out.append((byte - c) % 256)
        result = bytes(out)
        return result.decode("latin-1") if kind == "text" else result
    if kind != "uint":
        raise _E("non-bytewise value operations only apply to UINT terminals")
    if width is None:
        raise _E("integer value operations require a width")
    modulus = 1 << (8 * width)
    c = constant % modulus
    if op_kind == "xor":
        return value ^ c
    if (op_kind == "add") != inverse:
        return (value + c) % modulus
    return (value - c) % modulus


def _chain_apply(value, kind, chain):
    for op in chain:
        value = _chain_step(value, kind, op, False)
    return value


def _chain_invert(value, kind, chain):
    for op in reversed(chain):
        value = _chain_step(value, kind, op, True)
    return value""")
        if "encval" in needs:
            chunks.append("""

def _enc_value(value, kind, size, endian, name, delimiter):
    if kind == "uint":
        if size is None:
            raise _E("terminal %r: UINT terminals require a fixed size" % (name,))
        value = int(value)
        if not 0 <= value < (1 << (8 * size)):
            raise _E("terminal %r: value %d does not fit in %d byte(s)"
                     % (name, value, size))
        return value.to_bytes(size, endian)
    if isinstance(value, str):
        data = value.encode("latin-1")
    elif isinstance(value, (bytes, bytearray)):
        data = bytes(value)
    else:
        raise _E("terminal %r: cannot encode %s as %s"
                 % (name, type(value).__name__, kind))
    if size is not None and len(data) != size:
        raise _E("terminal %r: fixed-size field expects %d byte(s), "
                 "value has %d" % (name, size, len(data)))
    if delimiter and delimiter in data:
        raise _E("value of delimited terminal %r contains its delimiter %r"
                 % (name, delimiter))
    return data""")
        return "\n".join(chunks) + "\n"

    def _emit_constants(self) -> str:
        lines = [""]
        for fmt, name in self._structs.items():
            lines.append(f"{name} = _struct.Struct({fmt!r})")
        for table, name in self._tables.items():
            lines.append(f"{name} = {table!r}")
        for width in sorted(self._zeros):
            lines.append(f"_Z{width} = bytes({width})")
        if self._resolvers:
            lines.append("")
            lines.append("# Length-slot resolvers: chain applied, value reduced")
            lines.append("# modulo the slot width, encoded at the slot's endianness.")
            rendered = []
            for (width, endian, chain), _ in sorted(
                    self._resolvers.items(), key=lambda item: item[1]):
                expr = "L"
                steps = _int_steps(chain, inverse=False)
                if steps is None and chain:
                    # Exotic slot chains defer to the generic interpreter.
                    self._needs.add("chains")
                    expr = f"_chain_apply(L, 'uint', {_chain_literal(chain)})"
                elif steps:
                    expr = _fold_int_steps(expr, steps)
                modulus = 1 << (8 * width)
                rendered.append(
                    f"    lambda L: (({expr}) % {modulus})"
                    f".to_bytes({width}, {endian!r}),"
                )
            lines.append("_RES = (")
            lines.extend(rendered)
            lines.append(")")
        lines.append("")
        return "\n".join(lines)


def generate_specialized_module(graph: FormatGraph, *,
                                plan_fingerprint: str | None = None,
                                codec_key: str | None = None,
                                emitter_version: str | None = None) -> str:
    """Emit the specialized (straight-line, struct-fused) codec for ``graph``.

    The module exposes the same ``serialize(message, rng=None)`` /
    ``parse(data, strict=True)`` API as the readable generated library, is
    stamped with ``__specialized__ = True`` plus the emitter version, and
    raises ``GeneratedCodecError`` with the interpreted runtime's exact error
    message, offset and node identity.
    """
    from .emitter import EMITTER_VERSION

    return _SpecEmitter(
        graph,
        plan_fingerprint=plan_fingerprint,
        codec_key=codec_key,
        emitter_version=(
            emitter_version if emitter_version is not None else EMITTER_VERSION
        ),
    ).emit()
