"""Code generation of standalone serialization libraries (paper Section VI).

Two emission tiers share one pipeline (emit → specialize → compile → cache):
the readable per-node library measured by the potency metrics
(:func:`generate_module`), and the specializing compiler's straight-line
form (``specialize=True`` / :mod:`.specializer`) used as the native-speed
codec tier — byte- and error-identical, several times faster.  Loaded
modules are shared per dialect fingerprint through :mod:`.cache`, and
:mod:`.native` optionally compiles the emitted source with mypyc/Cython when
such a toolchain happens to be installed.
"""

from .cache import (
    cached_module,
    cached_module_count,
    clear_module_cache,
    module_cache_stats,
    module_fingerprint,
)
from .emitter import EMITTER_VERSION, generate_module, generate_module_from_plan
from .loader import (
    GeneratedCodec,
    SpecializedCodec,
    check_module_version,
    load_source,
    write_module,
)
from .naming import accessor_suffix, parser_function, sanitize, serializer_function, struct_class
from .native import available_backends, compile_native, maybe_native, native_enabled
from .specializer import generate_specialized_module

__all__ = [
    "EMITTER_VERSION",
    "GeneratedCodec",
    "SpecializedCodec",
    "accessor_suffix",
    "available_backends",
    "cached_module",
    "cached_module_count",
    "check_module_version",
    "clear_module_cache",
    "compile_native",
    "generate_module",
    "generate_module_from_plan",
    "generate_specialized_module",
    "load_source",
    "maybe_native",
    "module_cache_stats",
    "module_fingerprint",
    "native_enabled",
    "parser_function",
    "sanitize",
    "serializer_function",
    "struct_class",
    "write_module",
]
