"""Code generation of standalone serialization libraries (paper Section VI)."""

from .emitter import generate_module, generate_module_from_plan
from .loader import GeneratedCodec, load_source, write_module
from .naming import accessor_suffix, parser_function, sanitize, serializer_function, struct_class

__all__ = [
    "GeneratedCodec",
    "accessor_suffix",
    "generate_module",
    "generate_module_from_plan",
    "load_source",
    "parser_function",
    "sanitize",
    "serializer_function",
    "struct_class",
    "write_module",
]
