"""Fingerprint-keyed cache of compiled specialized modules.

Extends the PR-5 discipline — one compiled artifact per obfuscation-plan
fingerprint, shared across every replay of that plan — from ``CodecPlan``
objects to whole generated modules.  Two levels:

* an in-process LRU keyed ``(fingerprint, specialized, emitter version)``
  mapping to the loaded module object, so every session speaking the same
  dialect executes the exact same compiled code object, and
* an optional on-disk layer (``REPRO_CODEGEN_CACHE`` or an explicit
  directory) where the emitted *source* is stored as ``codec_<fp>.py`` /
  ``codec_<fp>_spec.py``, sharing the emission cost across processes.  Files
  written by an older emitter are refused by the loader's version check and
  transparently regenerated and overwritten.

Graphs without a plan fingerprint fall back to the content-derived
:func:`~repro.core.fingerprint.graph_fingerprint`, so unstamped-but-identical
graphs still share a slot.
"""

from __future__ import annotations

import os
import types
from collections import OrderedDict
from pathlib import Path

from ..core.errors import CodegenError
from ..core.fingerprint import graph_fingerprint
from ..core.graph import FormatGraph
from .emitter import EMITTER_VERSION, generate_module
from .loader import load_source

#: Loaded modules keyed ``(fingerprint, specialized, emitter version)``,
#: least-recently-used first.  Mirrors the plan cache's bound: rotation-heavy
#: servers cycle through dialects and must not grow the cache without limit.
_MODULE_CACHE: "OrderedDict[tuple[str, bool, str], types.ModuleType]" = OrderedDict()
_MODULE_CACHE_CAPACITY = 64

_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0, "disk_hits": 0}

#: Environment variable naming the shared on-disk module cache directory.
CACHE_DIR_ENV = "REPRO_CODEGEN_CACHE"


def module_fingerprint(graph: FormatGraph) -> str:
    """The cache key of ``graph``: its plan fingerprint, else content hash."""
    stamped = getattr(graph, "plan_fingerprint", None)
    if stamped is not None:
        return stamped
    return graph_fingerprint(graph)


def _disk_dir(cache_dir: str | Path | None) -> Path | None:
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else None


def _disk_path(directory: Path, fingerprint: str, specialized: bool) -> Path:
    suffix = "_spec" if specialized else ""
    return directory / f"codec_{fingerprint}{suffix}.py"


def _store_disk(path: Path, source: str) -> None:
    """Atomically write ``source`` to ``path`` (tmp file + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(source, encoding="utf-8")
    os.replace(tmp, path)


def cached_module(graph: FormatGraph, *, specialize: bool = True,
                  cache_dir: str | Path | None = None) -> types.ModuleType:
    """The loaded (specialized) module of ``graph``, emitted at most once.

    Resolution order: in-process LRU → on-disk source (when a cache directory
    is configured) → fresh emission.  Sources read back from disk must carry
    the current emitter version; stale files are regenerated and overwritten
    instead of being run.
    """
    fingerprint = module_fingerprint(graph)
    key = (fingerprint, specialize, EMITTER_VERSION)
    module = _MODULE_CACHE.get(key)
    if module is not None:
        _CACHE_STATS["hits"] += 1
        _MODULE_CACHE.move_to_end(key)
        return module
    _CACHE_STATS["misses"] += 1
    directory = _disk_dir(cache_dir)
    source = None
    if directory is not None:
        path = _disk_path(directory, fingerprint, specialize)
        if path.is_file():
            try:
                module = load_source(path.read_text(encoding="utf-8"),
                                     require_version=True)
                _CACHE_STATS["disk_hits"] += 1
            except (CodegenError, OSError):
                # Stale emitter version / unstamped / unreadable: regenerate.
                module = None
    if module is None:
        source = generate_module(graph, specialize=specialize,
                                 plan_fingerprint=fingerprint)
        module = load_source(source)
        if directory is not None:
            try:
                _store_disk(_disk_path(directory, fingerprint, specialize), source)
            except OSError:
                pass  # a read-only cache dir degrades to in-memory caching
    while len(_MODULE_CACHE) >= _MODULE_CACHE_CAPACITY:
        _MODULE_CACHE.popitem(last=False)
        _CACHE_STATS["evictions"] += 1
    _MODULE_CACHE[key] = module
    return module


def module_cache_stats() -> dict[str, int]:
    """Hit/miss/evict/disk-hit counters of the module cache (a copy)."""
    return dict(_CACHE_STATS)


def clear_module_cache() -> None:
    """Drop every cached module and zero the counters (test isolation)."""
    _MODULE_CACHE.clear()
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


def cached_module_count() -> int:
    """Number of loaded modules held by the in-process cache."""
    return len(_MODULE_CACHE)
