"""Split transformations: SplitAdd, SplitSub, SplitXor and SplitCat.

A Terminal node with value ``v`` is split into a sequence of two sub-nodes
with values ``v1`` and ``v2`` such that ``v = v1 op v2`` (paper Table I).  The
serializer draws ``v1`` at random for every message, so the same logical
message yields different wire representations across transmissions — the
"various representations of the same message" classification challenge of
Table II.

Runtime applicability constraints (refinements of the paper's "parent
boundary must be Delegated or End"):

* the target terminal must carry user data (not a derived length/counter
  field, not padding, not already a child of another split),
* it must not already carry value obfuscations (codec chain) or mirroring —
  those can still be applied afterwards, to the split children;
* arithmetic splits require a fixed-size UINT terminal;
* SplitCat applies to BYTES/TEXT terminals: fixed-size fields are cut at a
  position drawn at transformation time, variable-size fields (Delimited,
  Length or End boundary) are split at a random position for every message
  and the first part is emitted behind a derived two-byte length prefix.
"""

from __future__ import annotations

from random import Random
from typing import ClassVar

from ..core.boundary import Boundary, BoundaryKind
from ..core.errors import NotApplicableError
from ..core.graph import FormatGraph
from ..core.node import Node, NodeType
from ..core.values import Synthesis, SynthesisOp, ValueKind
from .base import (
    Transformation,
    TransformationCategory,
    TransformationRecord,
    is_ref_target,
    parent_is_synthesis,
    replace_node,
)


def _plain_user_terminal(graph: FormatGraph, node: Node) -> bool:
    """Common precondition: an unobfuscated, user-data terminal."""
    return (
        node.type is NodeType.TERMINAL
        and not node.is_pad
        and node.origin is not None
        and not node.codec_chain
        and not node.mirrored
        and not is_ref_target(graph, node)
        and not parent_is_synthesis(node)
    )


class _ArithmeticSplit(Transformation):
    """Shared implementation of SplitAdd / SplitSub / SplitXor."""

    category = TransformationCategory.AGGREGATION
    challenge = ("inference models and classification: more dependencies between "
                 "fields and varying representations of the same message")
    synthesis_op: ClassVar[SynthesisOp]

    def is_applicable(self, graph: FormatGraph, node: Node) -> bool:
        return (
            _plain_user_terminal(graph, node)
            and node.value_kind is ValueKind.UINT
            and node.boundary.kind is BoundaryKind.FIXED
            and (node.boundary.size or 0) > 0
        )

    def draw(self, graph: FormatGraph, node: Node, rng: Random) -> TransformationRecord:
        width = node.boundary.size or 1
        first = graph.fresh_name(f"{node.name}_share")
        second = graph.fresh_name(f"{node.name}_share")
        replacement = graph.fresh_name(f"{node.name}_split")
        return self.record(
            node,
            created=(replacement, first, second),
            width=width,
            operation=self.synthesis_op.value,
        )

    def _replay(self, graph: FormatGraph, node: Node,
                record: TransformationRecord) -> None:
        width = int(record.parameters["width"])
        replacement_name, first_name, second_name = record.created
        first = Node(
            first_name,
            NodeType.TERMINAL,
            Boundary.fixed(width),
            value_kind=ValueKind.UINT,
            endian=node.endian,
        )
        second = Node(
            second_name,
            NodeType.TERMINAL,
            Boundary.fixed(width),
            value_kind=ValueKind.UINT,
            endian=node.endian,
        )
        replacement = Node(
            replacement_name,
            NodeType.SEQUENCE,
            Boundary.delegated(),
            children=[first, second],
            origin=node.origin,
            synthesis=Synthesis(self.synthesis_op, ValueKind.UINT, width=width),
            doc=f"{self.name} of {node.name}",
        )
        replace_node(graph, node, replacement)


class SplitAdd(_ArithmeticSplit):
    """Split a UINT terminal ``v`` into ``v1 + v2`` (modular)."""

    name = "SplitAdd"
    synthesis_op = SynthesisOp.ADD


class SplitSub(_ArithmeticSplit):
    """Split a UINT terminal ``v`` into ``v1 - v2`` (modular)."""

    name = "SplitSub"
    synthesis_op = SynthesisOp.SUB


class SplitXor(_ArithmeticSplit):
    """Split a UINT terminal ``v`` into ``v1 xor v2``."""

    name = "SplitXor"
    synthesis_op = SynthesisOp.XOR


class SplitCat(Transformation):
    """Split a BYTES/TEXT terminal ``v`` into ``concatenate(v1, v2)``."""

    name = "SplitCat"
    category = TransformationCategory.AGGREGATION
    challenge = ("fields delimitation and classification: one field becomes two, "
                 "cut at a per-message random position for variable-size fields")

    _PREFIX_WIDTH = 2

    def is_applicable(self, graph: FormatGraph, node: Node) -> bool:
        if not _plain_user_terminal(graph, node):
            return False
        if node.value_kind not in (ValueKind.BYTES, ValueKind.TEXT):
            return False
        if node.boundary.kind is BoundaryKind.FIXED:
            return (node.boundary.size or 0) >= 2
        return node.boundary.kind in (
            BoundaryKind.DELIMITED,
            BoundaryKind.LENGTH,
            BoundaryKind.END,
        )

    def draw(self, graph: FormatGraph, node: Node, rng: Random) -> TransformationRecord:
        if node.boundary.kind is BoundaryKind.FIXED:
            size = node.boundary.size or 0
            if size < 2:
                raise NotApplicableError(f"terminal {node.name!r} is too small to split")
            cut = rng.randint(1, size - 1)
            first = graph.fresh_name(f"{node.name}_part")
            second = graph.fresh_name(f"{node.name}_part")
            replacement = graph.fresh_name(f"{node.name}_split")
            return self.record(node, created=(replacement, first, second), cut=cut)
        prefix = graph.fresh_name(f"{node.name}_part_len")
        first = graph.fresh_name(f"{node.name}_part")
        second = graph.fresh_name(f"{node.name}_part")
        replacement = graph.fresh_name(f"{node.name}_split")
        return self.record(
            node,
            created=(replacement, prefix, first, second),
            prefix_width=self._PREFIX_WIDTH,
        )

    def _replay(self, graph: FormatGraph, node: Node,
                record: TransformationRecord) -> None:
        if node.boundary.kind is BoundaryKind.FIXED:
            self._replay_fixed(graph, node, record)
        else:
            self._replay_variable(graph, node, record)

    # -- fixed-size fields: static cut position -------------------------------

    def _replay_fixed(self, graph: FormatGraph, node: Node,
                      record: TransformationRecord) -> None:
        size = node.boundary.size or 0
        cut = int(record.parameters["cut"])
        assert node.value_kind is not None
        replacement_name, first_name, second_name = record.created
        first = Node(
            first_name,
            NodeType.TERMINAL,
            Boundary.fixed(cut),
            value_kind=node.value_kind,
        )
        second = Node(
            second_name,
            NodeType.TERMINAL,
            Boundary.fixed(size - cut),
            value_kind=node.value_kind,
        )
        replacement = Node(
            replacement_name,
            NodeType.SEQUENCE,
            Boundary.delegated(),
            children=[first, second],
            origin=node.origin,
            synthesis=Synthesis(SynthesisOp.CAT, node.value_kind),
            split_at=cut,
            doc=f"SplitCat of {node.name} at offset {cut}",
        )
        replace_node(graph, node, replacement)

    # -- variable-size fields: per-message cut behind a length prefix ---------

    def _replay_variable(self, graph: FormatGraph, node: Node,
                         record: TransformationRecord) -> None:
        assert node.value_kind is not None
        prefix_width = int(record.parameters["prefix_width"])
        replacement_name, prefix_name, first_name, second_name = record.created
        prefix = Node(
            prefix_name,
            NodeType.TERMINAL,
            Boundary.fixed(prefix_width),
            value_kind=ValueKind.UINT,
        )
        first = Node(
            first_name,
            NodeType.TERMINAL,
            Boundary.length(prefix.name),
            value_kind=node.value_kind,
        )
        second_boundary, sequence_boundary = self._tail_boundaries(node)
        second = Node(
            second_name,
            NodeType.TERMINAL,
            second_boundary,
            value_kind=node.value_kind,
        )
        replacement = Node(
            replacement_name,
            NodeType.SEQUENCE,
            sequence_boundary,
            children=[prefix, first, second],
            origin=node.origin,
            synthesis=Synthesis(SynthesisOp.CAT, node.value_kind),
            doc=f"SplitCat of {node.name} behind a length prefix",
        )
        replace_node(graph, node, replacement)

    @staticmethod
    def _tail_boundaries(node: Node) -> tuple[Boundary, Boundary]:
        """Boundaries of the second part and of the wrapping sequence.

        The wrapping sequence takes over the original LENGTH/END boundary (its
        extent is unchanged); a DELIMITED original keeps its delimiter on the
        second part because sequences cannot be delimited.
        """
        kind = node.boundary.kind
        if kind is BoundaryKind.DELIMITED:
            return Boundary.delimited(node.boundary.delimiter or b""), Boundary.delegated()
        if kind is BoundaryKind.LENGTH:
            return Boundary.end(), Boundary.length(node.boundary.ref or "")
        # END boundary
        return Boundary.end(), Boundary.end()
