"""ChildMove: permute two sub-nodes of a Sequence.

Meaningful fields (keywords, type discriminators) are no longer at the
beginning of the message, which degrades classification based on prefix
similarity (paper Table II).

The paper's constraint — "no nodes inside B must depend on a node inside A" —
is enforced by attempting the permutation and re-validating the graph: a swap
that would move a length/counter/presence reference after its user, or that
would cross a variable-arity scope, is rejected and another pair is tried.
"""

from __future__ import annotations

from random import Random

from ..core.errors import GraphError, NotApplicableError
from ..core.graph import FormatGraph
from ..core.node import Node, NodeType
from ..core.validate import validate_graph
from .base import Transformation, TransformationCategory, TransformationRecord


class ChildMove(Transformation):
    """Permute two sub-nodes of a Sequence node."""

    name = "ChildMove"
    category = TransformationCategory.ORDERING
    challenge = "classification: meaningful fields are no longer at the beginning"

    _MAX_ATTEMPTS = 8

    def is_applicable(self, graph: FormatGraph, node: Node) -> bool:
        return (
            node.type is NodeType.SEQUENCE
            and node.synthesis is None
            and len(node.children) >= 2
        )

    def draw(self, graph: FormatGraph, node: Node, rng: Random) -> TransformationRecord:
        count = len(node.children)
        pairs = [(i, j) for i in range(count) for j in range(i + 1, count)]
        rng.shuffle(pairs)
        for first, second in pairs[: self._MAX_ATTEMPTS]:
            # Attempt the permutation to validate it, then revert: the actual
            # rewrite happens in _replay, driven by the recorded positions.
            node.children[first], node.children[second] = (
                node.children[second],
                node.children[first],
            )
            try:
                validate_graph(graph)
            except GraphError:
                node.children[first], node.children[second] = (
                    node.children[second],
                    node.children[first],
                )
                continue
            record = self.record(
                node,
                first=node.children[first].name,
                second=node.children[second].name,
                positions=(first, second),
            )
            node.children[first], node.children[second] = (
                node.children[second],
                node.children[first],
            )
            return record
        raise NotApplicableError(
            f"no dependency-preserving permutation found for sequence {node.name!r}"
        )

    def _replay(self, graph: FormatGraph, node: Node,
                record: TransformationRecord) -> None:
        first, second = (int(position) for position in record.parameters["positions"])
        node.children[first], node.children[second] = (
            node.children[second],
            node.children[first],
        )
