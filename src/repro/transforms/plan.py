"""Obfuscation plans: the transformed format as a first-class keyed artifact.

In the paper's threat model the obfuscated specification *is* the shared
secret: two endpoints interoperate exactly when they hold the same transformed
format, and the scheme's strength comes from being able to change it.  An
:class:`ObfuscationPlan` materializes that secret as data — an ordered,
JSON-(de)serializable sequence of fully parameterized transformation
applications plus the fingerprint of the plain source graph — instead of as a
side effect of re-running the :class:`~repro.transforms.engine.Obfuscator`
with a shared RNG seed.

Because every :class:`~repro.transforms.base.Transformation` applies through
the ``draw`` → ``replay`` split (the random path and the deterministic path
share one rewriting code path), a plan extracted from any engine run replays
on a fresh clone of the plain graph to a bit-identical result: same graph,
same generated module source, same wire bytes.  Plans can therefore be
persisted (:mod:`repro.spec.planfile`), shipped to a peer, diffed, registered
in a plan book for mid-session rotation (:mod:`repro.net.rotation`), and
replayed instead of re-derived by the experiment harness.

``plan.fingerprint`` names the transformed format; replayed graphs are
stamped with it so the codec-plan cache (:mod:`repro.wire.plan`) can key
compiled plans by a value that is stable across replays and processes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Iterator

from ..core.errors import TransformError
from ..core.fingerprint import graph_fingerprint
from ..core.graph import FormatGraph
from ..core.validate import validate_graph
from .base import Transformation, TransformationCategory, TransformationRecord
from .registry import by_name

#: Version tag of the serialized plan layout.
PLAN_FORMAT = "repro/obfuscation-plan@1"


class PlanError(TransformError):
    """A plan could not be built, serialized, deserialized or replayed."""


def _jsonable(value: Any) -> Any:
    """Canonical JSON form of a record parameter (tuples → lists, bytes tagged)."""
    if isinstance(value, dict):
        return {key: _jsonable(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(entry) for entry in value]
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise PlanError(f"record parameter of type {type(value).__name__} is not plan-serializable")


def _unjsonable(value: Any) -> Any:
    """Inverse of :func:`_jsonable` (tagged bytes only; lists stay lists)."""
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        return {key: _unjsonable(entry) for key, entry in value.items()}
    if isinstance(value, list):
        return [_unjsonable(entry) for entry in value]
    return value


def record_to_dict(record: TransformationRecord) -> dict:
    """Canonical JSON-safe dict of one transformation application."""
    return {
        "transformation": record.transformation,
        "category": record.category.value,
        "target": record.target,
        "created": list(record.created),
        "parameters": _jsonable(record.parameters),
    }


def record_from_dict(payload: dict) -> TransformationRecord:
    """Rebuild a :class:`TransformationRecord` from its dict form."""
    try:
        return TransformationRecord(
            transformation=str(payload["transformation"]),
            category=TransformationCategory(payload["category"]),
            target=str(payload["target"]),
            created=tuple(str(name) for name in payload.get("created", ())),
            parameters=_unjsonable(dict(payload.get("parameters", {}))),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PlanError(f"malformed transformation record: {exc}") from exc


@dataclass(frozen=True)
class ObfuscationPlan:
    """An ordered, replayable sequence of parameterized transformations.

    ``source`` names the plain graph the plan was extracted from (the graph's
    ``name``); ``source_fingerprint`` pins its exact content
    (:func:`~repro.core.fingerprint.graph_fingerprint`), so replaying against
    the wrong specification fails loudly instead of producing a subtly
    different dialect.
    """

    source: str
    source_fingerprint: str
    records: tuple[TransformationRecord, ...]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TransformationRecord]:
        return iter(self.records)

    @cached_property
    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON body — the name of the transformed format.

        Stable across JSON round-trips, replays and processes: a plan built
        from live records (tuple parameters) and the same plan re-loaded from
        disk (list parameters) hash identically.
        """
        body = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-safe dict (fingerprint excluded — it hashes this)."""
        return {
            "format": PLAN_FORMAT,
            "source": self.source,
            "source_fingerprint": self.source_fingerprint,
            "records": [record_to_dict(record) for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ObfuscationPlan":
        declared = payload.get("format", PLAN_FORMAT)
        if declared != PLAN_FORMAT:
            raise PlanError(
                f"unsupported plan format {declared!r} (expected {PLAN_FORMAT!r})"
            )
        try:
            return cls(
                source=str(payload["source"]),
                source_fingerprint=str(payload["source_fingerprint"]),
                records=tuple(
                    record_from_dict(entry) for entry in payload.get("records", ())
                ),
            )
        except (KeyError, TypeError) as exc:
            raise PlanError(f"malformed obfuscation plan: {exc}") from exc

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ObfuscationPlan":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise PlanError(f"plan is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise PlanError("plan JSON must be an object")
        return cls.from_dict(payload)

    # -- replay ----------------------------------------------------------------

    def replay(self, graph: FormatGraph, *, strict: bool = True,
               validate: bool = True) -> FormatGraph:
        """Deterministically re-apply the plan to a clone of the plain ``graph``.

        ``strict`` checks the graph against ``source_fingerprint`` first;
        ``validate`` re-validates the final graph (each step was validated by
        the originating engine run, so one final pass suffices).  The returned
        graph is stamped with this plan's fingerprint — keying its compiled
        codec plan to a value shared by every replay of the same plan — but
        **only when the source graph matched**: a ``strict=False`` replay on
        a divergent source produces a different format, and stamping it would
        alias its codec plan with the genuine dialect's.  (The source
        fingerprint is therefore always computed; it is one pre-order walk
        plus a hash, negligible next to the clone and replay.)
        """
        actual = graph_fingerprint(graph)
        source_matches = actual == self.source_fingerprint
        if strict and not source_matches:
            raise PlanError(
                f"plan for source {self.source!r} "
                f"(fingerprint {self.source_fingerprint[:12]}…) does not "
                f"match graph {graph.name!r} (fingerprint {actual[:12]}…); "
                f"pass strict=False to replay anyway"
            )
        working = graph.clone()
        transformations: dict[str, Transformation] = {}
        for record in self.records:
            transformation = transformations.get(record.transformation)
            if transformation is None:
                try:
                    transformation = by_name(record.transformation)
                except KeyError as exc:
                    raise PlanError(
                        f"plan references unknown transformation "
                        f"{record.transformation!r}"
                    ) from exc
                transformations[record.transformation] = transformation
            transformation.replay(working, record)
        if validate:
            try:
                validate_graph(working)
            except Exception as exc:
                raise PlanError(f"replayed graph is invalid: {exc}") from exc
        if source_matches:
            working.plan_fingerprint = self.fingerprint
        return working


def extract_plan(original: FormatGraph,
                 records: Iterator[TransformationRecord] | tuple | list
                 ) -> ObfuscationPlan:
    """Build the plan of an engine run from its source graph and records."""
    return ObfuscationPlan(
        source=original.name,
        source_fingerprint=graph_fingerprint(original),
        records=tuple(records),
    )
