"""BoundaryChange: replace a Delimited boundary by a Length boundary.

The delimited node is replaced by a sequence of two nodes ``(n1, n2)`` where
``n1`` is a derived length field and ``n2`` carries the original value,
delimited by that length instead of by the delimiter (paper Table I/II,
"fields delimitation" challenge: well-known delimiters disappear from the
wire).

The transformation applies both to Delimited terminals (e.g. the
space/CRLF-separated HTTP tokens) and to Delimited repetitions (e.g. the HTTP
header block terminated by an empty line).  As the paper notes, it is also an
enabler: transformations that are not applicable to delimited fields
(byte-wise ConstXor, ReadFromEnd, ...) become applicable to the
length-prefixed replacement.
"""

from __future__ import annotations

from random import Random

from ..core.boundary import Boundary, BoundaryKind
from ..core.graph import FormatGraph
from ..core.node import Node, NodeType
from ..core.values import ValueKind
from .base import (
    Transformation,
    TransformationCategory,
    TransformationRecord,
    parent_is_synthesis,
    replace_node,
)


class BoundaryChange(Transformation):
    """Turn a Delimited boundary into a derived Length boundary."""

    name = "BoundaryChange"
    category = TransformationCategory.AGGREGATION
    challenge = "fields delimitation: delimitation with a length field"

    _PREFIX_WIDTH = 2

    def is_applicable(self, graph: FormatGraph, node: Node) -> bool:
        if node.boundary.kind is not BoundaryKind.DELIMITED:
            return False
        if node.type not in (NodeType.TERMINAL, NodeType.REPETITION):
            return False
        if node.type is NodeType.TERMINAL and node.is_pad:
            return False
        return not parent_is_synthesis(node)

    def draw(self, graph: FormatGraph, node: Node, rng: Random) -> TransformationRecord:
        prefix = graph.fresh_name(f"{node.name}_len")
        wrapper = graph.fresh_name(f"{node.name}_framed")
        return self.record(
            node, created=(wrapper, prefix), prefix_width=self._PREFIX_WIDTH
        )

    def _replay(self, graph: FormatGraph, node: Node,
                record: TransformationRecord) -> None:
        wrapper_name, prefix_name = record.created
        prefix_width = int(record.parameters["prefix_width"])
        prefix = Node(
            prefix_name,
            NodeType.TERMINAL,
            Boundary.fixed(prefix_width),
            value_kind=ValueKind.UINT,
            doc=f"derived length of {node.name}",
        )
        wrapper = Node(
            wrapper_name,
            NodeType.SEQUENCE,
            Boundary.delegated(),
            doc=f"BoundaryChange of {node.name}",
        )
        replace_node(graph, node, wrapper)
        wrapper.add_child(prefix)
        node.boundary = Boundary.length(prefix.name)
        wrapper.add_child(node)
