"""The obfuscation engine.

Implements the selection routine of the paper (Section VI): every node of the
graph is analysed to identify the compatible generic transformations, one of
them is chosen at random and applied, and the routine is repeated as many
times as requested by the developer (the "number of obfuscations per node"
parameter of the evaluation).

Because transformations create new nodes, later passes operate on a larger
graph, which reproduces the super-linear growth of the number of applied
transformations reported in Tables III and IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from ..core.errors import NotApplicableError, TransformError
from ..core.graph import FormatGraph
from ..core.validate import validate_graph
from .base import Transformation, TransformationRecord
from .plan import ObfuscationPlan, extract_plan
from .registry import default_transformations


@dataclass
class ObfuscationResult:
    """Outcome of one obfuscation run."""

    original: FormatGraph
    graph: FormatGraph
    passes: int
    records: list[TransformationRecord] = field(default_factory=list)

    @property
    def applied_count(self) -> int:
        """Total number of transformations effectively applied (paper "Nb. transf. applied")."""
        return len(self.records)

    def plan(self) -> ObfuscationPlan:
        """The run's :class:`~repro.transforms.plan.ObfuscationPlan` — the keyed artifact.

        Replaying the returned plan on a fresh clone of ``original`` yields a
        graph bit-identical to ``self.graph``.  The obfuscated graph is
        stamped with the plan's fingerprint as a side effect, so the
        originating run and every replay of the plan share one compiled
        codec-plan cache slot.
        """
        plan = extract_plan(self.original, self.records)
        self.graph.plan_fingerprint = plan.fingerprint
        return plan

    def count_by_transformation(self) -> dict[str, int]:
        """Number of applications of each transformation."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.transformation] = counts.get(record.transformation, 0) + 1
        return counts

    def summary(self) -> str:
        """Human-readable one-paragraph summary of the run."""
        counts = ", ".join(
            f"{name}×{count}" for name, count in sorted(self.count_by_transformation().items())
        )
        return (
            f"{self.applied_count} transformation(s) over {self.passes} pass(es) on "
            f"{self.original.name!r}: {counts or 'none'}"
        )


class Obfuscator:
    """Applies randomly selected generic transformations to a format graph."""

    def __init__(self, transformations: list[Transformation] | None = None,
                 *, seed: int | None = None, rng: Random | None = None,
                 validate_each_step: bool = True):
        self.transformations = (
            list(transformations) if transformations is not None else default_transformations()
        )
        self._rng = rng if rng is not None else Random(seed if seed is not None else 0)
        self.validate_each_step = validate_each_step

    # -- public API -----------------------------------------------------------

    def obfuscate(self, graph: FormatGraph, passes: int = 1) -> ObfuscationResult:
        """Apply ``passes`` obfuscation passes to a copy of ``graph``.

        One pass visits every node present at the start of the pass, picks one
        applicable transformation at random for each of them and applies it,
        mirroring the paper's per-node obfuscation parameter (0 passes returns
        an untouched copy).
        """
        if passes < 0:
            raise TransformError(f"the number of passes cannot be negative ({passes})")
        working = graph.clone()
        result = ObfuscationResult(original=graph, graph=working, passes=passes)
        for _ in range(passes):
            self._run_pass(working, result.records)
        return result

    def obfuscate_node_budget(self, graph: FormatGraph, budget: int) -> ObfuscationResult:
        """Apply at most ``budget`` transformations, visiting nodes round-robin.

        Used by ablation studies that need a fixed number of applications
        rather than a per-node parameter.  ``result.passes`` counts only the
        sweeps that applied at least one transformation: a final sweep that
        finds nothing applicable does not inflate the count.
        """
        working = graph.clone()
        result = ObfuscationResult(original=graph, graph=working, passes=0)
        applied = True
        while applied and len(result.records) < budget:
            applied = False
            for name in [node.name for node in working.nodes()]:
                if len(result.records) >= budget:
                    break
                node = working.find(name)
                if node is None:
                    continue
                record = self._apply_random(working, node)
                if record is not None:
                    result.records.append(record)
                    applied = True
            if applied:
                result.passes += 1
        return result

    # -- internals ------------------------------------------------------------

    def _run_pass(self, graph: FormatGraph, records: list[TransformationRecord]) -> None:
        snapshot = [node.name for node in graph.nodes()]
        for name in snapshot:
            node = graph.find(name)
            if node is None:
                # The node was replaced by an earlier transformation of this pass.
                continue
            record = self._apply_random(graph, node)
            if record is not None:
                records.append(record)

    def _apply_random(self, graph: FormatGraph, node) -> TransformationRecord | None:
        applicable = [
            transformation
            for transformation in self.transformations
            if transformation.is_applicable(graph, node)
        ]
        if not applicable:
            return None
        transformation = self._rng.choice(applicable)
        try:
            # Transformation.apply drops the graph's cached codec plan after
            # rewriting it in place (see Transformation.__init_subclass__).
            record = transformation.apply(graph, node, self._rng)
        except NotApplicableError:
            return None
        if self.validate_each_step:
            try:
                validate_graph(graph)
            except Exception as exc:  # pragma: no cover - guards against transform bugs
                raise TransformError(
                    f"transformation {transformation.name} left the graph invalid: {exc}"
                ) from exc
        return record


def obfuscate(graph: FormatGraph, passes: int = 1, *, seed: int = 0,
              transformations: list[Transformation] | None = None) -> ObfuscationResult:
    """Module-level convenience wrapper around :class:`Obfuscator`."""
    return Obfuscator(transformations, seed=seed).obfuscate(graph, passes)
