"""PadInsert: insert a random-value padding node into a Sequence.

The padding terminal has a fixed size drawn at transformation time; its value
is drawn at random for every serialized message and discarded by the parser.
Padding perturbs both the sequence-alignment step of trace-based inference
(same-type messages differ in random positions) and the apparent field layout.

The padding node is never inserted as the first child of a sequence: the
first bytes of a repeated element are inspected by the parser when the
enclosing repetition uses a terminator (Delimited boundary), and a random
padding byte sequence could collide with the terminator.
"""

from __future__ import annotations

from random import Random

from ..core.boundary import Boundary
from ..core.errors import NotApplicableError
from ..core.graph import FormatGraph, is_greedy
from ..core.node import Node, NodeType
from ..core.values import ValueKind
from .base import Transformation, TransformationCategory, TransformationRecord


class PadInsert(Transformation):
    """Insert a random-value padding terminal into a Sequence node."""

    name = "PadInsert"
    category = TransformationCategory.AGGREGATION
    challenge = "classification: same-type messages differ in meaningless positions"

    _MIN_SIZE = 1
    _MAX_SIZE = 8

    def is_applicable(self, graph: FormatGraph, node: Node) -> bool:
        return (
            node.type is NodeType.SEQUENCE
            and node.synthesis is None
            and len(self._valid_positions(node)) > 0
        )

    def draw(self, graph: FormatGraph, node: Node, rng: Random) -> TransformationRecord:
        positions = self._valid_positions(node)
        if not positions:
            raise NotApplicableError(
                f"sequence {node.name!r} has no safe padding insertion position"
            )
        size = rng.randint(self._MIN_SIZE, self._MAX_SIZE)
        position = rng.choice(positions)
        pad = graph.fresh_name(f"{node.name}_pad")
        return self.record(node, created=(pad,), size=size, position=position)

    def _replay(self, graph: FormatGraph, node: Node,
                record: TransformationRecord) -> None:
        size = int(record.parameters["size"])
        position = int(record.parameters["position"])
        pad = Node(
            record.created[0],
            NodeType.TERMINAL,
            Boundary.fixed(size),
            value_kind=ValueKind.BYTES,
            is_pad=True,
            doc=f"random padding inserted into {node.name}",
        )
        node.insert_child(position, pad)

    @staticmethod
    def _valid_positions(node: Node) -> list[int]:
        """Insertion positions that keep the sequence parseable.

        Position 0 is excluded (the first bytes of a repeated element are
        compared against the enclosing terminator), and positions after a
        greedy child are excluded (the padding would be swallowed by the
        rest-of-window field preceding it).
        """
        if not node.children:
            return []
        positions: list[int] = []
        for position in range(1, len(node.children) + 1):
            if any(is_greedy(child) for child in node.children[:position]):
                break
            positions.append(position)
        return positions
