"""Obfuscating transformations of the message format graph (paper Section V-B)."""

from .base import (
    Transformation,
    TransformationCategory,
    TransformationRecord,
)
from .boundary_change import BoundaryChange
from .childmove import ChildMove
from .const import ConstAdd, ConstSub, ConstXor
from .engine import ObfuscationResult, Obfuscator, obfuscate
from .mirror import ReadFromEnd
from .pad import PadInsert
from .plan import (
    ObfuscationPlan,
    PlanError,
    extract_plan,
    record_from_dict,
    record_to_dict,
)
from .registry import (
    TRANSFORMATION_FAMILIES,
    by_name,
    default_transformations,
    family,
    transformation_names,
)
from .split import SplitAdd, SplitCat, SplitSub, SplitXor
from .tabular import RepSplit, TabSplit

__all__ = [
    "BoundaryChange",
    "ChildMove",
    "ConstAdd",
    "ConstSub",
    "ConstXor",
    "ObfuscationPlan",
    "ObfuscationResult",
    "Obfuscator",
    "PadInsert",
    "PlanError",
    "ReadFromEnd",
    "RepSplit",
    "SplitAdd",
    "SplitCat",
    "SplitSub",
    "SplitXor",
    "TRANSFORMATION_FAMILIES",
    "TabSplit",
    "Transformation",
    "TransformationCategory",
    "TransformationRecord",
    "by_name",
    "default_transformations",
    "extract_plan",
    "family",
    "obfuscate",
    "record_from_dict",
    "record_to_dict",
    "transformation_names",
]
