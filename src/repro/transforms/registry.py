"""Registry of the generic transformations (paper Table I).

The registry exposes the default transformation set used by the obfuscation
engine, lookup by name, and the grouping into families used by the ablation
benchmarks.
"""

from __future__ import annotations

from .base import Transformation
from .boundary_change import BoundaryChange
from .childmove import ChildMove
from .const import ConstAdd, ConstSub, ConstXor
from .mirror import ReadFromEnd
from .pad import PadInsert
from .split import SplitAdd, SplitCat, SplitSub, SplitXor
from .tabular import RepSplit, TabSplit


def default_transformations() -> list[Transformation]:
    """Fresh instances of every generic transformation of the paper's Table I."""
    return [
        SplitAdd(),
        SplitSub(),
        SplitXor(),
        SplitCat(),
        ConstAdd(),
        ConstSub(),
        ConstXor(),
        BoundaryChange(),
        PadInsert(),
        ReadFromEnd(),
        TabSplit(),
        RepSplit(),
        ChildMove(),
    ]


#: Families used by the ablation study (one family enabled at a time).
TRANSFORMATION_FAMILIES: dict[str, tuple[str, ...]] = {
    "split": ("SplitAdd", "SplitSub", "SplitXor", "SplitCat"),
    "const": ("ConstAdd", "ConstSub", "ConstXor"),
    "boundary": ("BoundaryChange",),
    "pad": ("PadInsert",),
    "mirror": ("ReadFromEnd",),
    "tabular": ("TabSplit", "RepSplit"),
    "childmove": ("ChildMove",),
}


def transformation_names() -> list[str]:
    """Names of every registered transformation."""
    return [transformation.name for transformation in default_transformations()]


def by_name(name: str) -> Transformation:
    """Instantiate a transformation by its name."""
    for transformation in default_transformations():
        if transformation.name == name:
            return transformation
    raise KeyError(f"unknown transformation {name!r}")


def family(name: str) -> list[Transformation]:
    """Instantiate the transformations of one family (for ablation studies)."""
    if name not in TRANSFORMATION_FAMILIES:
        raise KeyError(f"unknown transformation family {name!r}")
    members = TRANSFORMATION_FAMILIES[name]
    return [by_name(member) for member in members]
