"""Constant value transformations: ConstAdd, ConstSub and ConstXor.

A Terminal node carrying a value ``v`` is substituted by a node carrying
``v op constant`` (paper Table I).  The operation is appended to the
terminal's codec chain: the serializer applies it before encoding and the
parser inverts it after decoding, so the transformation is trivially
invertible and composes with every other transformation.

Applicability (runtime-correctness refinements of Table II):

* UINT terminals use a whole-value modular operation whose width matches the
  fixed size of the field;
* BYTES/TEXT terminals use a byte-wise operation, which is **not** applicable
  to Delimited terminals because the transformed value could collide with the
  delimiter (the paper notes BoundaryChange can be used to lift exactly this
  kind of restriction);
* padding terminals are never targeted (their value is random anyway).
"""

from __future__ import annotations

from random import Random
from typing import ClassVar

from ..core.boundary import BoundaryKind
from ..core.graph import FormatGraph
from ..core.node import Node, NodeType
from ..core.values import ValueKind, ValueOp, ValueOpKind
from .base import Transformation, TransformationCategory, TransformationRecord


class _ConstTransformation(Transformation):
    """Shared implementation of the three constant-value transformations."""

    category = TransformationCategory.AGGREGATION
    challenge = "classification: keyword values no longer appear verbatim"
    op_kind: ClassVar[ValueOpKind]

    def is_applicable(self, graph: FormatGraph, node: Node) -> bool:
        if node.type is not NodeType.TERMINAL or node.is_pad:
            return False
        if node.value_kind is ValueKind.UINT:
            return node.boundary.kind is BoundaryKind.FIXED and (node.boundary.size or 0) > 0
        # BYTES / TEXT: byte-wise operation, unsafe on delimited fields.
        return node.boundary.kind is not BoundaryKind.DELIMITED

    def draw(self, graph: FormatGraph, node: Node, rng: Random) -> TransformationRecord:
        if node.value_kind is ValueKind.UINT:
            width = node.boundary.size or 1
            constant = rng.randrange(1, 1 << (8 * width))
            # ``width`` is recorded even though it is derivable from the
            # target's boundary: records must be self-describing — replay
            # never re-derives a drawn or drawn-dependent parameter.
            return self.record(node, constant=constant, bytewise=False, width=width)
        constant = rng.randrange(1, 256)
        return self.record(node, constant=constant, bytewise=True, width=None)

    def _replay(self, graph: FormatGraph, node: Node,
                record: TransformationRecord) -> None:
        constant = int(record.parameters["constant"])
        bytewise = bool(record.parameters["bytewise"])
        width = record.parameters.get("width")
        if not bytewise and width is None:
            # Records written before the width was captured: derive it the way
            # the original draw did.
            width = node.boundary.size or 1
        op = ValueOp(self.op_kind, constant, bytewise=bytewise,
                     width=None if bytewise else int(width))
        node.codec_chain = node.codec_chain + (op,)


class ConstAdd(_ConstTransformation):
    """Substitute a terminal value ``v`` by ``v + constant``."""

    name = "ConstAdd"
    op_kind = ValueOpKind.ADD


class ConstSub(_ConstTransformation):
    """Substitute a terminal value ``v`` by ``v - constant``."""

    name = "ConstSub"
    op_kind = ValueOpKind.SUB


class ConstXor(_ConstTransformation):
    """Substitute a terminal value ``v`` by ``v xor constant``."""

    name = "ConstXor"
    op_kind = ValueOpKind.XOR
