"""TabSplit and RepSplit: column-wise splitting of repeated structures.

A Tabular (resp. Repetition) node whose element is a Sequence ``(A, B, ...)``
is replaced by a sequence of Tabular nodes, one per column: the wire layout
changes from ``(A B)^n`` to ``A^n B^n``.  This turns a regular language into a
context-free one (the paper's ``a^n b^n`` example), which is precisely what
regular-model-based inference tools cannot represent (Table II, "inference
models" challenge).

For Repetition nodes whose element count is not already given by a counter
field, RepSplit introduces a derived two-byte count field so that the
per-column Tabular nodes stay parseable — the element count must be known
before the first column can be delimited.
"""

from __future__ import annotations

from random import Random

from ..core.boundary import Boundary, BoundaryKind
from ..core.graph import FormatGraph
from ..core.node import Node, NodeType
from ..core.values import ValueKind
from .base import (
    Transformation,
    TransformationCategory,
    TransformationRecord,
    cross_sibling_references,
    replace_node,
)


def _splittable_element(node: Node) -> bool:
    """True when the repeated element is a multi-column sequence safe to split."""
    element = node.children[0]
    return (
        element.type is NodeType.SEQUENCE
        and element.synthesis is None
        and len(element.children) >= 2
        and not cross_sibling_references(element.children)
    )


def _draw_column_names(graph: FormatGraph, node: Node) -> list[str]:
    """Allocate one fresh column name per child of the repeated element."""
    return [graph.fresh_name(f"{node.name}_col") for _ in node.children[0].children]


def _build_columns(node: Node, counter: str, names: list[str]) -> list[Node]:
    """Build one Tabular node per column of the repeated element sequence.

    Detaches the element's children and wraps each in a Tabular carrying the
    recorded name at the same position.
    """
    element = node.children[0]
    columns: list[Node] = []
    for name, child in zip(names, list(element.children)):
        element.remove_child(child)
        columns.append(Node(
            name,
            NodeType.TABULAR,
            Boundary.counter(counter),
            children=[child],
            origin=node.origin,
            doc=f"column {child.name} of {node.name}",
        ))
    return columns


class TabSplit(Transformation):
    """Split a Tabular of multi-field elements into per-column Tabular nodes."""

    name = "TabSplit"
    category = TransformationCategory.ORDERING
    challenge = "inference models: turn the regular language (AB)* into A^m B^m"

    def is_applicable(self, graph: FormatGraph, node: Node) -> bool:
        return (
            node.type is NodeType.TABULAR
            and node.boundary.kind is BoundaryKind.COUNTER
            and _splittable_element(node)
        )

    def draw(self, graph: FormatGraph, node: Node, rng: Random) -> TransformationRecord:
        columns = _draw_column_names(graph, node)
        replacement = graph.fresh_name(f"{node.name}_columns")
        return self.record(node, created=(replacement, *columns), columns=len(columns))

    def _replay(self, graph: FormatGraph, node: Node,
                record: TransformationRecord) -> None:
        counter = node.boundary.ref or ""
        replacement_name, *column_names = record.created
        columns = _build_columns(node, counter, column_names)
        replacement = Node(
            replacement_name,
            NodeType.SEQUENCE,
            Boundary.delegated(),
            children=columns,
            doc=f"TabSplit of {node.name}",
        )
        replace_node(graph, node, replacement)


class RepSplit(Transformation):
    """Split a Repetition of multi-field elements into per-column Tabular nodes."""

    name = "RepSplit"
    category = TransformationCategory.ORDERING
    challenge = "inference models: turn the regular language (AB)* into A^m B^m"

    _COUNT_WIDTH = 2

    def is_applicable(self, graph: FormatGraph, node: Node) -> bool:
        return node.type is NodeType.REPETITION and _splittable_element(node)

    def draw(self, graph: FormatGraph, node: Node, rng: Random) -> TransformationRecord:
        created: list[str] = []
        if node.boundary.kind is not BoundaryKind.COUNTER:
            created.append(graph.fresh_name(f"{node.name}_count"))
        columns = _draw_column_names(graph, node)
        created.extend(columns)
        replacement = graph.fresh_name(f"{node.name}_columns")
        return self.record(
            node,
            created=(replacement, *created),
            columns=len(columns),
            count_width=self._COUNT_WIDTH,
        )

    def _replay(self, graph: FormatGraph, node: Node,
                record: TransformationRecord) -> None:
        names = list(record.created)
        replacement_name = names.pop(0)
        children: list[Node] = []
        if node.boundary.kind is BoundaryKind.COUNTER:
            counter = node.boundary.ref or ""
            sequence_boundary = Boundary.delegated()
        else:
            width = int(record.parameters.get("count_width", self._COUNT_WIDTH))
            count_field = Node(
                names.pop(0),
                NodeType.TERMINAL,
                Boundary.fixed(width),
                value_kind=ValueKind.UINT,
                doc=f"derived element count of {node.name}",
            )
            children.append(count_field)
            counter = count_field.name
            sequence_boundary = self._carried_boundary(node)
        children.extend(_build_columns(node, counter, names))
        replacement = Node(
            replacement_name,
            NodeType.SEQUENCE,
            sequence_boundary,
            children=children,
            doc=f"RepSplit of {node.name}",
        )
        replace_node(graph, node, replacement)

    @staticmethod
    def _carried_boundary(node: Node) -> Boundary:
        """Boundary of the replacement sequence.

        A LENGTH-bounded repetition keeps its length field (the covered extent
        is unchanged); Delimited and End repetitions become plain delegated
        sequences — the terminator disappears from the wire, the derived count
        field making it redundant.
        """
        if node.boundary.kind is BoundaryKind.LENGTH:
            return Boundary.length(node.boundary.ref or "")
        return Boundary.delegated()
