"""ReadFromEnd: serialize a node from right to left.

The byte region produced by the node (terminal or whole subtree) is reversed
on the wire.  Reading a message sub-part in reverse order is unusual and
breaks the positional assumptions of alignment-based inference (paper Table
II, "inference models and classification" challenge).

Applicability: the parser must be able to delimit the node's byte extent
*before* reading it so that the region can be reversed back — i.e. the node
has a Fixed, Length or End boundary, or a statically-known size.  Delimited
nodes are excluded (the delimiter scan would run over reversed content), which
is the paper's "parent boundary can be anything but Delimited" constraint
transposed to this runtime.
"""

from __future__ import annotations

from random import Random

from ..core.graph import FormatGraph, parse_window_known
from ..core.node import Node
from .base import Transformation, TransformationCategory, TransformationRecord


class ReadFromEnd(Transformation):
    """Mirror the serialization of a node (read from right to left)."""

    name = "ReadFromEnd"
    category = TransformationCategory.ORDERING
    challenge = ("inference models and classification: sub-part of the message is "
                 "read in reverse order")

    def is_applicable(self, graph: FormatGraph, node: Node) -> bool:
        if node.mirrored or node.is_pad:
            return False
        if node.parent is None:
            # Mirroring the root would require knowing the total message size
            # up-front; the root's extent is the whole buffer, so allow it only
            # when the extent is self-delimiting.
            return parse_window_known(node)
        return parse_window_known(node)

    def draw(self, graph: FormatGraph, node: Node, rng: Random) -> TransformationRecord:
        return self.record(node)

    def _replay(self, graph: FormatGraph, node: Node,
                record: TransformationRecord) -> None:
        node.mirrored = True
