"""Base classes and shared helpers of the obfuscating transformations.

A generic transformation (paper Table I/II) rewrites a graph pattern into
another graph pattern under applicability constraints, and is invertible by
construction: the wire runtime knows how to serialize and parse the rewritten
pattern so that the logical message is preserved.

Every transformation implements three methods:

* :meth:`Transformation.is_applicable` — the applicability constraints of the
  paper's Table II, refined with the concrete correctness conditions of this
  runtime (documented on each class),
* :meth:`Transformation.draw` — make every random decision (constants, cut
  positions, insertion points, fresh node names) and return the fully
  parameterized :class:`TransformationRecord`, **without touching the graph**,
* :meth:`Transformation._replay` — the in-place graph rewriting, driven
  entirely by a record's parameters.

:meth:`Transformation.apply` is the composition ``draw`` → ``replay``: the
random path and the deterministic path execute the *same* rewriting code, so a
record extracted from any engine run replays to a bit-identical graph on a
fresh clone of the plain specification — no RNG required.  That replayability
is what makes an :class:`~repro.transforms.plan.ObfuscationPlan` a first-class
keyed artifact (persist it, ship it, rotate it) instead of a side effect of
re-running the engine with a shared seed.
"""

from __future__ import annotations

import enum
import functools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from random import Random
from typing import Any, ClassVar

from ..core.boundary import BoundaryKind
from ..core.errors import TransformError
from ..core.graph import FormatGraph
from ..core.node import Node
from ..wire.plan import invalidate as _invalidate_plan


class TransformationCategory(str, enum.Enum):
    """Collberg-style category of a transformation (paper Section V-B)."""

    AGGREGATION = "aggregation"
    ORDERING = "ordering"


@dataclass(frozen=True)
class TransformationRecord:
    """One applied transformation instance."""

    transformation: str
    category: TransformationCategory
    target: str
    created: tuple[str, ...] = ()
    parameters: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        created = f" -> {', '.join(self.created)}" if self.created else ""
        return f"{self.transformation}({self.target}){created}"


class Transformation(ABC):
    """A generic, invertible obfuscating transformation of the message format graph."""

    #: Unique transformation name (as listed in the paper's Table I).
    name: ClassVar[str] = "transformation"
    #: Collberg category the transformation belongs to.
    category: ClassVar[TransformationCategory] = TransformationCategory.AGGREGATION
    #: Protocol-reverse-engineering challenge the transformation emphasises (Table II).
    challenge: ClassVar[str] = ""

    @abstractmethod
    def is_applicable(self, graph: FormatGraph, node: Node) -> bool:
        """True when the transformation can safely be applied to ``node``."""

    def apply(self, graph: FormatGraph, node: Node, rng: Random) -> TransformationRecord:
        """Rewrite the graph in place and return the record of the rewriting.

        The default implementation draws the fully parameterized record
        (:meth:`draw`) and immediately replays it (:meth:`replay`) — one code
        path for random application and deterministic replay.  Raises
        :class:`~repro.core.errors.NotApplicableError` when the random
        parameters drawn cannot satisfy the constraints (callers treat this as
        a skipped application).

        Subclasses overriding ``apply`` directly are automatically wrapped
        (see ``__init_subclass__``) to drop the graph's cached codec plan
        after the rewrite; the default implementation invalidates through
        :meth:`replay`.  Such subclasses do not support deterministic replay
        unless they also implement :meth:`_replay`.
        """
        record = self.draw(graph, node, rng)
        self.replay(graph, record)
        return record

    def draw(self, graph: FormatGraph, node: Node, rng: Random) -> TransformationRecord:
        """Make every random decision and return the fully parameterized record.

        ``draw`` must not mutate the graph (transient attempt-and-revert
        probing, as in ChildMove, is permitted as long as the graph is
        restored).  It allocates the names of the nodes the rewriting will
        create (``record.created``) and stores every drawn parameter in
        ``record.parameters`` — the record alone must suffice to replay the
        transformation, the RNG is never consulted again.
        """
        raise NotImplementedError(
            f"transformation {self.name!r} does not implement draw(); "
            f"it cannot be captured into a replayable plan"
        )

    def replay(self, graph: FormatGraph, record: TransformationRecord) -> None:
        """Deterministically re-apply a recorded transformation in place.

        Resolves the record's target node and hands off to :meth:`_replay`.
        The graph's cached codec plan is dropped afterwards — same hazard as
        ``apply``: an in-place rewrite would otherwise leave codecs executing
        against the pre-transformation plan.
        """
        if record.transformation != self.name:
            raise TransformError(
                f"record of {record.transformation!r} handed to "
                f"transformation {self.name!r}"
            )
        node = graph.find(record.target)
        if node is None:
            raise TransformError(
                f"cannot replay {record}: graph {graph.name!r} has no node "
                f"named {record.target!r} (wrong source graph or out-of-order "
                f"replay?)"
            )
        try:
            self._replay(graph, node, record)
        finally:
            _invalidate_plan(graph)

    def _replay(self, graph: FormatGraph, node: Node,
                record: TransformationRecord) -> None:
        """Rewrite ``node`` exactly as described by ``record`` (no RNG)."""
        raise NotImplementedError(
            f"transformation {self.name!r} does not implement _replay(); "
            f"records of it cannot be replayed"
        )

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        original = cls.__dict__.get("apply")
        if original is None or getattr(original, "_invalidates_plan", False):
            return

        @functools.wraps(original)
        def apply_and_invalidate(self, graph: FormatGraph, node: Node,
                                 rng: Random) -> TransformationRecord:
            try:
                return original(self, graph, node, rng)
            finally:
                _invalidate_plan(graph)

        apply_and_invalidate._invalidates_plan = True  # type: ignore[attr-defined]
        cls.apply = apply_and_invalidate  # type: ignore[assignment]

    def record(self, target: Node, *, created: tuple[str, ...] = (),
               **parameters: Any) -> TransformationRecord:
        """Build the record for one application of this transformation."""
        return TransformationRecord(
            transformation=self.name,
            category=self.category,
            target=target.name,
            created=created,
            parameters=parameters,
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


# ---------------------------------------------------------------------------
# shared constraint helpers
# ---------------------------------------------------------------------------


def is_ref_target(graph: FormatGraph, node: Node) -> bool:
    """True when some boundary or presence condition references ``node``."""
    return graph.is_ref_target(node.name)


def parent_is_synthesis(node: Node) -> bool:
    """True when the node is a value child of a Split*-created synthesis sequence."""
    return node.parent is not None and node.parent.synthesis is not None


def inside_repetition(node: Node) -> bool:
    """True when the node lives under a Repetition or Tabular node."""
    from ..core.node import NodeType

    return any(
        ancestor.type in (NodeType.REPETITION, NodeType.TABULAR)
        for ancestor in node.ancestors()
    )


def replace_node(graph: FormatGraph, old: Node, new: Node) -> None:
    """Substitute ``new`` for ``old`` at the same position (root included)."""
    if old.parent is None:
        new.parent = None
        graph.root = new
        return
    old.parent.replace_child(old, new)


def subtree_names(node: Node) -> set[str]:
    """Names of every node in the subtree rooted at ``node``."""
    return {descendant.name for descendant in node.iter_subtree()}


def cross_sibling_references(children: list[Node]) -> bool:
    """True when a node in one child subtree references a node in a sibling subtree.

    Used by TabSplit/RepSplit: splitting the element sequence into per-column
    tabulars would break such references because the columns are no longer
    parsed element by element.
    """
    names_per_child = [subtree_names(child) for child in children]
    for index, child in enumerate(children):
        own_names = names_per_child[index]
        sibling_names = set().union(
            *(names for position, names in enumerate(names_per_child) if position != index)
        ) if len(children) > 1 else set()
        for descendant in child.iter_subtree():
            for ref in descendant.referenced_names():
                if ref in sibling_names and ref not in own_names:
                    return True
    return False


def delimited_ancestor_chain(node: Node) -> bool:
    """True when an ancestor uses a DELIMITED boundary (terminator scanning)."""
    return any(
        ancestor.boundary.kind is BoundaryKind.DELIMITED for ancestor in node.ancestors()
    )
