"""The experiment harness (paper Section VII).

One *experiment* follows the paper's protocol exactly:

1. pick a protocol specification from the protocol registry
   (:mod:`repro.protocols.registry` — HTTP, Modbus, DNS, MQTT, ...),
2. apply N obfuscation passes with randomly selected transformations,
3. generate the serialization library source code (generation time),
4. measure the potency metrics of the generated code, normalized by the
   non-obfuscated generated code,
5. execute the library on random messages produced by the core application and
   measure parsing time, serialization time and buffer size.

The benchmark files under ``benchmarks/`` drive this harness to regenerate the
rows of Tables III/IV and the series of Figures 4–7.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from random import Random
from typing import Sequence

from ..analysis.regression import LinearFit, linear_regression
from ..analysis.stats import Summary, summarize
from ..codegen.emitter import generate_module
from ..codegen.loader import GeneratedCodec
from ..metrics.cost import measure_messages, summarize as summarize_cost
from ..metrics.potency import NormalizedPotency, PotencyMetrics, measure_source
from ..protocols import registry
from ..transforms.engine import Obfuscator
from ..transforms.base import Transformation
from ..transforms.plan import ObfuscationPlan


@dataclass(frozen=True)
class RunResult:
    """Measurements of one experiment run (one random obfuscation draw)."""

    protocol: str
    passes: int
    applied: int
    potency: PotencyMetrics
    normalized: NormalizedPotency
    generation_ms: float
    serialize_ms: float
    parse_ms: float
    buffer_size: float

    def deterministic_signature(self) -> tuple:
        """Every field that depends only on the run seed, not on wall-clock.

        Sequential and parallel executions of the same (seed, passes, run
        index) produce bit-identical signatures; the ``*_ms`` timings are
        environment noise and are excluded.
        """
        return (
            self.protocol,
            self.passes,
            self.applied,
            self.potency,
            self.normalized,
            self.buffer_size,
        )


@dataclass(frozen=True)
class LevelSummary:
    """Aggregated measurements of all runs at one obfuscation level."""

    protocol: str
    passes: int
    applied: Summary
    lines: Summary
    structs: Summary
    call_graph_size: Summary
    call_graph_depth: Summary
    generation_ms: Summary
    parse_ms: Summary
    serialize_ms: Summary
    buffer_size: Summary

    def table_row(self) -> list[str]:
        """Row of the paper-style comparative table."""
        return [
            str(self.passes),
            self.applied.format(0),
            self.lines.format(2),
            self.structs.format(2),
            self.call_graph_size.format(2),
            self.call_graph_depth.format(2),
            self.generation_ms.format(2),
            self.parse_ms.format(3),
            self.serialize_ms.format(3),
            self.buffer_size.format(0),
        ]


TABLE_HEADERS = [
    "Transf/node",
    "Applied",
    "Lines (norm)",
    "Structs (norm)",
    "CG size (norm)",
    "CG depth (norm)",
    "Gen time (ms)",
    "Parse (ms)",
    "Serialize (ms)",
    "Buffer (bytes)",
]


def _run_once_task(protocol: str, seed: int, messages_per_run: int,
                   transformations: list[Transformation] | None,
                   reference: PotencyMetrics | None,
                   plan: "ObfuscationPlan | None",
                   passes: int, run_index: int) -> "RunResult":
    """One experiment run executed inside a worker process.

    Reconstructs a runner from the deterministic configuration; the run seed
    derivation inside :meth:`ExperimentRunner.run_once` is untouched, so the
    draw is bit-identical to the sequential execution of the same indices.
    ``reference`` carries the parent's reference potency so that workers do
    not regenerate the non-obfuscated library once per run, and ``plan`` the
    level's obfuscation plan when the parent runs in replay mode.
    """
    runner = ExperimentRunner(
        protocol,
        seed=seed,
        messages_per_run=messages_per_run,
        transformations=transformations,
    )
    runner._reference = reference
    return runner.run_once(passes, run_index, plan=plan)


@dataclass
class ExperimentRunner:
    """Runs the paper's experiment protocol for one protocol specification.

    With ``parallel=True`` the independent runs of one obfuscation level are
    distributed over a process pool.  Every run derives its randomness from
    ``run_seed = seed*10_000 + passes*100 + run_index`` alone, so the parallel
    execution produces bit-identical :class:`RunResult` draws (potency,
    applied transformations, buffer sizes) to the sequential one — only the
    wall-clock ``*_ms`` fields differ, as they would between any two
    sequential executions.
    """

    protocol: str
    seed: int = 0
    runs_per_level: int = 5
    messages_per_run: int = 20
    transformations: list[Transformation] | None = None
    parallel: bool = False
    max_workers: int | None = None
    #: Replay one obfuscation plan per level across its runs instead of
    #: re-running the engine once per run: the level's plan is drawn once
    #: (from run index 0's seed), and every run deterministically replays it.
    #: The message workload still varies per run (the run seed feeds the
    #: codec and message RNGs exactly as in engine mode), so cost metrics
    #: keep their per-run spread while the potency columns — a property of
    #: the shared dialect — are measured on the identical graph.
    reuse_plan: bool = False
    _reference: PotencyMetrics | None = field(default=None, init=False, repr=False)
    _reference_buffer: float | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.setup = registry.get(self.protocol)

    # -- reference (non-obfuscated) measurements ------------------------------

    def reference_potency(self) -> PotencyMetrics:
        """Potency metrics of the non-obfuscated generated library."""
        if self._reference is None:
            source = generate_module(self.setup.reference_graph())
            self._reference = measure_source(source)
        return self._reference

    # -- single runs -----------------------------------------------------------

    def level_plan(self, passes: int) -> ObfuscationPlan:
        """The obfuscation plan replayed by every run of one level.

        Drawn with run index 0's seed, so replay mode measures the exact
        dialect that engine mode's first run would produce.
        """
        run_seed = self.seed * 10_000 + passes * 100
        obfuscator = Obfuscator(self.transformations, seed=run_seed)
        return obfuscator.obfuscate(self.setup.reference_graph(), passes).plan()

    def run_once(self, passes: int, run_index: int, *,
                 plan: ObfuscationPlan | None = None) -> RunResult:
        """One experiment run: obfuscate (or replay ``plan``), generate, measure.

        With ``plan`` the obfuscation engine is skipped entirely: the plan is
        deterministically replayed on the shared reference graph — no RNG, no
        per-step validation, shared compiled codec plan — which is the
        replay-vs-re-derive speedup measured by ``benchmarks/test_bench_plan_replay.py``.
        """
        run_seed = self.seed * 10_000 + passes * 100 + run_index
        # The obfuscator (and plan replay) clones before transforming, so the
        # shared reference graph (and its cached plan) is never mutated by a run.
        graph = self.setup.reference_graph()
        start = time.perf_counter()
        if plan is not None:
            obfuscated = plan.replay(graph, validate=False)
            applied = len(plan.records)
        else:
            result = Obfuscator(self.transformations, seed=run_seed).obfuscate(graph, passes)
            obfuscated = result.graph
            applied = result.applied_count
        source = generate_module(obfuscated)
        generation_ms = (time.perf_counter() - start) * 1000.0
        potency = measure_source(source)
        normalized = potency.normalized(self.reference_potency())
        codec = GeneratedCodec(obfuscated, seed=run_seed, source=source)
        message_rng = Random(run_seed + 1)
        workload = [
            self.setup.message_generator(message_rng) for _ in range(self.messages_per_run)
        ]
        cost = summarize_cost(measure_messages(codec, workload))
        return RunResult(
            protocol=self.protocol,
            passes=passes,
            applied=applied,
            potency=potency,
            normalized=normalized,
            generation_ms=generation_ms,
            serialize_ms=cost.serialize_ms,
            parse_ms=cost.parse_ms,
            buffer_size=cost.buffer_size,
        )

    def run_level(self, passes: int) -> list[RunResult]:
        """Every run of one obfuscation level (parallel when configured)."""
        plan = self.level_plan(passes) if self.reuse_plan else None
        if self.parallel and self.runs_per_level > 1:
            results = self._run_level_parallel(passes, plan)
            if results is not None:
                return results
        return [
            self.run_once(passes, index, plan=plan)
            for index in range(self.runs_per_level)
        ]

    def _run_level_parallel(self, passes: int,
                            plan: ObfuscationPlan | None = None
                            ) -> list[RunResult] | None:
        """Fan the runs of one level out over a process pool.

        Returns ``None`` when no pool can be started (restricted platforms),
        in which case the caller falls back to sequential execution.  Results
        are collected in run-index order, matching the sequential path.
        """
        workers = self.max_workers
        if workers is None:
            workers = min(self.runs_per_level, os.cpu_count() or 1)
        # fork keeps sys.path and the protocol registry of the parent; spawn
        # re-imports from the environment, which works as long as the package
        # is importable (PYTHONPATH or installed).
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        reference = self.reference_potency()
        task = (self.protocol, self.seed, self.messages_per_run,
                self.transformations, reference, plan)
        try:
            # Pre-flight: unpicklable configurations (custom transformation
            # objects holding lambdas, open handles, ...) fail here instead of
            # poisoning the pool's feeder thread mid-run.
            pickle.dumps(task)
        except Exception:
            return None
        try:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        except (OSError, ValueError):
            # No pool on this platform (sandboxes, exotic systems): fall back.
            return None
        try:
            with pool:
                futures = [
                    pool.submit(_run_once_task, *task, passes, index)
                    for index in range(self.runs_per_level)
                ]
                return [future.result() for future in futures]
        except BrokenProcessPool:
            # Workers died (OOM killer, container limits): fall back.  Genuine
            # experiment errors raised inside a worker propagate unchanged.
            return None

    # -- tables (paper Tables III and IV) --------------------------------------

    def summarize_level(self, passes: int, runs: Sequence[RunResult]) -> LevelSummary:
        """Aggregate the runs of one level into a table row."""
        return LevelSummary(
            protocol=self.protocol,
            passes=passes,
            applied=summarize([run.applied for run in runs]),
            lines=summarize([run.normalized.lines for run in runs]),
            structs=summarize([run.normalized.structs for run in runs]),
            call_graph_size=summarize([run.normalized.call_graph_size for run in runs]),
            call_graph_depth=summarize([run.normalized.call_graph_depth for run in runs]),
            generation_ms=summarize([run.generation_ms for run in runs]),
            parse_ms=summarize([run.parse_ms for run in runs]),
            serialize_ms=summarize([run.serialize_ms for run in runs]),
            buffer_size=summarize([run.buffer_size for run in runs]),
        )

    def run_table(self, levels: Sequence[int] = (1, 2, 3, 4)) -> dict[int, LevelSummary]:
        """Regenerate the comparative table for the configured protocol."""
        table: dict[int, LevelSummary] = {}
        for passes in levels:
            table[passes] = self.summarize_level(passes, self.run_level(passes))
        return table

    # -- figures ---------------------------------------------------------------

    def time_series(self, levels: Sequence[int] = (1, 2, 3, 4)
                    ) -> tuple[list[RunResult], LinearFit, LinearFit]:
        """Per-run cost measurements and the regression lines of Figures 4/5.

        Returns every run together with the linear fits of parsing time and
        serialization time against the number of applied transformations.
        """
        runs: list[RunResult] = []
        for passes in levels:
            runs.extend(self.run_level(passes))
        applied = [float(run.applied) for run in runs]
        parse_fit = linear_regression(applied, [run.parse_ms for run in runs])
        serialize_fit = linear_regression(applied, [run.serialize_ms for run in runs])
        return runs, parse_fit, serialize_fit

    def potency_series(self, levels: Sequence[int] = (1, 2, 3, 4)
                       ) -> dict[int, dict[str, float]]:
        """Average normalized potency metrics per level (Figures 6/7)."""
        series: dict[int, dict[str, float]] = {}
        for passes in levels:
            runs = self.run_level(passes)
            series[passes] = {
                "applied": summarize([run.applied for run in runs]).mean,
                "lines": summarize([run.normalized.lines for run in runs]).mean,
                "structs": summarize([run.normalized.structs for run in runs]).mean,
                "call_graph_size": summarize(
                    [run.normalized.call_graph_size for run in runs]
                ).mean,
                "call_graph_depth": summarize(
                    [run.normalized.call_graph_depth for run in runs]
                ).mean,
                "buffer_size": summarize([run.buffer_size for run in runs]).mean,
            }
        return series
