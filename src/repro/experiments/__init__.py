"""Experiment harnesses regenerating the paper's tables, figures and resilience study."""

from .resilience import ResilienceReport, run_resilience
from .runner import (
    PROTOCOLS,
    TABLE_HEADERS,
    ExperimentRunner,
    LevelSummary,
    ProtocolSetup,
    RunResult,
)

__all__ = [
    "ExperimentRunner",
    "LevelSummary",
    "PROTOCOLS",
    "ProtocolSetup",
    "ResilienceReport",
    "RunResult",
    "TABLE_HEADERS",
    "run_resilience",
]
