"""Experiment harnesses regenerating the paper's tables, figures and resilience study.

Protocols are resolved through :mod:`repro.protocols.registry`;
:class:`~repro.protocols.registry.ProtocolSetup` is re-exported here for
backwards compatibility with the earlier hard-coded protocol table.
"""

from ..protocols.registry import ProtocolSetup
from .resilience import DegradedView, ResilienceReport, run_resilience
from .runner import (
    TABLE_HEADERS,
    ExperimentRunner,
    LevelSummary,
    RunResult,
)

__all__ = [
    "ExperimentRunner",
    "LevelSummary",
    "ProtocolSetup",
    "DegradedView",
    "ResilienceReport",
    "RunResult",
    "TABLE_HEADERS",
    "run_resilience",
]
