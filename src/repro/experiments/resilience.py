"""Resilience assessment against trace-based protocol reverse engineering.

Quantitative reproduction of the paper's Section VII.D: a PRE analyst (Netzob
expert in the paper, the :mod:`repro.pre` engine here) is given a network
trace of Modbus requests and responses.  On the non-obfuscated protocol the
exact message format is recovered; on the obfuscated protocol (one or more
obfuscations per node) the inference quality collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Sequence

from ..core.graph import FormatGraph
from ..core.message import Message
from ..pre.evaluate import InferenceScore, score_inference
from ..pre.inference import FormatInferencer
from ..protocols import modbus
from ..transforms.engine import Obfuscator
from ..wire.codec import WireCodec
from ..wire.spans import FieldSpan


@dataclass(frozen=True)
class ResilienceReport:
    """PRE inference quality on the plain and obfuscated protocol versions."""

    plain: InferenceScore
    obfuscated: dict[int, InferenceScore]

    def degradation(self, passes: int) -> float:
        """Relative F1 drop of the obfuscated version (1.0 = complete collapse)."""
        if self.plain.boundary_f1 == 0.0:
            return 0.0
        return 1.0 - self.obfuscated[passes].boundary_f1 / self.plain.boundary_f1


def _workload(seed: int, function_codes: Sequence[int], repeats: int
              ) -> tuple[list[tuple[str, Message]], list[object]]:
    """Requests and responses for a few function codes, with their true types.

    The captured traffic uses realistic value ranges (small addresses,
    sequential transaction identifiers) so that the trace resembles real
    Modbus deployments — the setting the paper's analyst was given.
    """
    rng = Random(seed)
    labelled: list[tuple[str, Message]] = []
    types: list[object] = []
    transaction_id = 1
    for _ in range(repeats):
        for function_code in function_codes:
            request = modbus.realistic_request(rng, function_code, transaction_id)
            response = modbus.realistic_response(rng, function_code, transaction_id)
            transaction_id += 1
            labelled.append(("request", request))
            types.append(("request", function_code))
            labelled.append(("response", response))
            types.append(("response", function_code))
    return labelled, types


def _capture(request_graph: FormatGraph, response_graph: FormatGraph,
             workload: Sequence[tuple[str, Message]], seed: int
             ) -> tuple[list[bytes], list[list[FieldSpan]]]:
    """Serialize the workload and record the ground-truth wire field spans."""
    request_codec = WireCodec(request_graph, seed=seed)
    response_codec = WireCodec(response_graph, seed=seed)
    trace: list[bytes] = []
    spans: list[list[FieldSpan]] = []
    for direction, message in workload:
        codec = request_codec if direction == "request" else response_codec
        data, message_spans = codec.serialize_with_spans(message)
        trace.append(data)
        spans.append(message_spans)
    return trace, spans


def run_resilience(*, passes_levels: Sequence[int] = (1,), seed: int = 0,
                   function_codes: Sequence[int] = (1, 3, 6, 16), repeats: int = 2,
                   similarity_threshold: float = 0.65) -> ResilienceReport:
    """Run the resilience experiment and score every obfuscation level.

    The defaults mirror the paper's setting: four different Modbus messages
    and their answers are captured; the analyst sees the raw trace only.
    """
    workload, types = _workload(seed, function_codes, repeats)
    inferencer = FormatInferencer(similarity_threshold=similarity_threshold)

    plain_trace, plain_spans = _capture(
        modbus.request_graph(), modbus.response_graph(), workload, seed
    )
    plain_score = score_inference(inferencer.infer(plain_trace), plain_spans, types)

    obfuscated_scores: dict[int, InferenceScore] = {}
    for passes in passes_levels:
        request_result = Obfuscator(seed=seed).obfuscate(modbus.request_graph(), passes)
        response_result = Obfuscator(seed=seed + 1).obfuscate(modbus.response_graph(), passes)
        trace, spans = _capture(request_result.graph, response_result.graph, workload, seed)
        obfuscated_scores[passes] = score_inference(inferencer.infer(trace), spans, types)

    return ResilienceReport(plain=plain_score, obfuscated=obfuscated_scores)
