"""Resilience assessment against trace-based protocol reverse engineering.

Quantitative reproduction of the paper's Section VII.D: a PRE analyst (Netzob
expert in the paper, the :mod:`repro.pre` engine here) is given a network
trace of protocol traffic.  On the non-obfuscated protocol the exact message
format is recovered; on the obfuscated protocol (one or more obfuscations per
node) the inference quality collapses.

The paper ran the assessment on Modbus only; this module generalizes it to
every protocol in the registry.  The default Modbus workload reproduces the
paper's setting exactly (four function codes, realistic value ranges,
sequential transaction identifiers); any other protocol — or Modbus with an
explicit ``trace_size`` — captures an alternating request/response workload
drawn from the protocol's registered core-application generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Mapping, Sequence

from ..core.graph import FormatGraph
from ..core.message import Message
from ..pre.evaluate import InferenceScore, score_inference
from ..pre.inference import FormatInferencer
from ..protocols import modbus, registry
from ..transforms.engine import Obfuscator
from ..wire.codec import WireCodec
from ..wire.spans import FieldSpan


#: Degraded-view kinds understood by :class:`DegradedView`.
VIEW_KINDS = ("partial", "truncated", "window", "mid_rotation")


@dataclass(frozen=True)
class DegradedView:
    """What a weakened attacker actually captured of a trace.

    The full-trace experiment hands the analyst every message; a real on-path
    observer rarely gets that.  A view deterministically selects the subset
    of the captured messages the analyst sees — identically for the plain
    trace and every obfuscation level, so the scores stay comparable:

    * ``partial`` — a seeded random sample of ``fraction`` of the messages
      (a sniffer that drops captures under load);
    * ``truncated`` — the leading ``fraction`` (a session cut early, the
      fault layer's truncation outcome);
    * ``window`` — a contiguous window of ``fraction`` starting at a seeded
      offset (an observer attached mid-session and detached before the end);
    * ``mid_rotation`` — everything before the first key-rotation boundary
      of a rotated trace (``fraction`` is ignored; requires
      ``rotations >= 1``), the attacker that never saw the later dialects.
    """

    kind: str = "partial"
    fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in VIEW_KINDS:
            raise ValueError(
                f"unknown view kind {self.kind!r}; expected one of {VIEW_KINDS}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be within (0, 1] ({self.fraction})")

    def keep_indices(self, count: int, *, boundary: int | None = None
                     ) -> list[int]:
        """Workload indices the analyst sees, deterministic per view."""
        if count == 0:
            return []
        keep = max(1, round(count * self.fraction))
        if self.kind == "partial":
            return sorted(Random(self.seed).sample(range(count), keep))
        if self.kind == "truncated":
            return list(range(keep))
        if self.kind == "window":
            start = Random(self.seed).randrange(0, count - keep + 1)
            return list(range(start, start + keep))
        # mid_rotation: the capture stops at the first rotation boundary.
        if boundary is None:
            raise ValueError(
                "a mid_rotation view needs a rotated trace; run with "
                "rotations >= 1"
            )
        return list(range(min(boundary, count)))

    def apply(self, trace: Sequence, spans: Sequence, types: Sequence, *,
              boundary: int | None = None) -> tuple[list, list, list]:
        """Restrict ``(trace, spans, types)`` to the view's selection."""
        indices = self.keep_indices(len(trace), boundary=boundary)
        return ([trace[i] for i in indices], [spans[i] for i in indices],
                [types[i] for i in indices])


@dataclass(frozen=True)
class ResilienceReport:
    """PRE inference quality on the plain and obfuscated protocol versions."""

    plain: InferenceScore
    obfuscated: dict[int, InferenceScore]
    protocol: str = "modbus"
    #: kind of the degraded attacker view applied (None = full trace).
    view: str | None = None

    def degradation(self, passes: int) -> float:
        """Relative F1 drop of the obfuscated version (1.0 = complete collapse)."""
        if self.plain.boundary_f1 == 0.0:
            return 0.0
        return 1.0 - self.obfuscated[passes].boundary_f1 / self.plain.boundary_f1


def _workload(seed: int, function_codes: Sequence[int], repeats: int
              ) -> tuple[list[tuple[str, Message]], list[object]]:
    """Requests and responses for a few function codes, with their true types.

    The captured traffic uses realistic value ranges (small addresses,
    sequential transaction identifiers) so that the trace resembles real
    Modbus deployments — the setting the paper's analyst was given.
    """
    rng = Random(seed)
    labelled: list[tuple[str, Message]] = []
    types: list[object] = []
    transaction_id = 1
    for _ in range(repeats):
        for function_code in function_codes:
            request = modbus.realistic_request(rng, function_code, transaction_id)
            response = modbus.realistic_response(rng, function_code, transaction_id)
            transaction_id += 1
            labelled.append(("request", request))
            types.append(("request", function_code))
            labelled.append(("response", response))
            types.append(("response", function_code))
    return labelled, types


def _generic_workload(setup: registry.ProtocolSetup, seed: int, trace_size: int
                      ) -> tuple[list[tuple[str, Message]], list[object]]:
    """An alternating request/response workload drawn from the registry.

    Protocols without a response direction produce a request-only trace; the
    true message type of every capture is its direction.
    """
    rng = Random(seed)
    directions = list(setup.directions())
    labelled: list[tuple[str, Message]] = []
    types: list[object] = []
    for index in range(trace_size):
        direction, _, generator = directions[index % len(directions)]
        labelled.append((direction, generator(rng)))
        types.append(direction)
    return labelled, types


def _capture(graphs: Mapping[str, FormatGraph],
             workload: Sequence[tuple[str, Message]], seed: int
             ) -> tuple[list[bytes], list[list[FieldSpan]]]:
    """Serialize the workload and record the ground-truth wire field spans."""
    codecs = {
        direction: WireCodec(graph, seed=seed)
        for direction, graph in graphs.items()
    }
    trace: list[bytes] = []
    spans: list[list[FieldSpan]] = []
    for direction, message in workload:
        data, message_spans = codecs[direction].serialize_with_spans(message)
        trace.append(data)
        spans.append(message_spans)
    return trace, spans


def _segment_bounds(total: int, segments: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal slices of a workload (first slices get the rest)."""
    base, extra = divmod(total, segments)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(segments):
        end = start + base + (1 if index < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


def run_resilience(*, protocol: str | None = None,
                   passes_levels: Sequence[int] = (1,), seed: int = 0,
                   function_codes: Sequence[int] = (1, 3, 6, 16), repeats: int = 2,
                   trace_size: int | None = None,
                   similarity_threshold: float = 0.65,
                   parallel: bool = False,
                   max_workers: int | None = None,
                   capture: object | None = None,
                   rotations: int = 0,
                   view: DegradedView | None = None) -> ResilienceReport:
    """Run the resilience experiment and score every obfuscation level.

    The defaults mirror the paper's setting: four different Modbus messages
    and their answers are captured; the analyst sees the raw trace only.
    ``protocol`` selects any registered protocol instead (``None``, the
    default, means Modbus — or the capture's own protocol); ``trace_size``
    switches to a registry-driven workload of that many captured messages
    (``function_codes``/``repeats`` only shape the default Modbus workload).
    ``parallel`` fans the similarity matrix of every inference over a process
    pool (bit-identical results).

    ``capture`` feeds the experiment genuinely transported traffic: a
    :class:`repro.net.Capture` recorded on the serializing side of a live
    session.  Its wire bytes and ground-truth spans become the plain trace
    exactly as captured, and its logical messages become the workload that
    the obfuscation levels re-serialize — so a live plain capture reproduces
    the in-memory experiment's scores when the workloads match.  A capture
    taken across mid-session key rotations works end-to-end: its mixed-dialect
    bytes are the plain trace the analyst sees.

    ``rotations`` is the rotated-traffic scenario: each obfuscation level
    serializes the workload in ``rotations + 1`` contiguous segments, every
    segment under an independently drawn obfuscation of the same level —
    emulating endpoints that switch plans mid-trace.  The analyst still sees
    one undifferentiated trace, so the scores quantify what key rotation does
    to the PRE engine on top of a single static obfuscation
    (``rotations=0``, the default, reproduces the static experiment exactly).

    ``view`` degrades what the analyst captured (:class:`DegradedView`):
    the same deterministic message selection is applied to the plain trace
    and every obfuscation level, so the reported scores compare the methods
    under an identically weakened observer.  The ``mid_rotation`` kind cuts
    at the first rotation boundary and therefore requires ``rotations >= 1``.
    """
    if capture is not None:
        capture_protocol = getattr(capture, "protocol", None)
        if capture_protocol is not None:
            if protocol is not None and protocol != capture_protocol:
                raise ValueError(
                    f"capture records protocol {capture_protocol!r} but "
                    f"protocol={protocol!r} was requested"
                )
            protocol = capture_protocol
    if protocol is None:
        protocol = "modbus"
    setup = registry.get(protocol)
    if capture is not None:
        workload = capture.workload()
        types = capture.types()
    elif protocol == "modbus" and trace_size is None:
        workload, types = _workload(seed, function_codes, repeats)
    else:
        size = trace_size if trace_size is not None else 4 * len(function_codes)
        workload, types = _generic_workload(setup, seed, size)
    inferencer = FormatInferencer(similarity_threshold=similarity_threshold,
                                  parallel=parallel, max_workers=max_workers)

    # Each direction's specification graph is built once and shared by the
    # plain capture and every obfuscation level: the obfuscation engine
    # clones before transforming, so the base graphs are never mutated.
    base_graphs: dict[str, FormatGraph] = {
        direction: factory() for direction, factory, _ in setup.directions()
    }
    if capture is not None and "response" not in base_graphs:
        # Single-direction protocols (MQTT) answer over the same packet
        # graph on a live session; mirror that here so both directions of
        # the captured workload re-serialize under the obfuscation levels.
        base_graphs["response"] = base_graphs["request"]
    unknown = {direction for direction, _ in workload} - set(base_graphs)
    if unknown:
        raise ValueError(
            f"workload directions {sorted(unknown)} are not modelled by "
            f"protocol {protocol!r}"
        )

    if rotations < 0:
        raise ValueError(f"rotations cannot be negative ({rotations})")
    segments = _segment_bounds(len(workload), rotations + 1)
    # The first rotation boundary, where the mid_rotation view cuts off.
    rotation_boundary = segments[0][1] if rotations > 0 else None
    if view is not None and view.kind == "mid_rotation" and rotations < 1:
        raise ValueError(
            "a mid_rotation view needs a rotated trace; run with rotations >= 1"
        )

    def seen(trace, spans):
        """What the (possibly degraded) analyst captures of a full trace."""
        if view is None:
            return trace, spans, types
        return view.apply(trace, spans, types, boundary=rotation_boundary)

    if capture is not None:
        plain_trace, plain_spans = capture.messages(), capture.field_spans()
    else:
        plain_trace, plain_spans = _capture(base_graphs, workload, seed)
    seen_trace, seen_spans, seen_types = seen(plain_trace, plain_spans)
    plain_score = score_inference(inferencer.infer(seen_trace), seen_spans,
                                  seen_types)

    obfuscated_scores: dict[int, InferenceScore] = {}
    for passes in passes_levels:
        trace: list[bytes] = []
        spans: list[list[FieldSpan]] = []
        for segment, (start, end) in enumerate(segments):
            # Aliased directions (a single-direction protocol answering over
            # its request graph) share one obfuscated graph, exactly like a
            # live deployment serializing both directions over the same
            # dialect.  Each rotation segment draws its own dialect; segment 0
            # uses the historical seed derivation, so rotations=0 reproduces
            # the static experiment bit for bit.
            obfuscated_by_identity: dict[int, FormatGraph] = {}
            obfuscated = {}
            for offset, (direction, graph) in enumerate(base_graphs.items()):
                transformed = obfuscated_by_identity.get(id(graph))
                if transformed is None:
                    transformed = Obfuscator(
                        seed=seed + offset + 7919 * segment
                    ).obfuscate(graph, passes).graph
                    obfuscated_by_identity[id(graph)] = transformed
                obfuscated[direction] = transformed
            segment_trace, segment_spans = _capture(
                obfuscated, workload[start:end], seed)
            trace.extend(segment_trace)
            spans.extend(segment_spans)
        seen_trace, seen_spans, seen_types = seen(trace, spans)
        obfuscated_scores[passes] = score_inference(
            inferencer.infer(seen_trace), seen_spans, seen_types)

    return ResilienceReport(plain=plain_score, obfuscated=obfuscated_scores,
                            protocol=protocol,
                            view=view.kind if view is not None else None)
