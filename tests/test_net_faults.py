"""Tests of the fault-injection transport layer and degraded-capture scoring.

Covers the PR 6 surface: the seeded :class:`FaultPlan`/:class:`FaultInjector`
link model, the loss-free delivery guarantee, adversarial truncation and
corruption against the framed decoders, failure latching, faulted live
sessions (recovery, resync accounting, diagnosis) and mid-rotation degraded
captures feeding the resilience experiment.
"""

from __future__ import annotations

import asyncio
from random import Random

import pytest

from repro.core.errors import StreamError
from repro.experiments import DegradedView, run_resilience
from repro.net import (
    Capture,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultyWriter,
    ObfuscatedClient,
    ObfuscatedServer,
    connect_memory,
    faulty_memory_pipe,
    memory_pipe,
)
from repro.net.framing import (
    MAX_RECORD_SIZE,
    RECORD_HEADER,
    RecordDecoder,
    encode_record,
    encode_rotation,
    frame_payload,
    make_decoder,
    resolve_framing,
)
from repro.net.rotation import PlanBook, derive_session_key
from repro.net.session import MemoryWriter, half_close
from repro.protocols import registry
from repro.transforms import Obfuscator
from repro.wire import WireCodec
from repro.wire.streaming import StreamingDecoder


def drive(plan: FaultPlan, payloads) -> tuple[list[bytes], "FaultInjector"]:
    """Run a sequence of writes through a fresh injector, to exhaustion."""
    injector = FaultInjector(plan)
    chunks: list[bytes] = []
    for payload in payloads:
        chunks.extend(injector.push(payload))
    chunks.extend(injector.flush())
    return chunks, injector


def request_generator(protocol: str):
    for direction, _, generator in registry.get(protocol).directions():
        if direction == "request":
            return generator
    raise LookupError(protocol)


# ---------------------------------------------------------------------------
# the plan artifact
# ---------------------------------------------------------------------------


class TestFaultPlan:
    @pytest.mark.parametrize("kwargs", [
        {"segment_size": 0},
        {"reorder_window": 0},
        {"corrupt_burst": 0},
        {"loss_rate": 1.5},
        {"corrupt_rate": -0.1},
        {"truncate_at": -1},
    ])
    def test_malformed_plans_rejected(self, kwargs):
        with pytest.raises(FaultPlanError):
            FaultPlan(**kwargs)

    def test_loss_free_models_are_not_lossy(self):
        assert not FaultPlan.clean().lossy
        assert not FaultPlan.reorder(0.5).lossy
        assert not FaultPlan.duplicate(0.5).lossy
        assert not FaultPlan.slow_loris().lossy

    def test_damaging_models_are_lossy(self):
        assert FaultPlan.loss(0.01).lossy
        assert FaultPlan.corrupt(0.01).lossy
        assert FaultPlan.truncate(100).lossy

    def test_json_round_trip(self):
        plan = FaultPlan(seed=7, loss_rate=0.1, reorder_rate=0.2,
                         duplicate_rate=0.3, corrupt_rate=0.05,
                         truncate_at=512, segment_size=16, jitter=False)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_fingerprint_is_stable_and_seed_sensitive(self):
        plan = FaultPlan.reorder(0.25, seed=3)
        assert plan.fingerprint == FaultPlan.reorder(0.25, seed=3).fingerprint
        assert plan.fingerprint != plan.reseed(4).fingerprint

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": 1, "packet_loss": 0.5})

    def test_malformed_json_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("[1, 2]")

    def test_describe_names_the_active_models(self):
        text = FaultPlan(loss_rate=0.1, corrupt_rate=0.05, truncate_at=9).describe()
        assert "loss=0.1" in text
        assert "corrupt=0.05" in text
        assert "truncate@9" in text


# ---------------------------------------------------------------------------
# the link model
# ---------------------------------------------------------------------------


LOSS_FREE_PLANS = [
    FaultPlan.clean(seed=20),
    FaultPlan.reorder(0.4, seed=21),
    FaultPlan.duplicate(0.5, seed=22),
    FaultPlan.slow_loris(seed=23),
    FaultPlan(seed=24, segment_size=5, reorder_rate=0.3, duplicate_rate=0.3),
]


class TestFaultInjector:
    def payloads(self, rng: Random, writes: int = 30) -> list[bytes]:
        return [rng.randbytes(rng.randrange(1, 200)) for _ in range(writes)]

    @pytest.mark.parametrize("plan", LOSS_FREE_PLANS, ids=lambda p: p.describe())
    def test_loss_free_plans_deliver_the_stream_verbatim(self, plan):
        payloads = self.payloads(Random(7))
        chunks, injector = drive(plan, payloads)
        assert b"".join(chunks) == b"".join(payloads)
        assert injector.counters.delivered_bytes == sum(map(len, payloads))
        assert injector.counters.undelivered_bytes == 0
        assert not injector.cut

    def test_replaying_a_lossy_plan_is_bit_identical(self):
        plan = FaultPlan(seed=99, segment_size=32, loss_rate=0.1,
                         reorder_rate=0.2, duplicate_rate=0.2, corrupt_rate=0.1)
        payloads = self.payloads(Random(8))
        first_chunks, first = drive(plan, payloads)
        second_chunks, second = drive(plan, payloads)
        assert first_chunks == second_chunks
        assert first.counters.summary() == second.counters.summary()

    def test_truncation_cuts_at_the_exact_offset(self):
        stream = Random(9).randbytes(5000)
        chunks, injector = drive(FaultPlan.truncate(1234, seed=1), [stream])
        assert b"".join(chunks) == stream[:1234]
        assert injector.cut
        assert injector.counters.truncated
        assert injector.counters.undelivered_bytes == 5000 - 1234
        assert injector.counters.delivered_bytes == 1234

    def test_loss_delivers_an_exact_stream_prefix(self):
        stream = Random(10).randbytes(5000)
        chunks, injector = drive(FaultPlan.loss(0.2, seed=2), [stream])
        delivered = b"".join(chunks)
        counters = injector.counters
        assert counters.dropped > 0
        assert delivered == stream[:len(delivered)]
        assert counters.delivered_bytes + counters.undelivered_bytes == 5000

    def test_corruption_damage_matches_the_counters(self):
        stream = Random(11).randbytes(5000)
        chunks, injector = drive(FaultPlan.corrupt(0.1, seed=3), [stream])
        delivered = b"".join(chunks)
        assert len(delivered) == len(stream)  # corruption never withholds bytes
        damage = sum(a != b for a, b in zip(delivered, stream))
        assert damage == injector.counters.corrupted_bytes > 0

    def test_push_after_flush_is_refused(self):
        injector = FaultInjector(FaultPlan.clean())
        injector.flush()
        with pytest.raises(FaultPlanError):
            injector.push(b"late")

    def test_pushes_after_the_cut_are_swallowed_and_counted(self):
        injector = FaultInjector(FaultPlan.truncate(4))
        injector.push(b"0123456789")
        assert injector.cut
        assert injector.push(b"after") == []
        assert injector.counters.undelivered_bytes == 6 + 5


# ---------------------------------------------------------------------------
# satellite 1: loss-free schedules are invisible to the decoders
# ---------------------------------------------------------------------------


class TestLossFreeDecoding:
    @pytest.mark.parametrize("passes", [0, 1, 2, 3, 4])
    def test_loss_free_schedules_decode_identically(self, protocol_case, passes):
        """Reordering, duplication and slow-loris feeds never change what a
        session decodes — for every protocol at every obfuscation level."""
        name, graph_factory, generator = protocol_case
        graph = Obfuscator(seed=3).obfuscate(graph_factory(), passes).graph
        framing = resolve_framing(graph, "auto")
        codec = WireCodec(graph, seed=9)
        rng = Random(17)
        framed = [frame_payload(codec.serialize(generator(rng)), framing)
                  for _ in range(4)]

        def decode(chunks):
            decoder = make_decoder(graph, framing)
            decoded = []
            for chunk in chunks:
                decoded.extend(decoder.feed(chunk))
            decoded.extend(decoder.feed_eof())
            return decoded

        clean = decode(framed)
        assert len(clean) == 4
        for plan in LOSS_FREE_PLANS:
            chunks, _ = drive(plan, framed)
            faulted = decode(chunks)
            assert [d.raw for d in faulted] == [d.raw for d in clean]
            assert [d.message for d in faulted] == [d.message for d in clean]
            assert ([(d.start, d.end) for d in faulted]
                    == [(d.start, d.end) for d in clean])
            replayed, _ = drive(plan, framed)
            assert replayed == chunks


# ---------------------------------------------------------------------------
# satellite 2: adversarial truncation and corruption always diagnose
# ---------------------------------------------------------------------------


class TestAdversarialDecoding:
    def one_record(self, protocol_case) -> tuple[object, bytes, list]:
        _, graph_factory, generator = protocol_case
        graph = graph_factory()
        codec = WireCodec(graph, seed=9)
        payload, spans = codec.serialize_with_spans(generator(Random(17)))
        return graph, payload, spans

    def test_truncation_at_every_offset_raises_stream_error(self, protocol_case):
        graph, payload, _ = self.one_record(protocol_case)
        record = encode_record(payload)
        for cut in range(1, len(record)):
            decoder = RecordDecoder(graph)
            decoder.feed(record[:cut])
            with pytest.raises(StreamError) as excinfo:
                decoder.feed_eof()
            assert excinfo.value.message_index == 0

    def test_corrupting_derived_bytes_raises_stream_error(self, protocol_case):
        """Length and counter bytes (derived fields: spans without an origin)
        are load-bearing; damaging any of them fails strict decoding."""
        name, _, _ = protocol_case
        graph, payload, spans = self.one_record(protocol_case)
        derived = [s for s in spans if s.origin is None and s.end > s.start]
        if not derived:
            pytest.skip(f"{name} serializes no derived length/counter bytes")
        for span in derived:
            damaged = bytearray(payload)
            damaged[span.start] ^= 0xFF
            decoder = RecordDecoder(graph)
            with pytest.raises(StreamError):
                decoder.feed(encode_record(bytes(damaged)))
                decoder.feed_eof()

    def test_corrupting_the_record_length_prefix_is_terminal(self, protocol_case):
        graph, payload, _ = self.one_record(protocol_case)
        damaged = bytearray(encode_record(payload))
        damaged[0] ^= 0xFF  # implausible length, beyond MAX_RECORD_SIZE
        assert int.from_bytes(damaged[:RECORD_HEADER], "big") >= MAX_RECORD_SIZE
        decoder = RecordDecoder(graph, resync=True)  # resync cannot save headers
        with pytest.raises(StreamError):
            decoder.feed(bytes(damaged))

    def test_corrupt_rotation_key_id_raises_unknown_key(self):
        key = derive_session_key("modbus", passes=1, seed=10)
        book = PlanBook([key])
        record = bytearray(encode_rotation(key.key_id))
        record[RECORD_HEADER + 2] ^= 0xFF  # damage the announced key id
        decoder = RecordDecoder(
            key.request_graph,
            key_resolver=lambda key_id: book.get(key_id).request_graph,
        )
        with pytest.raises(StreamError, match="unknown key"):
            decoder.feed(bytes(record))

    def test_rotation_without_a_plan_book_raises(self):
        key = derive_session_key("modbus", passes=1, seed=10)
        decoder = RecordDecoder(key.request_graph)
        with pytest.raises(StreamError, match="plan book"):
            decoder.feed(encode_rotation(key.key_id))

    def test_truncated_rotation_record_raises_at_eof(self):
        key = derive_session_key("modbus", passes=1, seed=10)
        decoder = RecordDecoder(key.request_graph)
        assert decoder.feed(encode_rotation(key.key_id)[:5]) == []
        with pytest.raises(StreamError):
            decoder.feed_eof()


# ---------------------------------------------------------------------------
# satellite 4: failure latching and idempotent half-close
# ---------------------------------------------------------------------------


class TestFailureLatching:
    def test_record_decoder_re_raises_the_original_error(self):
        graph = registry.get("modbus").reference_graph("request")
        decoder = RecordDecoder(graph)
        with pytest.raises(StreamError) as first:
            decoder.feed(MAX_RECORD_SIZE.to_bytes(RECORD_HEADER, "big"))
        for _ in range(2):
            with pytest.raises(StreamError) as again:
                decoder.feed(b"")
            assert again.value is first.value
            assert again.value.message_index == 0

    def test_streaming_decoder_re_raises_the_original_error(self):
        graph = registry.get("modbus").reference_graph("request")
        payload = WireCodec(graph, seed=9).serialize(
            request_generator("modbus")(Random(17)))
        decoder = StreamingDecoder(graph)
        decoder.feed(payload)           # message 0 decodes cleanly
        decoder.feed(payload[:5])       # message 1 is cut mid-field
        with pytest.raises(StreamError) as first:
            decoder.feed_eof()
        assert first.value.message_index == 1
        for _ in range(2):
            with pytest.raises(StreamError) as again:
                decoder.feed(payload)
            assert again.value is first.value
            assert again.value.message_index == 1

    def test_half_close_is_a_no_op_on_closing_writers(self):
        async def scenario():
            (_, writer), _ = memory_pipe()
            writer.close()
            half_close(writer)  # already closed: must not raise
            half_close(writer)

            (_, inner), _ = memory_pipe()
            faulty = FaultyWriter(inner, FaultPlan.clean())
            faulty.write(b"payload")
            faulty.write_eof()
            assert faulty.is_closing()
            half_close(faulty)  # EOF already sent: must not raise
            half_close(faulty)

        asyncio.run(scenario())

    def test_writes_after_the_fault_layer_eof_are_swallowed(self):
        async def scenario():
            (_, inner), _ = memory_pipe()
            faulty = FaultyWriter(inner, FaultPlan.clean())
            faulty.write(b"before")
            faulty.write_eof()
            faulty.write(b"after")  # died on the link, not in the application
            assert faulty.counters.undelivered_bytes == len(b"after")
            assert faulty.counters.delivered_bytes == len(b"before")

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# faulted live sessions
# ---------------------------------------------------------------------------


class TestFaultySessions:
    def run_session(self, protocol: str, *, count: int = 6,
                    request_faults: FaultPlan | None = None,
                    response_faults: FaultPlan | None = None):
        async def scenario():
            server = ObfuscatedServer(protocol, seed=1)
            client = ObfuscatedClient(protocol, seed=1)
            connect_memory(client, server, request_faults=request_faults,
                           response_faults=response_faults)
            rng = Random(5)
            generator = request_generator(protocol)
            replies = [await client.request(generator(rng)) for _ in range(count)]
            await client.close()
            return replies, server.completed[0]

        return asyncio.run(scenario())

    def test_loss_free_faulted_session_equals_the_clean_run(self):
        clean_replies, clean_stats = self.run_session("modbus")
        replies, stats = self.run_session(
            "modbus",
            request_faults=FaultPlan.reorder(0.4, seed=21),
            response_faults=FaultPlan.slow_loris(seed=23),
        )
        assert replies == clean_replies
        assert stats.error is None
        assert (stats.received, stats.sent) == (clean_stats.received,
                                                clean_stats.sent)

    def test_corrupt_requests_survive_via_resync_and_are_counted(self):
        async def scenario():
            server = ObfuscatedServer("http", resync=True)
            client = ObfuscatedClient("http", resync=True)
            connect_memory(client, server,
                           request_faults=FaultPlan.corrupt(0.08, seed=0,
                                                            segment_size=32))
            rng = Random(3)
            generator = request_generator("http")
            sent = 10
            for _ in range(sent):
                await client.send(generator(rng))
            half_close(client._writer)
            replies = 0
            while await client.receive() is not None:
                replies += 1
            await client.close()
            stats = server.completed[0]
            assert stats.error is None
            assert stats.resyncs >= 1
            assert stats.received + stats.resyncs == sent
            assert replies == stats.received

        asyncio.run(scenario())

    def test_truncated_request_stream_is_diagnosed_as_a_stream_error(self):
        async def scenario():
            server = ObfuscatedServer("modbus", seed=1)
            client = ObfuscatedClient("modbus", seed=1)
            connect_memory(client, server,
                           request_faults=FaultPlan.truncate(7, seed=1))
            await client.send(request_generator("modbus")(Random(5)))
            await client.close()
            stats = server.completed[0]
            assert stats.error is not None
            assert stats.error.startswith("StreamError")
            assert stats.received == 0

        asyncio.run(scenario())

    def test_faulty_memory_pipe_faults_exactly_the_requested_direction(self):
        async def scenario():
            (_, client_writer), (server_reader, server_writer) = \
                faulty_memory_pipe(request_plan=FaultPlan.truncate(4, seed=1))
            client_writer.write(b"0123456789")
            assert await server_reader.read(100) == b"0123"
            assert await server_reader.read(100) == b""  # cut half-closed it
            assert isinstance(server_writer, MemoryWriter)  # response leg clean

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# satellite 3: mid-rotation degraded captures
# ---------------------------------------------------------------------------


class TestMidRotationCaptures:
    def rotated_capture(self) -> tuple[Capture, list]:
        """A client-side capture of a modbus session rotating once mid-way."""
        keys = [derive_session_key("modbus", passes=1, seed=seed)
                for seed in (10, 20)]

        async def scenario():
            capture = Capture()
            server = ObfuscatedServer("modbus", plan_book=PlanBook(keys))
            client = ObfuscatedClient("modbus", plan_book=PlanBook(keys),
                                      capture=capture)
            connect_memory(client, server)
            rng = Random(5)
            generator = request_generator("modbus")
            for _ in range(4):
                await client.request(generator(rng))
            await client.rotate(keys[1].key_id)
            for _ in range(4):
                await client.request(generator(rng))
            await client.close()
            return capture

        return asyncio.run(scenario()), keys

    def test_capture_cut_between_rotations_round_trips_and_scores(self, tmp_path):
        capture, keys = self.rotated_capture()
        fingerprints = capture.plan_fingerprints()
        assert capture.rotation_count() == 1
        assert keys[1].request_fingerprint in fingerprints

        # The degraded observer detached before the rotation boundary.
        boundary = fingerprints.index(keys[1].request_fingerprint)
        degraded = capture.slice(0, boundary)
        assert len(degraded) == boundary == 4
        assert degraded.rotation_count() == 0
        assert keys[1].request_fingerprint not in degraded.plan_fingerprints()

        path = tmp_path / "degraded.jsonl"
        assert degraded.to_jsonl(path) == boundary
        restored = Capture.from_jsonl(path)
        assert restored.protocol == "modbus"
        assert restored.plan_fingerprints() == degraded.plan_fingerprints()
        assert restored.messages() == degraded.messages()
        assert restored.rotation_count() == 0

        report = run_resilience(capture=restored, passes_levels=(1,))
        assert report.protocol == "modbus"
        assert 0.0 <= report.obfuscated[1].boundary_f1 <= 1.0
        # The pre-rotation slice must not leak the unseen segment's plan.
        assert keys[1].request_fingerprint not in restored.plan_fingerprints()

    def test_slices_keep_original_sequence_numbers(self):
        capture, _ = self.rotated_capture()
        tail = capture.slice(4)
        assert [record.seq for record in tail] == [4, 5, 6, 7]
        assert tail.byte_count() == sum(len(r.data) for r in capture) - \
            capture.slice(0, 4).byte_count()


# ---------------------------------------------------------------------------
# degraded attacker views of the resilience experiment
# ---------------------------------------------------------------------------


class TestDegradedViews:
    def test_unknown_kind_and_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            DegradedView(kind="blurry")
        with pytest.raises(ValueError):
            DegradedView(fraction=0.0)
        with pytest.raises(ValueError):
            DegradedView(fraction=1.5)

    def test_selection_shapes(self):
        partial = DegradedView(kind="partial", fraction=0.5, seed=1)
        kept = partial.keep_indices(10)
        assert kept == sorted(set(kept)) and len(kept) == 5
        assert partial.keep_indices(10) == kept  # deterministic

        assert DegradedView(kind="truncated", fraction=0.3).keep_indices(10) \
            == [0, 1, 2]

        window = DegradedView(kind="window", fraction=0.4, seed=2).keep_indices(10)
        assert window == list(range(window[0], window[0] + 4))

        assert DegradedView(kind="mid_rotation").keep_indices(10, boundary=6) \
            == [0, 1, 2, 3, 4, 5]
        with pytest.raises(ValueError):
            DegradedView(kind="mid_rotation").keep_indices(10)

    @pytest.mark.parametrize("kind", ["partial", "truncated", "window"])
    def test_degraded_views_score_every_level(self, kind):
        report = run_resilience(passes_levels=(1,), repeats=1,
                                view=DegradedView(kind=kind, fraction=0.5))
        assert report.view == kind
        assert 0.0 <= report.plain.boundary_f1 <= 1.0
        assert 0.0 <= report.obfuscated[1].boundary_f1 <= 1.0

    def test_mid_rotation_view_requires_a_rotated_trace(self):
        with pytest.raises(ValueError):
            run_resilience(passes_levels=(1,), repeats=1,
                           view=DegradedView(kind="mid_rotation"))

    def test_mid_rotation_view_scores_the_first_segment_only(self):
        report = run_resilience(passes_levels=(1,), repeats=1, rotations=1,
                                view=DegradedView(kind="mid_rotation"))
        assert report.view == "mid_rotation"
        assert 0.0 <= report.obfuscated[1].boundary_f1 <= 1.0
