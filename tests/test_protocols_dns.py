"""Tests of the DNS specification and core application."""

from __future__ import annotations

from random import Random

import pytest

from repro.codegen import GeneratedCodec
from repro.core import BoundaryKind, NodeType
from repro.protocols import dns
from repro.transforms import Obfuscator
from repro.wire import WireCodec


class TestDnsSpec:
    def test_graph_scale_between_http_and_modbus(self):
        assert 12 <= dns.query_graph().stats().node_count <= 20
        assert 20 <= dns.response_graph().stats().node_count <= 32

    def test_contains_length_counter_delimited_repetition(self):
        graph = dns.response_graph()
        kinds = {node.boundary.kind for node in graph.nodes()}
        types = {node.type for node in graph.nodes()}
        assert BoundaryKind.LENGTH in kinds      # label/rdata length prefixes
        assert BoundaryKind.COUNTER in kinds     # qdcount/ancount
        assert BoundaryKind.DELIMITED in kinds   # zero-byte name terminator
        assert NodeType.REPETITION in types      # label sequences
        assert NodeType.TABULAR in types         # question/answer sections

    def test_known_wire_layout_query(self):
        codec = WireCodec(dns.query_graph(), seed=0)
        message = dns.build_query([("www.example.com", 1, 1)], query_id=0x1234)
        data = codec.serialize(message)
        assert data == bytes.fromhex(
            "1234"          # id
            "0100"          # flags: standard query, RD
            "0001"          # qdcount (derived)
            "0000" "0000" "0000"  # ancount, nscount, arcount
            "03777777076578616d706c6503636f6d00"  # 3www7example3com0
            "0001" "0001"   # qtype A, qclass IN
        )

    def test_known_wire_layout_response_with_answer(self):
        codec = WireCodec(dns.response_graph(), seed=0)
        message = dns.build_response(
            [("a.io", 1, 1)],
            [("a.io", 1, 1, 300, bytes([10, 0, 0, 1]))],
            response_id=7,
        )
        data = codec.serialize(message)
        assert data == bytes.fromhex(
            "0007" "8180" "0001" "0001" "0000" "0000"
            "016102696f00" "0001" "0001"                    # question: 1a2io0 A IN
            "016102696f00" "0001" "0001" "0000012c"         # answer name/type/class/ttl
            "0004" "0a000001"                               # rdlength + rdata
        )

    def test_qdcount_and_ancount_are_derived(self, rng):
        codec = WireCodec(dns.response_graph(), seed=0)
        for _ in range(10):
            message = dns.random_response(rng)
            data = codec.serialize(message)
            assert int.from_bytes(data[4:6], "big") == message.list_length("response_questions")
            assert int.from_bytes(data[6:8], "big") == message.list_length("response_answers")

    def test_label_longer_than_limit_rejected(self):
        with pytest.raises(ValueError):
            dns.build_query([("a" * 64 + ".com", 1, 1)])

    def test_query_round_trip(self, rng):
        codec = WireCodec(dns.query_graph(), seed=0)
        for _ in range(25):
            message = dns.random_query(rng)
            assert codec.parse(codec.serialize(message)) == message

    def test_response_round_trip(self, rng):
        codec = WireCodec(dns.response_graph(), seed=0)
        for _ in range(25):
            message = dns.random_response(rng)
            assert codec.parse(codec.serialize(message)) == message

    def test_matching_response_echoes_id_and_questions(self, rng):
        query = dns.random_query(rng, question_count=2)
        response = dns.matching_response(query, rng)
        assert response.get("response_id") == query.get("query_id")
        assert response.list_length("response_questions") == 2
        assert response.list_length("response_answers") == 2

    def test_random_conversation_alternates(self, rng):
        conversation = dns.random_conversation(rng, 2)
        assert [direction for direction, _ in conversation] == [
            "request", "response", "request", "response"
        ]

    def test_rdata_sizes_match_record_type(self, rng):
        assert len(dns.random_rdata(rng, 1)) == 4     # A
        assert len(dns.random_rdata(rng, 28)) == 16   # AAAA


class TestDnsObfuscation:
    @pytest.mark.parametrize("passes", [0, 1, 2, 3, 4])
    def test_query_round_trip_under_obfuscation(self, passes, rng):
        result = Obfuscator(seed=5).obfuscate(dns.query_graph(), passes)
        codec = WireCodec(result.graph, seed=5)
        for _ in range(8):
            message = dns.random_query(rng)
            assert codec.parse(codec.serialize(message)) == message

    @pytest.mark.parametrize("passes", [0, 1, 2, 3, 4])
    def test_response_round_trip_under_obfuscation(self, passes, rng):
        result = Obfuscator(seed=5).obfuscate(dns.response_graph(), passes)
        codec = WireCodec(result.graph, seed=5)
        for _ in range(8):
            message = dns.random_response(rng)
            assert codec.parse(codec.serialize(message)) == message

    def test_interpreted_and_generated_codecs_interchangeable(self, rng):
        """Acceptance check: seeded 2-pass run, 50 messages, byte-for-byte equal."""
        result = Obfuscator(seed=1).obfuscate(dns.query_graph(), 2)
        interpreted = WireCodec(result.graph, seed=42)
        generated = GeneratedCodec(result.graph, seed=42)
        for _ in range(50):
            message = dns.random_query(rng)
            wire = interpreted.serialize(message)
            assert generated.serialize(message) == wire
            assert generated.parse(wire) == message
            assert interpreted.parse(wire) == message

    def test_obfuscated_wire_differs_from_plain(self, rng):
        message = dns.random_query(rng)
        plain = WireCodec(dns.query_graph(), seed=0).serialize(message)
        obfuscated = WireCodec(
            Obfuscator(seed=0).obfuscate(dns.query_graph(), 2).graph, seed=0
        ).serialize(message)
        assert plain != obfuscated
