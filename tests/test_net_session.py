"""Asyncio obfuscated sessions: servers, clients, proxies, concurrency.

Runs over the in-process duplex transport (no sockets) except for one
explicit TCP round-trip; every test drives real session coroutines through
the same codepaths as the benchmarks and the live example.
"""

from __future__ import annotations

import asyncio
from random import Random

import pytest

from repro.net import (
    Capture,
    ObfuscatedClient,
    ObfuscatedProxy,
    ObfuscatedServer,
    connect_memory,
    memory_pipe,
)
from repro.protocols import mqtt, registry
from repro.transforms.engine import Obfuscator


def run(coroutine):
    return asyncio.run(coroutine)


def obfuscated_graphs(key: str, passes: int, *, seed: int = 0):
    """(request graph, response graph) of a protocol at one obfuscation level."""
    setup = registry.get(key)
    request = Obfuscator(seed=seed).obfuscate(setup.graph_factory(), passes).graph
    if setup.response_graph_factory is not None:
        response = Obfuscator(seed=seed + 1).obfuscate(
            setup.response_graph_factory(), passes).graph
    else:
        response = request
    return request, response


# ---------------------------------------------------------------------------
# request/response semantics per protocol
# ---------------------------------------------------------------------------


def test_modbus_session_echoes_function_code():
    async def scenario():
        server = ObfuscatedServer("modbus")
        client = connect_memory(ObfuscatedClient("modbus"), server)
        rng = Random(1)
        setup = registry.get("modbus")
        for _ in range(5):
            request = setup.message_generator(rng)
            reply = await client.request(request)
            assert (reply.get("response_payload.function_code")
                    == request.get("request_payload.function_code"))
            assert (reply.get("response_transaction_id")
                    == request.get("request_transaction_id"))
        await client.close()
        assert server.completed[0].received == 5
        assert server.completed[0].sent == 5
        assert server.completed[0].error is None

    run(scenario())


def test_dns_session_answers_every_question():
    async def scenario():
        server = ObfuscatedServer("dns")
        client = connect_memory(ObfuscatedClient("dns"), server)
        setup = registry.get("dns")
        request = setup.message_generator(Random(2))
        reply = await client.request(request)
        assert reply.get("response_id") == request.get("query_id")
        assert (reply.list_length("response_answers")
                == request.list_length("query_questions"))
        await client.close()

    run(scenario())


def test_http_session_uses_record_framing_and_replies():
    async def scenario():
        server = ObfuscatedServer("http")
        client = connect_memory(ObfuscatedClient("http"), server)
        assert client.endpoint.request_framing == "record"
        assert server.endpoint.response_framing == "record"
        from repro.protocols import http

        request = http.build_request(
            "POST", "/api/v1/items",
            headers=[("Host", "example.com"), ("X-Request-Id", "token-1234567890")],
            body=b"alpha bravo",
        )
        reply = await client.request(request)
        assert reply.get("status_code") == "201"
        names = [
            reply.get(f"response_headers[{i}].response_header_name")
            for i in range(reply.list_length("response_headers"))
        ]
        assert "X-Request-Id" in names
        await client.close()

    run(scenario())


def test_mqtt_broker_session():
    async def scenario():
        server = ObfuscatedServer("mqtt")
        client = connect_memory(ObfuscatedClient("mqtt"), server)
        # CONNECT is absorbed (no CONNACK in the modelled families).
        await client.send(mqtt.build_connect("sensor-01"))
        # PUBLISH comes back as the broker's QoS-0 delivery.
        reply = await client.request(
            mqtt.build_publish("factory/line", b"21.5", qos=1, packet_id=7))
        assert reply.get("packet_type") == mqtt.PUBLISH_QOS0
        prefix = "mqtt_body.publish_qos0_block"
        assert reply.get(f"{prefix}.publish_qos0_topic") == "factory/line"
        assert reply.get(f"{prefix}.publish_qos0_payload") == b"21.5"
        # PINGREQ is echoed.
        pong = await client.request(mqtt.build_pingreq())
        assert pong.get("packet_type") == mqtt.PINGREQ
        await client.close()
        assert server.completed[0].received == 3
        assert server.completed[0].sent == 2

    run(scenario())


# ---------------------------------------------------------------------------
# obfuscated wires
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("key,passes", [("modbus", 3), ("http", 2), ("dns", 1),
                                        ("mqtt", 2)])
def test_obfuscated_session_round_trip(key, passes):
    async def scenario():
        request_graph, response_graph = obfuscated_graphs(key, passes, seed=20)
        server = ObfuscatedServer(key, request_graph=request_graph,
                                  response_graph=response_graph)
        client = connect_memory(
            ObfuscatedClient(key, request_graph=request_graph,
                             response_graph=response_graph),
            server,
        )
        setup = registry.get(key)
        rng = Random(passes)
        for _ in range(4):
            message = setup.message_generator(rng)
            if key == "mqtt" and message.get("packet_type") == mqtt.CONNECT:
                await client.send(message)
            else:
                await client.request(message)
        await client.close()
        assert server.completed[0].error is None
        assert server.completed[0].received == 4

    run(scenario())


# ---------------------------------------------------------------------------
# concurrency
# ---------------------------------------------------------------------------


def test_many_concurrent_memory_sessions():
    async def scenario():
        server = ObfuscatedServer("modbus")
        setup = registry.get("modbus")

        async def one_session(index):
            client = connect_memory(
                ObfuscatedClient("modbus", session_id=f"c{index}"), server)
            rng = Random(index)
            for _ in range(3):
                await client.request(setup.message_generator(rng))
            await client.close()

        await asyncio.gather(*(one_session(index) for index in range(64)))
        assert len(server.completed) == 64
        assert all(stats.error is None for stats in server.completed)
        assert sum(stats.received for stats in server.completed) == 64 * 3

    run(scenario())


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------


def test_tcp_sessions():
    async def scenario():
        server = ObfuscatedServer("http")
        host, port = await server.start_tcp()
        setup = registry.get("http")

        async def one_session(index):
            client = ObfuscatedClient("http")
            await client.connect_tcp(host, port)
            rng = Random(index)
            for _ in range(2):
                reply = await client.request(setup.message_generator(rng))
                assert reply.get("status_code") in ("200", "201")
            await client.close()

        await asyncio.gather(*(one_session(index) for index in range(8)))
        await server.stop()
        assert len(server.completed) == 8
        assert all(stats.error is None for stats in server.completed)

    run(scenario())


# ---------------------------------------------------------------------------
# sink servers and sniffer-style capture
# ---------------------------------------------------------------------------


def test_sink_server_and_received_capture():
    async def scenario():
        capture = Capture()
        server = ObfuscatedServer("mqtt", responder=None, capture=capture,
                                  capture_received=True)
        client = connect_memory(ObfuscatedClient("mqtt"), server)
        packets = [mqtt.build_connect("probe-7"),
                   mqtt.build_publish("cell/status", b"ok", qos=0)]
        sent = [await client.send(packet) for packet in packets]
        await client.close()
        assert server.completed[0].received == 2
        assert server.completed[0].sent == 0
        # The sniffer view records raw inbound bytes without ground truth.
        assert [record.data for record in capture] == sent
        assert all(not record.has_truth() for record in capture)

    run(scenario())


# ---------------------------------------------------------------------------
# the proxy/gateway
# ---------------------------------------------------------------------------


def test_proxy_bridges_plain_client_to_obfuscated_server():
    async def scenario():
        request_graph, response_graph = obfuscated_graphs("modbus", 2, seed=30)
        capture = Capture()
        server = ObfuscatedServer("modbus", request_graph=request_graph,
                                  response_graph=response_graph, capture=capture)
        proxy = ObfuscatedProxy("modbus",
                                upstream_request_graph=request_graph,
                                upstream_response_graph=response_graph,
                                capture=capture)
        (client_reader, client_writer), (listen_reader, listen_writer) = memory_pipe()
        (up_reader, up_writer), (server_reader, server_writer) = memory_pipe()
        client = ObfuscatedClient("modbus").attach(client_reader, client_writer)
        server_task = asyncio.ensure_future(
            server.serve_session(server_reader, server_writer))
        proxy_task = asyncio.ensure_future(
            proxy.bridge(listen_reader, listen_writer, up_reader, up_writer))
        setup = registry.get("modbus")
        rng = Random(31)
        for _ in range(5):
            request = setup.message_generator(rng)
            reply = await client.request(request)
            assert (reply.get("response_payload.function_code")
                    == request.get("request_payload.function_code"))
        await client.close(wait_server=False)
        await proxy_task
        await server_task
        assert proxy.completed[0].requests == 5
        assert proxy.completed[0].responses == 5
        assert proxy.completed[0].error is None
        # The shared capture saw the obfuscated leg in both directions, with
        # ground truth from whichever endpoint serialized each message.
        assert len(capture) == 10
        assert {record.direction for record in capture} == {"request", "response"}
        assert capture.byte_count() > 0
        assert all(record.logical is not None for record in capture)

    run(scenario())


def test_proxy_over_tcp():
    async def scenario():
        request_graph, response_graph = obfuscated_graphs("http", 1, seed=40)
        server = ObfuscatedServer("http", request_graph=request_graph,
                                  response_graph=response_graph)
        server_host, server_port = await server.start_tcp()
        proxy = ObfuscatedProxy("http",
                                upstream_request_graph=request_graph,
                                upstream_response_graph=response_graph)
        proxy_host, proxy_port = await proxy.start_tcp(server_host, server_port)
        client = ObfuscatedClient("http")
        await client.connect_tcp(proxy_host, proxy_port)
        setup = registry.get("http")
        rng = Random(41)
        for _ in range(3):
            reply = await client.request(setup.message_generator(rng))
            assert reply.get("status_code") in ("200", "201")
        await client.close()
        await proxy.stop()
        await server.stop()
        assert proxy.completed[0].requests == 3

    run(scenario())
