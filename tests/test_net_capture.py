"""Capture objects: JSONL portability and capture-driven PRE experiments.

The load-bearing test is the reproduction check: a live, transported HTTP
workload captured on the serializing side must drive ``run_resilience`` to
*exactly* the scores of the classic in-memory experiment — plain trace and
obfuscation levels alike.
"""

from __future__ import annotations

import asyncio
from random import Random

import pytest

from repro.experiments import run_resilience
from repro.experiments.resilience import _generic_workload
from repro.net import Capture, CaptureError, ObfuscatedClient, ObfuscatedServer, connect_memory
from repro.pre import infer_formats
from repro.protocols import registry


def live_capture(key: str, workload, *, seed: int = 0) -> Capture:
    """Transport ``workload`` over one in-process session, capturing both sides.

    The client sends the workload's requests; a scripted responder makes the
    server answer with the workload's exact response messages, so the capture
    replays the in-memory experiment's traffic byte-for-byte.
    """

    async def scenario():
        capture = Capture()
        responses = iter(message for direction, message in workload
                         if direction == "response")
        server = ObfuscatedServer(
            key, responder=lambda request, rng: next(responses),
            seed=seed, capture=capture,
        )
        client = connect_memory(
            ObfuscatedClient(key, seed=seed, capture=capture), server)
        for direction, message in workload:
            if direction == "request":
                await client.request(message)
        await client.close()
        assert server.completed[0].error is None
        return capture

    return asyncio.run(scenario())


# ---------------------------------------------------------------------------
# capture bookkeeping
# ---------------------------------------------------------------------------


def test_capture_records_and_views():
    setup = registry.get("modbus")
    workload, _ = _generic_workload(setup, 3, 6)
    capture = live_capture("modbus", workload)
    assert len(capture) == 6
    assert capture.protocol == "modbus"
    assert capture.types() == [direction for direction, _ in workload]
    assert capture.sessions() == ("client-1",) or len(capture.sessions()) == 1
    requests = capture.filter(direction="request")
    assert len(requests) == 3
    assert all(record.direction == "request" for record in requests)
    assert capture.byte_count() == sum(len(record.data) for record in capture)
    assert all(record.has_truth() for record in capture)


def test_capture_jsonl_round_trip(tmp_path):
    setup = registry.get("dns")
    workload, _ = _generic_workload(setup, 5, 4)
    capture = live_capture("dns", workload)
    path = tmp_path / "trace.jsonl"
    assert capture.to_jsonl(path) == 4
    loaded = Capture.from_jsonl(path)
    assert loaded.protocol == "dns"
    assert len(loaded) == len(capture)
    for original, restored in zip(capture, loaded):
        assert restored.session == original.session
        assert restored.direction == original.direction
        assert restored.data == original.data
        assert restored.timestamp == pytest.approx(original.timestamp, abs=1e-5)
        assert restored.spans == original.spans
        assert restored.logical == original.logical


def test_capture_redacted_export_is_sniffer_view(tmp_path):
    setup = registry.get("modbus")
    workload, _ = _generic_workload(setup, 1, 4)
    capture = live_capture("modbus", workload)
    path = tmp_path / "attacker.jsonl"
    capture.to_jsonl(path, redact=True)
    loaded = Capture.from_jsonl(path)
    assert [record.data for record in loaded] == capture.messages()
    assert all(not record.has_truth() for record in loaded)
    with pytest.raises(CaptureError):
        loaded.field_spans()
    with pytest.raises(CaptureError):
        loaded.workload()
    # The redacted view still feeds the PRE engine (bytes are all it needs).
    result = infer_formats(loaded)
    assert result.cluster_count >= 1


def test_capture_from_malformed_jsonl(tmp_path):
    path = tmp_path / "broken.jsonl"
    path.write_text('{"session": "s", "direction": "request"}\n')
    with pytest.raises(CaptureError):
        Capture.from_jsonl(path)


# ---------------------------------------------------------------------------
# capture-driven experiments
# ---------------------------------------------------------------------------


def test_run_resilience_on_live_http_capture_reproduces_in_memory_results():
    """Acceptance: a transported plain-HTTP workload scores identically."""
    seed, size = 0, 12
    workload, _ = _generic_workload(registry.get("http"), seed, size)
    capture = live_capture("http", workload, seed=seed)
    live = run_resilience(capture=capture, passes_levels=(1,), seed=seed)
    memory = run_resilience(protocol="http", passes_levels=(1,), seed=seed,
                            trace_size=size)
    assert live.protocol == "http"
    assert live.plain == memory.plain
    assert live.obfuscated == memory.obfuscated


def test_run_resilience_on_mqtt_capture():
    """Single-direction protocols map their response leg onto the packet graph."""
    async def scenario():
        capture = Capture()
        server = ObfuscatedServer("mqtt", capture=capture)
        client = connect_memory(ObfuscatedClient("mqtt", capture=capture), server)
        from repro.protocols import mqtt

        rng = Random(4)
        for _ in range(6):
            await client.request(
                mqtt.build_publish(mqtt.random_topic(rng),
                                   mqtt.random_payload(rng), qos=0))
        await client.close()
        return capture

    capture = asyncio.run(scenario())
    report = run_resilience(capture=capture, passes_levels=(1,), seed=0)
    assert report.protocol == "mqtt"
    assert 0.0 <= report.plain.boundary_f1 <= 1.0
    assert set(report.obfuscated) == {1}


def test_run_resilience_capture_protocol_mismatch():
    setup = registry.get("modbus")
    workload, _ = _generic_workload(setup, 0, 2)
    capture = live_capture("modbus", workload)
    with pytest.raises(ValueError):
        run_resilience(capture=capture, protocol="http")


def test_infer_formats_accepts_capture_directly():
    setup = registry.get("modbus")
    workload, _ = _generic_workload(setup, 7, 8)
    capture = live_capture("modbus", workload)
    from_capture = infer_formats(capture)
    from_bytes = infer_formats(capture.messages())
    assert from_capture.clustering.clusters == from_bytes.clustering.clusters
    for index in range(len(capture)):
        assert (from_capture.boundaries_for(index)
                == from_bytes.boundaries_for(index))
