"""Tests of the parallel experiment harness.

The paper's experiment protocol derives all randomness of one run from
``run_seed = seed*10_000 + passes*100 + run_index``, which makes runs
independent of execution order.  ``ExperimentRunner.run_level`` exploits this
to fan the runs of one level out over a process pool; these tests pin the
bit-identity contract between the sequential and parallel executions.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.runner import _run_once_task


def _signatures(runs):
    return [run.deterministic_signature() for run in runs]


def test_run_once_is_deterministic_for_fixed_indices():
    runner = ExperimentRunner("modbus", seed=5, runs_per_level=2, messages_per_run=3)
    first = runner.run_once(passes=1, run_index=1)
    second = runner.run_once(passes=1, run_index=1)
    assert first.deterministic_signature() == second.deterministic_signature()


def test_deterministic_signature_excludes_wall_clock_fields():
    runner = ExperimentRunner("modbus", seed=5, runs_per_level=1, messages_per_run=3)
    run = runner.run_once(passes=1, run_index=0)
    signature = run.deterministic_signature()
    assert run.protocol in signature
    for timing in (run.generation_ms, run.parse_ms, run.serialize_ms):
        assert timing not in signature


def test_worker_task_reproduces_in_process_run():
    runner = ExperimentRunner("modbus", seed=7, runs_per_level=2, messages_per_run=3)
    direct = runner.run_once(passes=2, run_index=1)
    via_task = _run_once_task("modbus", 7, 3, None, None, None, 2, 1)
    assert direct.deterministic_signature() == via_task.deterministic_signature()


@pytest.mark.parametrize("passes", [0, 1])
def test_parallel_run_level_is_bit_identical_to_sequential(passes):
    sequential = ExperimentRunner("modbus", seed=5, runs_per_level=3, messages_per_run=3)
    parallel = ExperimentRunner("modbus", seed=5, runs_per_level=3, messages_per_run=3,
                                parallel=True, max_workers=2)
    assert _signatures(sequential.run_level(passes)) == _signatures(parallel.run_level(passes))


def test_unpicklable_configuration_falls_back_to_sequential():
    from repro.transforms.base import Transformation, TransformationCategory

    class Unpicklable(Transformation):
        name = "unpicklable"
        category = TransformationCategory.AGGREGATION

        def __init__(self):
            self.fn = lambda: None  # lambdas cannot cross process boundaries

        def is_applicable(self, graph, node):
            return False

        def apply(self, graph, node, rng):  # pragma: no cover - never applicable
            raise NotImplementedError

    runner = ExperimentRunner("modbus", seed=9, runs_per_level=2, messages_per_run=2,
                              parallel=True, transformations=[Unpicklable()])
    runs = runner.run_level(passes=1)  # must not raise: sequential fallback
    assert len(runs) == 2


def test_parallel_preserves_run_order():
    runner = ExperimentRunner("http", seed=2, runs_per_level=3, messages_per_run=2,
                              parallel=True, max_workers=3)
    runs = runner.run_level(passes=1)
    reference = ExperimentRunner("http", seed=2, runs_per_level=3, messages_per_run=2)
    assert _signatures(runs) == _signatures(reference.run_level(passes=1))
