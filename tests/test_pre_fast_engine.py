"""Tests of the fast PRE engine: exactness, edge cases and determinism.

The engine behind ``similarity``/``pairwise_similarity``/``cluster_messages``
was rearchitected for large traces (banded and vectorized score-only
alignment, dedup + memoization, heap-based Lance–Williams clustering).  Every
shortcut claims to be *exact*; these tests hold it to that claim against
naive reference implementations, including on randomized traces, and pin the
traceback tie-break the fast paths must reproduce.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.experiments import run_resilience
from repro.pre import (
    banded_nw_score,
    clear_similarity_cache,
    cluster_messages,
    infer_formats,
    needleman_wunsch,
    nw_score,
    pairwise_similarity,
    similarity,
)
from repro.pre import alignment as alignment_module
from repro.protocols import modbus, registry


# ---------------------------------------------------------------------------
# naive reference implementations (the pre-rearchitecture semantics)
# ---------------------------------------------------------------------------


def naive_similarity(first: bytes, second: bytes) -> float:
    if not first and not second:
        return 1.0
    return needleman_wunsch(first, second).identity()


def naive_pairwise(messages) -> list[list[float]]:
    count = len(messages)
    matrix = [[1.0] * count for _ in range(count)]
    for row in range(count):
        for col in range(row + 1, count):
            value = naive_similarity(messages[row], messages[col])
            matrix[row][col] = value
            matrix[col][row] = value
    return matrix


def naive_cluster(messages, *, threshold, similarity_matrix):
    """The rescan agglomeration the heap implementation must reproduce."""
    count = len(messages)
    if count == 0:
        return ()
    matrix = [list(row) for row in similarity_matrix]
    clusters = [[index] for index in range(count)]

    def average_linkage(first, second):
        total = 0.0
        for a in first:
            for b in second:
                total += matrix[a][b]
        return total / (len(first) * len(second))

    while len(clusters) > 1:
        best_pair = None
        best_value = threshold
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                value = average_linkage(clusters[i], clusters[j])
                if value >= best_value:
                    best_value = value
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        clusters[i] = clusters[i] + clusters[j]
        del clusters[j]
    return tuple(tuple(sorted(cluster)) for cluster in clusters)


def random_trace(rng: Random, count: int, *, alphabet: int = 6,
                 max_length: int = 30, duplicate_rate: float = 0.3) -> list[bytes]:
    trace: list[bytes] = []
    for _ in range(count):
        if trace and rng.random() < duplicate_rate:
            trace.append(trace[rng.randrange(len(trace))])
        else:
            trace.append(bytes(rng.randrange(alphabet)
                               for _ in range(rng.randrange(0, max_length))))
    return trace


# ---------------------------------------------------------------------------
# edge cases
# ---------------------------------------------------------------------------


class TestEdgeCases:
    def test_empty_trace(self):
        result = infer_formats([])
        assert result.messages == ()
        assert result.cluster_count == 0
        assert pairwise_similarity([]) == []
        assert cluster_messages([]).count == 0

    def test_single_message(self):
        result = infer_formats([b"GET / HTTP/1.1"])
        assert result.cluster_count == 1
        assert result.clustering.clusters == ((0,),)
        assert pairwise_similarity([b"x"]) == [[1.0]]

    def test_all_identical_messages(self):
        trace = [b"\x01\x02\x03\x04"] * 9
        matrix = pairwise_similarity(trace)
        assert all(value == 1.0 for row in matrix for value in row)
        clustering = cluster_messages(trace, threshold=0.8)
        assert clustering.clusters == (tuple(range(9)),)
        result = infer_formats(trace)
        assert result.cluster_count == 1

    def test_empty_messages_in_trace(self):
        trace = [b"", b"abc", b"", b"abc"]
        matrix = pairwise_similarity(trace)
        assert matrix[0][2] == 1.0
        assert matrix[0][1] == 0.0
        assert matrix[1][3] == 1.0
        assert matrix == naive_pairwise(trace)


# ---------------------------------------------------------------------------
# traceback tie-break determinism
# ---------------------------------------------------------------------------


class TestTracebackTieBreak:
    def test_diagonal_preferred_on_ties(self):
        # Both optimal alignments of "aa" vs "a" score 0; the traceback
        # resolves the tie from the end and pairs the *last* 'a' diagonally.
        alignment = needleman_wunsch(b"aa", b"a")
        assert alignment.first == (ord("a"), ord("a"))
        assert alignment.second == (None, ord("a"))
        assert alignment.score == 0
        assert alignment.identity() == 0.5

    def test_transposition_tie(self):
        alignment = needleman_wunsch(b"ab", b"ba")
        assert alignment.score == -2
        assert alignment.identity() == 0.0

    def test_similarity_is_order_sensitive_like_the_traceback(self):
        # The traceback tie-break is not symmetric; the fast engine must
        # reproduce the per-order values, not a symmetrized variant.
        first, second = b"\x00\x03\x01\x01\x03\x00", b"\x01\x03\x00\x01"
        assert similarity(first, second) == pytest.approx(1 / 3)
        assert similarity(second, first) == pytest.approx(3 / 7)
        assert similarity(first, second) == naive_similarity(first, second)
        assert similarity(second, first) == naive_similarity(second, first)

    def test_similarity_matches_traceback_identity_fuzz(self):
        rng = Random(5)
        for _ in range(300):
            first = bytes(rng.randrange(5) for _ in range(rng.randrange(0, 16)))
            second = bytes(rng.randrange(5) for _ in range(rng.randrange(0, 16)))
            assert similarity(first, second) == naive_similarity(first, second)


# ---------------------------------------------------------------------------
# score-only engine
# ---------------------------------------------------------------------------


class TestScoreOnly:
    def test_nw_score_matches_full_alignment(self):
        rng = Random(6)
        for _ in range(200):
            first = bytes(rng.randrange(5) for _ in range(rng.randrange(0, 20)))
            second = bytes(rng.randrange(5) for _ in range(rng.randrange(0, 20)))
            assert nw_score(first, second) == needleman_wunsch(first, second).score

    def test_banded_score_is_a_tight_lower_bound(self):
        rng = Random(7)
        for _ in range(100):
            base = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 60)))
            edited = bytearray(base)
            for _ in range(rng.randrange(0, 4)):
                edited[rng.randrange(len(edited))] = rng.randrange(256)
            exact = nw_score(base, bytes(edited))
            banded = banded_nw_score(base, bytes(edited))
            assert banded <= exact
            # Few point edits keep the optimal path inside the default band.
            assert banded == exact

    def test_similarity_fast_paths_skip_the_dp(self, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("DP must not run for identical/empty inputs")

        monkeypatch.setattr(alignment_module, "_alignment_identity", explode)
        assert similarity(b"same bytes", b"same bytes") == 1.0
        assert similarity(b"", b"") == 1.0
        assert similarity(b"", b"abc") == 0.0
        assert similarity(b"abc", b"") == 0.0


# ---------------------------------------------------------------------------
# similarity matrix: dedup, memoization, batching, parallelism
# ---------------------------------------------------------------------------


class TestPairwiseMatrix:
    def test_matches_naive_on_randomized_traces(self):
        rng = Random(8)
        for _ in range(10):
            trace = random_trace(rng, rng.randrange(0, 25))
            clear_similarity_cache()
            assert pairwise_similarity(trace) == naive_pairwise(trace)

    def test_memoized_across_calls(self):
        trace = [b"one message", b"another message", b"one message"]
        clear_similarity_cache()
        first = pairwise_similarity(trace)
        # Second call is served from the memo; values must be unchanged.
        assert pairwise_similarity(trace) == first == naive_pairwise(trace)

    def test_pure_python_fallback_matches_batched(self, monkeypatch):
        rng = Random(9)
        trace = random_trace(rng, 20, duplicate_rate=0.1)
        clear_similarity_cache()
        batched = pairwise_similarity(trace)
        monkeypatch.setattr(alignment_module, "_np", None)
        clear_similarity_cache()
        fallback = pairwise_similarity(trace)
        assert batched == fallback

    def test_parallel_matrix_bit_identical(self):
        rng = Random(10)
        trace = random_trace(rng, 24)
        clear_similarity_cache()
        sequential = pairwise_similarity(trace)
        clear_similarity_cache()
        parallel = pairwise_similarity(trace, parallel=True, max_workers=2)
        assert parallel == sequential

    def test_parallel_inference_bit_identical(self):
        rng = Random(0)
        codec_trace = [
            bytes(rng.randrange(4) for _ in range(rng.randrange(4, 16)))
            for _ in range(16)
        ]
        sequential = infer_formats(codec_trace)
        parallel = infer_formats(codec_trace, parallel=True, max_workers=2)
        assert sequential.clustering.clusters == parallel.clustering.clusters
        for index in range(len(codec_trace)):
            assert (sequential.boundaries_for(index)
                    == parallel.boundaries_for(index))


# ---------------------------------------------------------------------------
# clustering equivalence
# ---------------------------------------------------------------------------


class TestClusteringEquivalence:
    def test_matches_naive_on_randomized_traces(self):
        rng = Random(11)
        for _ in range(15):
            trace = random_trace(rng, rng.randrange(0, 28))
            matrix = naive_pairwise(trace)
            threshold = rng.choice([0.5, 0.65, 0.8, 1.0])
            expected = naive_cluster(trace, threshold=threshold,
                                     similarity_matrix=matrix)
            got = cluster_messages(trace, threshold=threshold,
                                   similarity_matrix=matrix)
            assert got.clusters == expected

    def test_matches_naive_with_deliberate_ties(self):
        rng = Random(12)
        values = [0.0, 0.25, 0.5, 2 / 3, 0.75, 0.8, 1.0]
        for _ in range(40):
            count = rng.randrange(2, 14)
            matrix = [[1.0] * count for _ in range(count)]
            for i in range(count):
                for j in range(i + 1, count):
                    matrix[i][j] = matrix[j][i] = rng.choice(values)
            messages = [bytes([i]) for i in range(count)]
            threshold = rng.choice([0.5, 2 / 3, 0.8, 1.0])
            expected = naive_cluster(messages, threshold=threshold,
                                     similarity_matrix=matrix)
            got = cluster_messages(messages, threshold=threshold,
                                   similarity_matrix=matrix)
            assert got.clusters == expected

    def test_threshold_edge_inclusive(self):
        # A pair sitting exactly on the threshold must merge (`>=` semantics).
        matrix = [[1.0, 0.8], [0.8, 1.0]]
        clustering = cluster_messages([b"a", b"b"], threshold=0.8,
                                      similarity_matrix=matrix)
        assert clustering.clusters == ((0, 1),)


# ---------------------------------------------------------------------------
# generalized resilience experiment
# ---------------------------------------------------------------------------


class TestGeneralizedResilience:
    def test_runs_for_every_registered_protocol(self):
        for key in registry.available():
            report = run_resilience(protocol=key, passes_levels=(1,), seed=0,
                                    trace_size=8)
            assert report.protocol == key
            assert 0.0 <= report.plain.classification_purity <= 1.0
            assert set(report.obfuscated) == {1}

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_resilience(protocol="ftp")

    def test_graphs_built_once_per_call(self):
        calls = {"request": 0, "response": 0}

        def counting(direction, factory):
            def build():
                calls[direction] += 1
                return factory()
            return build

        setup = registry.ProtocolSetup(
            key="_resilience_probe",
            label="probe",
            graph_factory=counting("request", modbus.request_graph),
            message_generator=modbus.random_request,
            response_graph_factory=counting("response", modbus.response_graph),
            response_generator=modbus.random_response,
        )
        registry.register(setup)
        try:
            run_resilience(protocol="_resilience_probe", passes_levels=(1, 2),
                           seed=0, trace_size=4)
        finally:
            registry.unregister("_resilience_probe")
        # One build per direction, shared by the plain capture and both
        # obfuscation levels.
        assert calls == {"request": 1, "response": 1}

    def test_modbus_default_workload_still_degrades(self):
        report = run_resilience(passes_levels=(1,), seed=0, repeats=2,
                                function_codes=(1, 3))
        assert report.protocol == "modbus"
        assert report.plain.boundary_f1 > 0.0
        assert 1 in report.obfuscated
