"""Shared fixtures of the test suite.

The protocol-parametrized fixtures are built from the protocol registry, so a
newly registered protocol family is automatically covered by every graph
validation, obfuscation round-trip and codegen equivalence test.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.protocols import http, modbus, registry


@pytest.fixture
def rng() -> Random:
    """Deterministic random generator for message workloads."""
    return Random(12345)


@pytest.fixture
def modbus_request_graph():
    return modbus.request_graph()


@pytest.fixture
def modbus_response_graph():
    return modbus.response_graph()


@pytest.fixture
def http_request_graph():
    return http.request_graph()


@pytest.fixture
def http_response_graph():
    return http.response_graph()


PROTOCOL_CASES = [
    (f"{setup.key}_{direction}", graph_factory, generator)
    for setup in registry.setups()
    for direction, graph_factory, generator in setup.directions()
]


@pytest.fixture(params=PROTOCOL_CASES, ids=[case[0] for case in PROTOCOL_CASES])
def protocol_case(request):
    """(name, graph factory, message generator) for each evaluated protocol graph."""
    return request.param
