"""Shared fixtures of the test suite."""

from __future__ import annotations

from random import Random

import pytest

from repro.protocols import http, modbus


@pytest.fixture
def rng() -> Random:
    """Deterministic random generator for message workloads."""
    return Random(12345)


@pytest.fixture
def modbus_request_graph():
    return modbus.request_graph()


@pytest.fixture
def modbus_response_graph():
    return modbus.response_graph()


@pytest.fixture
def http_request_graph():
    return http.request_graph()


@pytest.fixture
def http_response_graph():
    return http.response_graph()


PROTOCOL_CASES = [
    ("modbus_request", modbus.request_graph, modbus.random_request),
    ("modbus_response", modbus.response_graph, modbus.random_response),
    ("http_request", http.request_graph, http.random_request),
    ("http_response", http.response_graph, http.random_response),
]


@pytest.fixture(params=PROTOCOL_CASES, ids=[case[0] for case in PROTOCOL_CASES])
def protocol_case(request):
    """(name, graph factory, message generator) for each evaluated protocol graph."""
    return request.param
