"""Tests of the MQTT specification and core application."""

from __future__ import annotations

from random import Random

import pytest

from repro.codegen import GeneratedCodec
from repro.core import BoundaryKind, NodeType
from repro.protocols import mqtt
from repro.transforms import Obfuscator
from repro.wire import WireCodec


class TestMqttSpec:
    def test_graph_scale_between_http_and_modbus(self):
        assert 20 <= mqtt.packet_graph().stats().node_count <= 32

    def test_contains_optional_length_and_end(self):
        graph = mqtt.packet_graph()
        kinds = {node.boundary.kind for node in graph.nodes()}
        types = {node.type for node in graph.nodes()}
        assert BoundaryKind.LENGTH in kinds  # remaining length, string prefixes
        assert BoundaryKind.END in kinds     # QoS-0 payload
        assert NodeType.OPTIONAL in types    # per-packet-family blocks

    def test_known_wire_layout_connect(self):
        codec = WireCodec(mqtt.packet_graph(), seed=0)
        message = mqtt.build_connect("probe-7", keepalive=60)
        # MQTT 3.1.1 CONNECT with the modelled two-byte remaining length.
        assert codec.serialize(message) == bytes.fromhex(
            "10" "0013" "00044d515454" "04" "02" "003c" "000770726f62652d37"
        )

    def test_known_wire_layout_publish_qos0(self):
        codec = WireCodec(mqtt.packet_graph(), seed=0)
        message = mqtt.build_publish("a/b", b"hi", qos=0)
        assert codec.serialize(message) == bytes([0x30, 0x00, 0x07]) + b"\x00\x03a/bhi"

    def test_known_wire_layout_publish_qos1(self):
        codec = WireCodec(mqtt.packet_graph(), seed=0)
        message = mqtt.build_publish("t", b"xyz", qos=1, packet_id=7)
        assert codec.serialize(message) == bytes.fromhex(
            "32" "000a" "000174" "0007" "0003" "78797a"
        )

    def test_known_wire_layout_pingreq(self):
        codec = WireCodec(mqtt.packet_graph(), seed=0)
        assert codec.serialize(mqtt.build_pingreq()) == bytes([0xC0, 0x00, 0x00])

    def test_remaining_length_is_consistent(self, rng):
        codec = WireCodec(mqtt.packet_graph(), seed=0)
        for _ in range(20):
            data = codec.serialize(mqtt.random_packet(rng))
            assert int.from_bytes(data[1:3], "big") == len(data) - 3

    @pytest.mark.parametrize("packet_type", mqtt.PACKET_TYPES)
    def test_round_trip_per_packet_family(self, packet_type, rng):
        codec = WireCodec(mqtt.packet_graph(), seed=0)
        for _ in range(10):
            message = mqtt.random_packet(rng, packet_type=packet_type)
            assert codec.parse(codec.serialize(message)) == message

    def test_qos0_publish_rejects_packet_id(self):
        with pytest.raises(ValueError):
            mqtt.build_publish("t", b"x", qos=0, packet_id=3)

    def test_unsupported_qos_rejected(self):
        with pytest.raises(ValueError):
            mqtt.build_publish("t", b"x", qos=2)

    def test_unsupported_packet_type_rejected(self, rng):
        with pytest.raises(ValueError):
            mqtt.random_packet(rng, packet_type=0x20)  # CONNACK not modelled

    def test_random_session_shape(self, rng):
        session = mqtt.random_session(rng, publishes=3)
        assert len(session) == 4
        assert session[0].get("packet_type") == mqtt.CONNECT
        for packet in session[1:]:
            assert packet.get("packet_type") in (mqtt.PUBLISH_QOS0, mqtt.PUBLISH_QOS1)


class TestMqttObfuscation:
    @pytest.mark.parametrize("passes", [0, 1, 2, 3, 4])
    def test_round_trip_under_obfuscation(self, passes, rng):
        result = Obfuscator(seed=5).obfuscate(mqtt.packet_graph(), passes)
        codec = WireCodec(result.graph, seed=5)
        for _ in range(8):
            message = mqtt.random_packet(rng)
            assert codec.parse(codec.serialize(message)) == message

    def test_interpreted_and_generated_codecs_interchangeable(self, rng):
        """Acceptance check: seeded 2-pass run, 50 messages, byte-for-byte equal."""
        result = Obfuscator(seed=1).obfuscate(mqtt.packet_graph(), 2)
        interpreted = WireCodec(result.graph, seed=42)
        generated = GeneratedCodec(result.graph, seed=42)
        for _ in range(50):
            message = mqtt.random_packet(rng)
            wire = interpreted.serialize(message)
            assert generated.serialize(message) == wire
            assert generated.parse(wire) == message
            assert interpreted.parse(wire) == message

    def test_obfuscated_wire_differs_from_plain(self, rng):
        message = mqtt.random_packet(rng, packet_type=mqtt.CONNECT)
        plain = WireCodec(mqtt.packet_graph(), seed=0).serialize(message)
        obfuscated = WireCodec(
            Obfuscator(seed=0).obfuscate(mqtt.packet_graph(), 2).graph, seed=0
        ).serialize(message)
        assert plain != obfuscated
