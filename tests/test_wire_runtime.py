"""Tests of the wire runtime: windows, pieces, serializer, parser, spans."""

from __future__ import annotations

from random import Random

import pytest

from repro.core import (
    Boundary,
    Endian,
    FieldPath,
    Message,
    ParseError,
    SerializationError,
    ValueOp,
    ValueOpKind,
    build_graph,
    delimited_text,
    fixed_bytes,
    optional,
    remaining_bytes,
    repetition,
    sequence,
    tabular,
    uint,
)
from repro.wire import Chunk, LengthSlot, PieceList, WireCodec, Window, boundaries, serialize
from repro.wire.parser import parse
from repro.wire.serializer import serialize_with_spans


class TestWindow:
    def test_read_and_remaining(self):
        window = Window(b"abcdef")
        assert window.read(2) == b"ab"
        assert window.remaining() == 4
        assert not window.at_end()
        assert window.read_rest() == b"cdef"
        assert window.at_end()

    def test_read_past_end_raises(self):
        with pytest.raises(ParseError):
            Window(b"ab").read(3)

    def test_read_negative_raises(self):
        with pytest.raises(ParseError):
            Window(b"ab").read(-1)

    def test_read_until_consumes_delimiter(self):
        window = Window(b"name: value\r\nrest")
        assert window.read_until(b": ") == b"name"
        assert window.read_until(b"\r\n") == b"value"
        assert window.read_rest() == b"rest"

    def test_read_until_missing_delimiter_raises(self):
        with pytest.raises(ParseError):
            Window(b"abc").read_until(b"|")

    def test_read_until_empty_delimiter_raises(self):
        with pytest.raises(ParseError):
            Window(b"abc").read_until(b"")

    def test_peek_and_starts_with(self):
        window = Window(b"abc")
        assert window.peek(2) == b"ab"
        assert window.starts_with(b"ab")
        assert not window.starts_with(b"bc")
        assert window.remaining() == 3

    def test_subwindow_bounds_reads(self):
        window = Window(b"abcdef")
        sub = window.subwindow(3)
        assert sub.read_rest() == b"abc"
        assert window.read_rest() == b"def"

    def test_subwindow_too_large_raises(self):
        with pytest.raises(ParseError):
            Window(b"ab").subwindow(5)

    def test_invalid_bounds_raise(self):
        with pytest.raises(ParseError):
            Window(b"ab", start=3)

    def test_skip(self):
        window = Window(b"abcd")
        window.skip(2)
        assert window.read_rest() == b"cd"


class TestPieces:
    def test_byte_length_counts_slots(self):
        pieces = PieceList()
        pieces.add_bytes(b"abc")
        pieces.add_slot(LengthSlot(node="len", target="data", width=2))
        assert pieces.byte_length() == 5

    def test_empty_chunks_are_dropped(self):
        pieces = PieceList()
        pieces.add_bytes(b"")
        assert pieces.pieces == []

    def test_assemble_resolves_slots(self):
        pieces = PieceList()
        pieces.add_slot(LengthSlot(node="len", target="data", width=2, context=()))
        pieces.add_bytes(b"abcd", node="data")
        data, spans = pieces.assemble({("data", ()): 4})
        assert data == b"\x00\x04abcd"
        assert ("len", None, 0, 2) in spans
        assert ("data", None, 2, 6) in spans

    def test_assemble_missing_length_defaults_to_zero(self):
        pieces = PieceList()
        pieces.add_slot(LengthSlot(node="len", target="gone", width=2))
        data, _ = pieces.assemble({})
        assert data == b"\x00\x00"

    def test_mirrored_reverses_bytes_and_toggles_slots(self):
        pieces = PieceList()
        pieces.add_bytes(b"ab")
        pieces.add_slot(LengthSlot(node="len", target="data", width=2))
        mirrored = pieces.mirrored()
        assert isinstance(mirrored.pieces[0], LengthSlot)
        assert mirrored.pieces[0].mirrored is True
        assert mirrored.pieces[1].data == b"ba"
        restored = mirrored.mirrored()
        assert restored.pieces[0].data == b"ab"
        assert restored.pieces[1].mirrored is False

    def test_slot_codec_chain_applied(self):
        slot = LengthSlot(
            node="len", target="data", width=2,
            codec_chain=(ValueOp(ValueOpKind.ADD, 1, bytewise=False, width=2),),
        )
        assert slot.resolve(4) == b"\x00\x05"

    def test_slot_mirrored_resolution(self):
        slot = LengthSlot(node="len", target="data", width=2, mirrored=True)
        assert slot.resolve(0x0102) == b"\x02\x01"


def _demo_graph():
    """A small synthetic specification exercising every node type."""
    header = sequence(
        "header",
        [
            uint("kind", 1),
            uint("payload_len", 2),
        ],
    )
    items = tabular("items", sequence("item", [uint("hi", 1), uint("lo", 1)]),
                    counter="item_count")
    payload = sequence(
        "payload",
        [
            uint("item_count", 1),
            items,
            delimited_text("note", b"\x00"),
        ],
        boundary=Boundary.length("payload_len"),
    )
    root = sequence(
        "demo",
        [header, payload, optional("trailer", remaining_bytes("extra"))],
    )
    return build_graph(root, "demo")


def _demo_message(with_trailer: bool = True) -> Message:
    message = Message.from_dict(
        {
            "header": {"kind": 7},
            "payload": {
                "items": [{"hi": 1, "lo": 2}, {"hi": 3, "lo": 4}],
                "note": "ok",
            },
        }
    )
    if with_trailer:
        message.set("trailer", b"TRAIL")
    return message


class TestSerializer:
    def test_round_trip_with_all_node_types(self):
        codec = WireCodec(_demo_graph(), seed=0)
        for with_trailer in (True, False):
            message = _demo_message(with_trailer)
            assert codec.parse(codec.serialize(message)) == message

    def test_derived_fields_are_computed(self):
        codec = WireCodec(_demo_graph(), seed=0)
        data = codec.serialize(_demo_message(False))
        # kind, then payload_len == len(payload) == 1 + 4 + 3
        assert data[0] == 7
        assert int.from_bytes(data[1:3], "big") == 8
        assert data[3] == 2  # item count

    def test_missing_field_raises(self):
        codec = WireCodec(_demo_graph(), seed=0)
        message = _demo_message()
        message.delete("payload.note")
        with pytest.raises(SerializationError):
            codec.serialize(message)

    def test_delimiter_collision_detected(self):
        codec = WireCodec(_demo_graph(), seed=0)
        message = _demo_message()
        message.set("payload.note", "bad\x00note")
        with pytest.raises(SerializationError):
            codec.serialize(message)

    def test_fixed_size_mismatch_detected(self):
        graph = build_graph(sequence("root", [fixed_bytes("raw", 4)]), "demo")
        codec = WireCodec(graph, seed=0)
        with pytest.raises(SerializationError):
            codec.serialize({"raw": b"toolong"})

    def test_uint_overflow_detected(self):
        graph = build_graph(sequence("root", [uint("small", 1)]), "demo")
        with pytest.raises(SerializationError):
            WireCodec(graph, seed=0).serialize({"small": 300})

    def test_serialize_accepts_plain_dicts(self):
        graph = build_graph(sequence("root", [uint("a", 1)]), "demo")
        assert serialize(graph, {"a": 5}) == b"\x05"

    def test_little_endian_terminal(self):
        graph = build_graph(
            sequence("root", [uint("value", 2, endian=Endian.LITTLE)]), "demo"
        )
        assert WireCodec(graph, seed=0).serialize({"value": 0x1234}) == b"\x34\x12"

    def test_spans_cover_terminals(self):
        graph = _demo_graph()
        data, spans = serialize_with_spans(graph, _demo_message(), rng=Random(0))
        by_node = {span.node: span for span in spans}
        assert by_node["kind"].start == 0 and by_node["kind"].end == 1
        assert by_node["extra"].end == len(data)
        cut_points = boundaries(spans, total_length=len(data))
        assert 1 in cut_points
        assert 0 not in cut_points and len(data) not in cut_points

    def test_span_overlap_helper(self):
        graph = _demo_graph()
        _, spans = serialize_with_spans(graph, _demo_message(), rng=Random(0))
        assert spans[0].overlaps(spans[0])
        assert not spans[0].overlaps(spans[1])
        assert spans[0].length == spans[0].end - spans[0].start
        assert "kind" in repr(by := spans[0]) or by.node


class TestParser:
    def test_trailing_bytes_rejected_in_strict_mode(self):
        graph = build_graph(sequence("root", [uint("a", 1)]), "demo")
        codec = WireCodec(graph, seed=0)
        with pytest.raises(ParseError):
            codec.parse(b"\x01\x02")
        assert codec.parse(b"\x01\x02", strict=False) == {"a": 1}

    def test_truncated_message_rejected(self):
        codec = WireCodec(_demo_graph(), seed=0)
        data = codec.serialize(_demo_message(False))
        with pytest.raises(ParseError):
            codec.parse(data[:-2])

    def test_corrupted_length_detected(self):
        codec = WireCodec(_demo_graph(), seed=0)
        data = bytearray(codec.serialize(_demo_message(False)))
        data[2] += 5  # inflate payload_len beyond the buffer
        with pytest.raises(ParseError):
            codec.parse(bytes(data))

    def test_parse_module_function(self):
        graph = build_graph(sequence("root", [uint("a", 1)]), "demo")
        assert parse(graph, b"\x09") == {"a": 9}

    def test_empty_repetition_round_trips(self):
        graph = build_graph(
            sequence(
                "root",
                [uint("count", 1), tabular("items", uint("x", 1), counter="count")],
            ),
            "demo",
        )
        codec = WireCodec(graph, seed=0)
        message = {"items": []}
        assert codec.parse(codec.serialize(message)) == message

    def test_optional_with_presence_ref(self):
        graph = build_graph(
            sequence(
                "root",
                [
                    uint("flag", 1),
                    optional("extra", uint("value", 2), presence_ref="flag",
                             presence_value=1),
                    remaining_bytes("rest"),
                ],
            ),
            "demo",
        )
        codec = WireCodec(graph, seed=0)
        present = {"flag": 1, "extra": 500, "rest": b"xy"}
        absent = {"flag": 0, "rest": b"xy"}
        assert codec.parse(codec.serialize(present)) == present
        assert codec.parse(codec.serialize(absent)) == absent

    def test_delimited_repetition_with_terminator(self):
        graph = build_graph(
            sequence(
                "root",
                [
                    repetition(
                        "lines",
                        delimited_text("line", b"\n"),
                        boundary=Boundary.delimited(b"\n"),
                    ),
                    remaining_bytes("rest"),
                ],
            ),
            "demo",
        )
        codec = WireCodec(graph, seed=0)
        message = {"lines": ["a", "bb", "ccc"], "rest": b"tail"}
        data = codec.serialize(message)
        assert data == b"a\nbb\nccc\n\ntail"
        assert codec.parse(data) == message

    def test_round_trips_helper(self):
        codec = WireCodec(_demo_graph(), seed=3)
        assert codec.round_trips(_demo_message())
