"""Tests of the obfuscation engine (random selection, passes, invariants)."""

from __future__ import annotations

from random import Random

import pytest

from repro.core import Message, TransformError, validate_graph
from repro.protocols import http, modbus
from repro.transforms import Obfuscator, family, obfuscate
from repro.wire import WireCodec


class TestObfuscator:
    def test_zero_passes_returns_untouched_copy(self, http_request_graph):
        result = Obfuscator(seed=0).obfuscate(http_request_graph, 0)
        assert result.applied_count == 0
        assert result.graph is not http_request_graph
        assert [n.name for n in result.graph.nodes()] == [
            n.name for n in http_request_graph.nodes()
        ]

    def test_negative_passes_rejected(self, http_request_graph):
        with pytest.raises(TransformError):
            Obfuscator(seed=0).obfuscate(http_request_graph, -1)

    def test_original_graph_not_mutated(self, modbus_request_graph):
        before = [n.name for n in modbus_request_graph.nodes()]
        Obfuscator(seed=0).obfuscate(modbus_request_graph, 2)
        assert [n.name for n in modbus_request_graph.nodes()] == before

    def test_obfuscated_graph_validates(self, protocol_case):
        _, graph_factory, _ = protocol_case
        for seed in range(3):
            result = Obfuscator(seed=seed).obfuscate(graph_factory(), 2)
            validate_graph(result.graph)

    def test_deterministic_given_seed(self, http_request_graph):
        first = Obfuscator(seed=7).obfuscate(http_request_graph, 2)
        second = Obfuscator(seed=7).obfuscate(http.request_graph(), 2)
        assert [str(r) for r in first.records] == [str(r) for r in second.records]

    def test_different_seeds_differ(self, http_request_graph):
        first = Obfuscator(seed=1).obfuscate(http_request_graph, 2)
        second = Obfuscator(seed=2).obfuscate(http.request_graph(), 2)
        assert [str(r) for r in first.records] != [str(r) for r in second.records]

    def test_applied_count_grows_with_passes(self, modbus_request_graph):
        counts = [
            Obfuscator(seed=3).obfuscate(modbus.request_graph(), passes).applied_count
            for passes in (1, 2, 3)
        ]
        assert counts[0] < counts[1] < counts[2]

    def test_growth_is_at_least_linear_as_in_paper(self, modbus_request_graph):
        """The paper reports super-linear growth of applied transformations with the
        per-node parameter; at minimum the growth must not flatten below linear."""
        counts = [
            Obfuscator(seed=3).obfuscate(modbus.request_graph(), passes).applied_count
            for passes in (1, 2, 3, 4)
        ]
        assert counts == sorted(counts)
        assert counts[-1] >= 3.2 * counts[0]

    def test_node_count_grows(self, http_request_graph):
        result = Obfuscator(seed=0).obfuscate(http_request_graph, 2)
        assert result.graph.stats().node_count > http_request_graph.stats().node_count

    def test_records_reference_existing_transformations(self, http_request_graph):
        result = Obfuscator(seed=0).obfuscate(http_request_graph, 1)
        from repro.transforms import transformation_names

        names = set(transformation_names())
        assert result.records
        assert all(record.transformation in names for record in result.records)

    def test_count_by_transformation_sums_to_total(self, modbus_request_graph):
        result = Obfuscator(seed=1).obfuscate(modbus_request_graph, 1)
        assert sum(result.count_by_transformation().values()) == result.applied_count

    def test_summary_mentions_counts(self, http_request_graph):
        result = Obfuscator(seed=0).obfuscate(http_request_graph, 1)
        assert str(result.applied_count) in result.summary()

    def test_restricted_family_only_applies_family(self, modbus_request_graph):
        result = Obfuscator(family("const"), seed=0).obfuscate(modbus_request_graph, 1)
        assert result.applied_count > 0
        assert set(result.count_by_transformation()) <= {"ConstAdd", "ConstSub", "ConstXor"}

    def test_node_budget_mode(self, modbus_request_graph):
        result = Obfuscator(seed=0).obfuscate_node_budget(modbus_request_graph, 10)
        assert result.applied_count == 10
        assert result.passes >= 1
        validate_graph(result.graph)

    def test_node_budget_counts_only_effective_passes(self, modbus_request_graph):
        """Regression: a sweep that applies nothing must not inflate the pass count."""
        result = Obfuscator(transformations=[], seed=0).obfuscate_node_budget(
            modbus_request_graph, 10
        )
        assert result.applied_count == 0
        assert result.passes == 0

    def test_node_budget_zero(self, modbus_request_graph):
        result = Obfuscator(seed=0).obfuscate_node_budget(modbus_request_graph, 0)
        assert result.applied_count == 0
        assert result.passes == 0

    def test_module_level_helper(self, http_request_graph):
        result = obfuscate(http_request_graph, 1, seed=0)
        assert result.applied_count > 0


class TestObfuscatedRoundTrips:
    @pytest.mark.parametrize("passes", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_round_trip_preserved(self, protocol_case, passes, seed, rng):
        _, graph_factory, generator = protocol_case
        result = Obfuscator(seed=seed).obfuscate(graph_factory(), passes)
        codec = WireCodec(result.graph, seed=seed)
        for _ in range(8):
            message = generator(rng)
            assert codec.parse(codec.serialize(message)) == message

    def test_wire_format_differs_from_plain(self, protocol_case, rng):
        _, graph_factory, generator = protocol_case
        plain = WireCodec(graph_factory(), seed=0)
        obfuscated = WireCodec(Obfuscator(seed=0).obfuscate(graph_factory(), 1).graph, seed=0)
        message = generator(rng)
        assert plain.serialize(message) != obfuscated.serialize(message)

    def test_different_obfuscations_are_incompatible(self, rng):
        message = modbus.random_request(rng)
        first = WireCodec(Obfuscator(seed=10).obfuscate(modbus.request_graph(), 2).graph, seed=0)
        second = WireCodec(Obfuscator(seed=11).obfuscate(modbus.request_graph(), 2).graph, seed=0)
        data = first.serialize(message)
        try:
            parsed = second.parse(data)
        except Exception:
            return  # rejecting the buffer outright is the expected common case
        assert parsed != message
