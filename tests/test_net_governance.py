"""Resource governance: budgets, overload detection, deterministic shedding.

Covers the PR 8 layer end to end: :class:`ResourceBudget` profiles enforced
inside the decoders and session pumps (typed :class:`BudgetExceeded`
violations, validated *before* allocation where the wire format allows it),
the :class:`LoadGovernor` state machine with its deterministic
pause-the-heaviest rebalancing, busy/retry-after admission shedding that a
resilient client retries through, and transport-level backpressure over the
flow-limited memory pipe — including the proxy propagating a slow downstream
all the way back to the origin server.
"""

from __future__ import annotations

import asyncio
from random import Random

import pytest

from repro.core.errors import BudgetExceeded, StreamError
from repro.net import (
    BusyEvent,
    FaultPlan,
    GovernanceError,
    LoadGovernor,
    ObfuscatedClient,
    ObfuscatedProxy,
    ObfuscatedServer,
    RecordDecoder,
    ResourceBudget,
    RetryPolicy,
    ServerBusy,
    TimeoutConfig,
    VirtualClock,
    connect_memory,
    encode_busy,
    encode_record,
    memory_pipe,
)
from repro.net.framing import BUSY_SENTINEL, frame_payload
from repro.net.session import _MessagePump
from repro.protocols import registry
from repro.wire.serializer import Serializer
from repro.wire.streaming import StreamSource, StreamingDecoder


def run(coroutine):
    return asyncio.run(coroutine)


def virtual(coroutine_factory):
    """Drive a clock-taking scenario to completion on a fresh VirtualClock."""
    clock = VirtualClock()

    async def scenario():
        return await clock.run(coroutine_factory(clock))

    return asyncio.run(scenario())


def modbus_payloads(count: int, *, seed: int = 0) -> list[bytes]:
    """``count`` serialized modbus requests (small, self-framing messages)."""
    setup = registry.get("modbus")
    graph = setup.reference_graph("request")
    serializer = Serializer(graph, rng=Random(seed))
    rng = Random(seed + 1)
    return [serializer.serialize(setup.message_generator(rng))
            for _ in range(count)]


# ---------------------------------------------------------------------------
# budget profiles
# ---------------------------------------------------------------------------


class TestResourceBudget:
    def test_profiles_and_validation(self):
        strict = ResourceBudget.strict()
        assert strict.max_stream_bytes == 1 << 16
        assert strict.max_declared_bytes == 1 << 13
        assert ResourceBudget.unbounded().max_stream_bytes is None
        assert ResourceBudget.standard() == ResourceBudget()
        with pytest.raises(GovernanceError):
            ResourceBudget(max_stream_bytes=0)
        with pytest.raises(GovernanceError):
            ResourceBudget(max_pending_messages=-5)

    def test_json_round_trip_and_fingerprint(self):
        strict = ResourceBudget.strict()
        assert ResourceBudget.from_json(strict.to_json()) == strict
        assert strict.fingerprint == ResourceBudget.strict().fingerprint
        assert strict.fingerprint != ResourceBudget.standard().fingerprint
        with pytest.raises(GovernanceError):
            ResourceBudget.from_dict({"max_stream_bytes": 1, "bogus": 2})
        with pytest.raises(GovernanceError):
            ResourceBudget.from_json("[1, 2]")

    def test_describe_marks_disabled_limits(self):
        text = ResourceBudget(max_stream_bytes=None).describe()
        assert "stream=∞" in text
        assert "pending_messages=1024" in text


# ---------------------------------------------------------------------------
# decoder-level enforcement
# ---------------------------------------------------------------------------


class TestRecordDecoderBudgets:
    def graph(self):
        return registry.get("modbus").reference_graph("request")

    def test_declaration_alone_condemns_the_record(self):
        # The pre-allocation property: the forged 4-byte header is rejected
        # the moment it arrives — no payload byte is ever buffered toward it.
        decoder = RecordDecoder(self.graph(), max_record_size=1024)
        with pytest.raises(BudgetExceeded) as err:
            decoder.feed((4096).to_bytes(4, "big"))
        assert err.value.resource == "record_bytes"
        assert err.value.actual == 4096
        assert decoder.buffered <= 4  # only the header itself

    def test_budget_supplies_the_record_limit(self):
        decoder = RecordDecoder(self.graph(), budget=ResourceBudget.strict())
        assert decoder.max_record_size == 1 << 13
        with pytest.raises(BudgetExceeded):
            decoder.feed((1 << 20).to_bytes(4, "big"))

    def test_record_limit_must_stay_below_the_control_sentinels(self):
        with pytest.raises(StreamError):
            RecordDecoder(self.graph(), max_record_size=BUSY_SENTINEL)
        with pytest.raises(StreamError):
            RecordDecoder(self.graph(), max_record_size=0)

    def test_stream_bytes_cap_on_one_feed(self):
        decoder = RecordDecoder(self.graph(), budget=ResourceBudget.strict())
        with pytest.raises(BudgetExceeded) as err:
            decoder.feed(b"\x00" * ((1 << 16) + 1))
        assert err.value.resource == "stream_bytes"

    def test_steps_per_feed_bounds_decode_work(self):
        budget = ResourceBudget(max_steps_per_feed=4)
        decoder = RecordDecoder(self.graph(), budget=budget)
        chunk = b"".join(encode_record(payload)
                         for payload in modbus_payloads(6))
        with pytest.raises(BudgetExceeded) as err:
            decoder.feed(chunk)
        assert err.value.resource == "decode_steps"
        # A fresh feed gets a fresh work allowance: per-feed, not per-stream.
        decoder = RecordDecoder(self.graph(), budget=budget)
        for payload in modbus_payloads(6):
            assert len(decoder.feed(encode_record(payload))) == 1

    def test_busy_control_record_round_trips(self):
        decoder = RecordDecoder(self.graph())
        events = decoder.feed(encode_busy(0.25))
        assert events == [BusyEvent(retry_after=0.25)]
        # Saturating encoding: the hint caps at the 16-bit millisecond field.
        events = decoder.feed(encode_busy(120.0))
        assert events == [BusyEvent(retry_after=65.535)]


class TestStreamingDecoderBudgets:
    def test_stream_bytes_cap(self):
        graph = registry.get("modbus").reference_graph("request")
        decoder = StreamingDecoder(graph, budget=ResourceBudget.strict())
        with pytest.raises(BudgetExceeded) as err:
            decoder.feed(b"\x00" * ((1 << 16) + 1))
        assert err.value.resource == "stream_bytes"

    def test_source_limit_is_enforced_on_feed(self):
        source = StreamSource(limit=8)
        source.feed(b"12345678")
        with pytest.raises(BudgetExceeded):
            source.feed(b"9")
        assert source.buffered_bytes() == 8

    def test_mid_message_trim_releases_consumed_prefix(self):
        # Satellite 1: while a message is suspended mid-parse, bytes the
        # parse has consumed are released from the source — the physical
        # buffer stays below the logical backlog — yet DecodedMessage.raw
        # still reproduces the full wire extent.
        graph = registry.get("modbus").reference_graph("request")
        payload = modbus_payloads(1, seed=3)[0]
        decoder = StreamingDecoder(graph)
        trimmed = False
        decoded = []
        for offset in range(len(payload)):
            decoded += decoder.feed(payload[offset:offset + 1])
            held = decoder._source.buffered_bytes()
            if not decoded and held < decoder.buffered:
                trimmed = True
        assert trimmed, "consumed prefix was never released mid-message"
        assert len(decoded) == 1
        assert decoded[0].raw == payload


# ---------------------------------------------------------------------------
# the session pump
# ---------------------------------------------------------------------------


class TestMessagePump:
    def test_pending_messages_budget(self):
        async def scenario():
            graph = registry.get("modbus").reference_graph("request")
            reader = asyncio.StreamReader()
            decoder = RecordDecoder(graph)
            pump = _MessagePump(
                reader, decoder,
                budget=ResourceBudget(max_pending_messages=4))
            chunk = b"".join(encode_record(payload)
                             for payload in modbus_payloads(6))
            reader.feed_data(chunk)
            reader.feed_eof()
            with pytest.raises(BudgetExceeded) as err:
                await pump.next()
            assert err.value.resource == "pending_messages"
            # One burst chunk parks all six decoded messages before delivery.
            assert err.value.actual == 6

        run(scenario())

    def test_peak_buffered_lands_in_stats(self):
        async def scenario():
            from repro.net.session import SessionStats

            graph = registry.get("modbus").reference_graph("request")
            reader = asyncio.StreamReader()
            stats = SessionStats("pump-test")
            pump = _MessagePump(reader, RecordDecoder(graph), stats=stats)
            payloads = modbus_payloads(3)
            reader.feed_data(b"".join(encode_record(p) for p in payloads))
            reader.feed_eof()
            seen = 0
            while await pump.next() is not None:
                seen += 1
            assert seen == 3
            assert stats.peak_buffered == sum(len(p) for p in payloads)

        run(scenario())


# ---------------------------------------------------------------------------
# the load governor
# ---------------------------------------------------------------------------


class TestLoadGovernor:
    def test_validation(self):
        with pytest.raises(GovernanceError):
            LoadGovernor(low_bytes=0)
        with pytest.raises(GovernanceError):
            LoadGovernor(low_bytes=100, high_bytes=50)
        with pytest.raises(GovernanceError):
            LoadGovernor(low_sessions=5, high_sessions=2)
        with pytest.raises(GovernanceError):
            LoadGovernor(retry_after=-1.0)

    def test_states_follow_the_byte_watermarks(self):
        governor = LoadGovernor(low_bytes=100, high_bytes=1000)
        a = governor.register("a")
        b = governor.register("b")
        assert governor.state == "healthy"
        a.update(80)
        assert governor.state == "healthy"
        b.update(90)  # aggregate 170 crosses low watermark
        assert governor.state == "degraded"
        # The heaviest session is paused until the rest fits under low_bytes.
        assert b.paused and not a.paused
        b.update(950)  # aggregate crosses the high watermark
        assert governor.state == "shedding"
        assert governor.should_shed()
        b.update(0)
        a.update(0)
        assert governor.state == "healthy"
        assert not a.paused and not b.paused
        assert governor.transitions == 3  # healthy→degraded→shedding→healthy
        assert governor.counters()["peak_aggregate"] == 1030

    def test_session_watermarks(self):
        governor = LoadGovernor(low_sessions=2, high_sessions=3)
        loads = [governor.register(f"s{index}") for index in range(3)]
        assert governor.state == "shedding"
        governor.unregister(loads.pop())
        assert governor.state == "degraded"
        governor.unregister(loads.pop())
        assert governor.state == "healthy"

    def test_pause_ranking_is_deterministic(self):
        # Equal buffers: registration order breaks the tie, so the pause set
        # is a pure function of the accounting sequence.
        governor = LoadGovernor(low_bytes=50, high_bytes=1 << 20)
        a = governor.register("a")
        b = governor.register("b")
        a.update(60)
        assert a.paused and not b.paused
        b.update(60)
        assert a.paused and b.paused
        a.update(0)
        assert b.paused and not a.paused
        assert governor.pauses == 2
        assert governor.resumes == 1

    def test_unregister_always_resumes(self):
        governor = LoadGovernor(low_bytes=10, high_bytes=1 << 20)
        load = governor.register("s")
        load.update(50)
        assert load.paused
        governor.unregister(load)
        assert not load.paused
        assert governor.aggregate == 0

    def test_paused_session_blocks_until_resumed(self):
        async def scenario():
            governor = LoadGovernor(low_bytes=10, high_bytes=1 << 20)
            load = governor.register("s")
            load.update(20)
            assert load.paused
            waiter = asyncio.ensure_future(load.readable())
            await asyncio.sleep(0)
            assert not waiter.done()
            load.update(0)  # back under the watermark: read unblocks
            await asyncio.sleep(0)
            assert waiter.done()

        run(scenario())


# ---------------------------------------------------------------------------
# sessions under budgets and governors
# ---------------------------------------------------------------------------


class TestGovernedSessions:
    def test_client_rejects_oversized_response_declaration(self):
        async def scenario():
            (reader, writer), (peer_reader, peer_writer) = memory_pipe()
            client = ObfuscatedClient("modbus", framing="record",
                                      budget=ResourceBudget.strict())
            client.attach(reader, writer)
            peer_writer.write((1 << 20).to_bytes(4, "big"))
            with pytest.raises(BudgetExceeded):
                await client.receive()
            assert client.stats.budget_violations == 1
            assert client.trace.count("budget") == 1

        run(scenario())

    def test_flood_fault_is_caught_by_the_budget(self):
        # Satellite 3: the flood model forges a huge length declaration in
        # the delivered stream; a budgeted server kills only that session,
        # with a typed diagnosis, before buffering toward the promise.
        async def scenario():
            server = ObfuscatedServer("modbus", framing="record",
                                      budget=ResourceBudget.strict())
            client = ObfuscatedClient("modbus", framing="record")
            connect_memory(client, server,
                           request_faults=FaultPlan.flood(0, declared=1 << 20))
            setup = registry.get("modbus")
            with pytest.raises(ConnectionError):
                await client.request(setup.message_generator(Random(0)))
            counters = client._writer.counters  # close() drops the transport
            await client.close()
            stats = server.completed[0]
            assert stats.error is not None
            assert stats.error.startswith("BudgetExceeded")
            assert stats.budget_violations == 1
            assert counters.flooded
            assert counters.injected_bytes == 4

        run(scenario())

    def test_drip_fault_is_survivable(self):
        # Satellite 3: one-byte segments stress the incremental decoders
        # without damaging a byte — the session must simply work.
        async def scenario():
            server = ObfuscatedServer("modbus")
            client = ObfuscatedClient("modbus")
            connect_memory(client, server,
                           request_faults=FaultPlan.drip(seed=5))
            setup = registry.get("modbus")
            request = setup.message_generator(Random(1))
            reply = await client.request(request)
            assert (reply.get("response_payload.function_code")
                    == request.get("request_payload.function_code"))
            counters = client._writer.counters
            assert counters.segments == counters.delivered_bytes
            await client.close()
            assert server.completed[0].error is None

        run(scenario())

    def test_shed_then_retry_succeeds_after_the_load_drains(self):
        # The full admission-control loop on a virtual clock: a shedding
        # server refuses with a typed busy record, the client's retry policy
        # backs off, the load drains, the retried request succeeds.
        def scenario_factory(clock):
            async def scenario(clock=clock):
                governor = LoadGovernor(low_sessions=1, high_sessions=1,
                                        retry_after=0.25)
                server = ObfuscatedServer("modbus", framing="record",
                                          governor=governor)
                setup = registry.get("modbus")
                first = connect_memory(
                    ObfuscatedClient("modbus", framing="record",
                                     session_id="first"), server)
                await first.request(setup.message_generator(Random(0)))
                assert governor.state == "shedding"

                second = ObfuscatedClient(
                    "modbus", framing="record", session_id="second",
                    clock=clock,
                    retry=RetryPolicy(attempts=3, base_delay=1.0, jitter=0.0,
                                      seed=7),
                    timeouts=TimeoutConfig(drain=1.0))
                connect_memory(second, server)

                async def drain_first():
                    await clock.sleep(0.5)
                    await first.close()

                closer = asyncio.ensure_future(drain_first())
                reply = await second.request(setup.message_generator(Random(1)))
                await closer
                await second.close()
                assert reply is not None
                assert governor.sheds == 1
                assert governor.state == "healthy"
                assert second.stats.sheds == 1
                assert second.stats.retries == 1
                assert second.trace.count("busy") == 1
                shed_entries = [stats for stats in server.completed
                                if stats.sheds]
                assert len(shed_entries) == 1
                assert shed_entries[0].error.startswith("ServerBusy")
                # The governor publishes into the server's trace.
                assert server.trace.count("shed") == 1

            return scenario(clock)

        virtual(scenario_factory)

    def test_server_busy_is_a_retryable_connection_error(self):
        exc = ServerBusy(0.25)
        assert isinstance(exc, ConnectionError)
        assert exc.retry_after == 0.25
        assert "retry after 0.25s" in str(exc)


# ---------------------------------------------------------------------------
# end-to-end backpressure
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_memory_pipe_flow_control_bounds_in_flight_bytes(self):
        async def scenario():
            (_, writer), (reader, _) = memory_pipe(limit=64)
            total = 0

            async def produce():
                nonlocal total
                for _ in range(50):
                    writer.write(b"x" * 16)
                    total += 16
                    await writer.drain()
                writer.write_eof()

            async def consume():
                received = 0
                while True:
                    chunk = await reader.read(8)
                    if not chunk:
                        return received
                    received += len(chunk)
                    await asyncio.sleep(0)

            _, received = await asyncio.gather(produce(), consume())
            assert received == total == 800
            assert writer.drain_waits > 0
            # Write-then-drain overshoots by at most one write.
            assert writer.peak_in_flight <= 64 + 16

        run(scenario())

    def test_proxy_propagates_downstream_backpressure_upstream(self):
        # Satellite 4: a slow reading client throttles the proxy's
        # client-facing writer, which stops the response pump from reading
        # upstream, which fills the upstream pipe and blocks the origin
        # server's drain — bounded in-flight bytes at every hop, no
        # unbounded buffering anywhere in the bridge.
        async def scenario():
            limit = 64
            messages = 16
            setup = registry.get("modbus")
            server = ObfuscatedServer(setup, seed=1)
            proxy = ObfuscatedProxy(setup, seed=1)

            (client_reader, client_writer), \
                (proxy_client_reader, proxy_client_writer) = memory_pipe(limit)
            (proxy_up_reader, proxy_up_writer), \
                (server_reader, server_writer) = memory_pipe(limit)

            server_task = asyncio.ensure_future(
                server.serve_session(server_reader, server_writer))
            bridge_task = asyncio.ensure_future(
                proxy.bridge(proxy_client_reader, proxy_client_writer,
                             proxy_up_reader, proxy_up_writer))

            requests = [setup.message_generator(Random(10))
                        for _ in range(messages)]
            serializer = Serializer(setup.reference_graph("request"),
                                    rng=Random(2))
            max_frame = 0

            async def send_requests():
                nonlocal max_frame
                for request in requests:
                    frame = frame_payload(serializer.serialize(request),
                                          proxy.listen.request_framing)
                    max_frame = max(max_frame, len(frame))
                    client_writer.write(frame)
                    await client_writer.drain()
                client_writer.write_eof()

            async def read_replies_slowly():
                # Bounded warm-up stall: let the pipeline back up against the
                # unread client edge so the pressure has to travel the whole
                # bridge, then trickle — the consumer always resumes, so the
                # stall cannot deadlock.
                for _ in range(400):
                    await asyncio.sleep(0)
                decoder = StreamingDecoder(setup.reference_graph("response"))
                replies = []
                while True:
                    chunk = await client_reader.read(4)  # a trickling consumer
                    await asyncio.sleep(0)
                    if not chunk:
                        replies += decoder.feed_eof()
                        return replies
                    replies += decoder.feed(chunk)

            _, replies = await asyncio.gather(send_requests(),
                                              read_replies_slowly())
            await asyncio.gather(server_task, bridge_task)

            assert len(replies) == messages
            stats = proxy.completed[0]
            assert stats.requests == messages
            assert stats.responses == messages
            assert stats.error is None
            # Backpressure engaged at the slow edge and reached the origin.
            assert proxy_client_writer.drain_waits > 0
            assert server_writer.drain_waits > 0
            # Every hop's in-flight bytes stayed inside window + one frame.
            for hop in (proxy_client_writer, server_writer, client_writer,
                        proxy_up_writer):
                assert hop.peak_in_flight <= limit + max(max_frame, 16), hop

        run(scenario())
