"""Tests of value kinds, codecs, value operations and Split* synthesis."""

from __future__ import annotations

from random import Random

import pytest

from repro.core import (
    Endian,
    SerializationError,
    Synthesis,
    SynthesisOp,
    ValueKind,
    ValueOp,
    ValueOpKind,
    apply_chain,
    decode_uint,
    decode_value,
    default_value,
    encode_uint,
    encode_value,
    invert_chain,
)


class TestUintCodec:
    def test_encode_decode_big_endian(self):
        assert encode_uint(0x1234, 2, Endian.BIG) == b"\x12\x34"
        assert decode_uint(b"\x12\x34", Endian.BIG) == 0x1234

    def test_encode_decode_little_endian(self):
        assert encode_uint(0x1234, 2, Endian.LITTLE) == b"\x34\x12"
        assert decode_uint(b"\x34\x12", Endian.LITTLE) == 0x1234

    def test_encode_rejects_overflow(self):
        with pytest.raises(SerializationError):
            encode_uint(256, 1)

    def test_encode_rejects_negative(self):
        with pytest.raises(SerializationError):
            encode_uint(-1, 2)

    def test_encode_rejects_bad_size(self):
        with pytest.raises(SerializationError):
            encode_uint(1, 0)

    def test_encode_rejects_non_int(self):
        with pytest.raises(SerializationError):
            encode_uint("x", 2)  # type: ignore[arg-type]


class TestValueCodec:
    def test_uint_requires_size(self):
        with pytest.raises(SerializationError):
            encode_value(3, ValueKind.UINT)

    def test_bytes_round_trip(self):
        assert decode_value(encode_value(b"abc", ValueKind.BYTES), ValueKind.BYTES) == b"abc"

    def test_text_round_trip(self):
        assert decode_value(encode_value("héllo", ValueKind.TEXT), ValueKind.TEXT) == "héllo"

    def test_text_accepts_bytes_input(self):
        assert encode_value(b"abc", ValueKind.TEXT) == b"abc"

    def test_bytes_accepts_str_input(self):
        assert encode_value("abc", ValueKind.BYTES) == b"abc"

    def test_fixed_size_mismatch_rejected(self):
        with pytest.raises(SerializationError):
            encode_value(b"abc", ValueKind.BYTES, size=2)

    def test_invalid_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_value(3.5, ValueKind.BYTES)  # type: ignore[arg-type]

    def test_default_values(self):
        assert default_value(ValueKind.UINT) == 0
        assert default_value(ValueKind.BYTES) == b""
        assert default_value(ValueKind.TEXT) == ""


class TestValueOps:
    @pytest.mark.parametrize("kind", list(ValueOpKind))
    @pytest.mark.parametrize("value", [0, 1, 0x1234, 0xFFFF])
    def test_integer_op_invertible(self, kind, value):
        op = ValueOp(kind, constant=0x5A5A, bytewise=False, width=2)
        assert op.invert(op.apply(value, ValueKind.UINT), ValueKind.UINT) == value

    @pytest.mark.parametrize("kind", list(ValueOpKind))
    def test_bytewise_op_invertible_on_bytes(self, kind):
        op = ValueOp(kind, constant=77, bytewise=True)
        value = b"\x00\x01binary\xff"
        assert op.invert(op.apply(value, ValueKind.BYTES), ValueKind.BYTES) == value

    @pytest.mark.parametrize("kind", list(ValueOpKind))
    def test_bytewise_op_invertible_on_text(self, kind):
        op = ValueOp(kind, constant=200, bytewise=True)
        assert op.invert(op.apply("GET", ValueKind.TEXT), ValueKind.TEXT) == "GET"

    def test_integer_op_requires_width(self):
        op = ValueOp(ValueOpKind.ADD, constant=1, bytewise=False, width=None)
        with pytest.raises(SerializationError):
            op.apply(1, ValueKind.UINT)

    def test_integer_op_rejects_non_uint(self):
        op = ValueOp(ValueOpKind.ADD, constant=1, bytewise=False, width=2)
        with pytest.raises(SerializationError):
            op.apply(b"ab", ValueKind.BYTES)

    def test_add_wraps_modulo(self):
        op = ValueOp(ValueOpKind.ADD, constant=10, bytewise=False, width=1)
        assert op.apply(250, ValueKind.UINT) == 4

    def test_chain_apply_then_invert_is_identity(self):
        chain = (
            ValueOp(ValueOpKind.ADD, constant=3, bytewise=False, width=2),
            ValueOp(ValueOpKind.XOR, constant=0xABCD, bytewise=False, width=2),
            ValueOp(ValueOpKind.SUB, constant=100, bytewise=False, width=2),
        )
        for value in (0, 1, 500, 65535):
            assert invert_chain(apply_chain(value, ValueKind.UINT, chain), ValueKind.UINT, chain) == value

    def test_chain_order_matters(self):
        chain = (
            ValueOp(ValueOpKind.ADD, constant=1, bytewise=False, width=1),
            ValueOp(ValueOpKind.XOR, constant=0xF0, bytewise=False, width=1),
        )
        assert apply_chain(2, ValueKind.UINT, chain) == (2 + 1) ^ 0xF0


class TestSynthesis:
    @pytest.mark.parametrize("op", [SynthesisOp.ADD, SynthesisOp.SUB, SynthesisOp.XOR])
    @pytest.mark.parametrize("value", [0, 1, 0x7FFF, 0xFFFF])
    def test_integer_split_combine_round_trip(self, op, value):
        synthesis = Synthesis(op, ValueKind.UINT, width=2)
        rng = Random(0)
        for _ in range(20):
            first, second = synthesis.split(value, rng)
            assert 0 <= first < 0x10000 and 0 <= second < 0x10000
            assert synthesis.combine(first, second) == value

    def test_integer_split_requires_width(self):
        synthesis = Synthesis(SynthesisOp.ADD, ValueKind.UINT, width=None)
        with pytest.raises(SerializationError):
            synthesis.split(3, Random(0))
        with pytest.raises(SerializationError):
            synthesis.combine(1, 2)

    def test_cat_split_combine_bytes(self):
        synthesis = Synthesis(SynthesisOp.CAT, ValueKind.BYTES)
        rng = Random(1)
        value = b"hello world"
        for _ in range(10):
            first, second = synthesis.split(value, rng)
            assert synthesis.combine(first, second) == value

    def test_cat_split_fixed_position(self):
        synthesis = Synthesis(SynthesisOp.CAT, ValueKind.TEXT)
        first, second = synthesis.split("abcdef", Random(0), split_at=2)
        assert (first, second) == ("ab", "cdef")

    def test_cat_split_position_clamped(self):
        synthesis = Synthesis(SynthesisOp.CAT, ValueKind.TEXT)
        first, second = synthesis.split("ab", Random(0), split_at=99)
        assert (first, second) == ("ab", "")

    def test_cat_combine_mixed_types(self):
        synthesis = Synthesis(SynthesisOp.CAT, ValueKind.TEXT)
        assert synthesis.combine("ab", b"cd") == "abcd"
        binary = Synthesis(SynthesisOp.CAT, ValueKind.BYTES)
        assert binary.combine(b"ab", b"cd") == b"abcd"

    def test_split_shares_differ_across_draws(self):
        synthesis = Synthesis(SynthesisOp.ADD, ValueKind.UINT, width=2)
        rng = Random(2)
        shares = {synthesis.split(1000, rng)[0] for _ in range(16)}
        assert len(shares) > 1, "splits must draw random shares per message"
