"""Tests of the potency/cost metrics and the analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis import linear_regression, mean, percentile, render_series, render_table, summarize
from repro.codegen import GeneratedCodec, generate_module
from repro.metrics import (
    call_graph_depth,
    call_graph_size,
    code_lines,
    count_lines,
    count_structs,
    extract_call_graph,
    measure_graph,
    measure_message,
    measure_messages,
    measure_source,
    struct_count,
)
from repro.metrics.callgraph import restrict_call_graph
from repro.metrics.cost import summarize as summarize_cost
from repro.metrics.loc import generated_code_lines
from repro.protocols import http, modbus
from repro.transforms import Obfuscator

SAMPLE = '''
# a comment

def parse(data):
    return _inner(data)

def _inner(data):
    helper()
    return data

def helper():
    pass

class S_demo:
    pass

class Helper:
    pass
'''


class TestLoc:
    def test_count_lines_breakdown(self):
        counts = count_lines("a = 1\n\n# comment\nb = 2\n")
        assert counts.total == 4
        assert counts.code == 2
        assert counts.comment == 1
        assert counts.blank == 1

    def test_code_lines(self):
        assert code_lines("a = 1\n# c\n") == 1

    def test_generated_code_lines_with_marker(self):
        source = "x = 1\n# === marker ===\ny = 2\nz = 3\n"
        assert generated_code_lines(source, "# === marker ===") == 2
        assert generated_code_lines(source, "# missing") == code_lines(source)


class TestStructsAndCallGraph:
    def test_struct_count_only_counts_ast_structs(self):
        counts = count_structs(SAMPLE)
        assert counts.ast_structs == 1
        assert counts.helper_classes == 1
        assert counts.total == 2
        assert struct_count(SAMPLE) == 1

    def test_call_graph_size_and_depth(self):
        graph = extract_call_graph(SAMPLE)
        assert graph.size == 3  # parse -> _inner -> helper
        assert graph.depth == 3
        assert call_graph_size(SAMPLE) == 3
        assert call_graph_depth(SAMPLE) == 3

    def test_call_graph_handles_unknown_entry(self):
        graph = extract_call_graph(SAMPLE, entry="missing")
        assert graph.size == 0
        assert graph.depth == 0

    def test_restrict_call_graph_contracts_helpers(self):
        graph = extract_call_graph(SAMPLE)
        restricted = restrict_call_graph(graph, ("_par_",), keep=("parse", "_inner"))
        assert restricted.size == 2  # parse -> _inner (helper contracted away)


class TestPotency:
    def test_measure_source_on_generated_library(self, http_request_graph):
        metrics = measure_source(generate_module(http_request_graph))
        assert metrics.lines > 0
        assert metrics.structs == http_request_graph.stats().node_count
        assert metrics.call_graph_size >= http_request_graph.stats().node_count
        assert metrics.call_graph_depth >= 3

    def test_measure_graph_convenience(self, http_request_graph):
        assert measure_graph(http_request_graph) == measure_source(
            generate_module(http_request_graph)
        )

    def test_potency_grows_with_obfuscation(self, http_request_graph):
        reference = measure_graph(http_request_graph)
        obfuscated = measure_graph(Obfuscator(seed=0).obfuscate(http_request_graph, 2).graph)
        normalized = obfuscated.normalized(reference)
        assert normalized.lines > 1.0
        assert normalized.structs > 1.0
        assert normalized.call_graph_size > 1.0
        assert normalized.call_graph_depth >= 1.0
        assert set(normalized.as_dict()) == {
            "lines", "structs", "call_graph_size", "call_graph_depth"
        }

    def test_normalization_against_zero_reference(self):
        from repro.metrics import PotencyMetrics

        zero = PotencyMetrics(lines=0, structs=0, call_graph_size=0, call_graph_depth=0)
        assert PotencyMetrics(1, 1, 1, 1).normalized(zero).lines == 0.0


class TestCost:
    def test_measure_message_and_summary(self, modbus_request_graph, rng):
        codec = GeneratedCodec(modbus_request_graph, seed=0)
        messages = [modbus.random_request(rng) for _ in range(4)]
        samples = measure_messages(codec, messages)
        assert len(samples) == 4
        assert all(sample.buffer_size > 0 for sample in samples)
        summary = summarize_cost(samples)
        assert summary.samples == 4
        assert summary.parse_ms >= 0.0 and summary.serialize_ms >= 0.0

    def test_empty_summary(self):
        summary = summarize_cost([])
        assert summary.samples == 0
        assert summary.buffer_size == 0.0

    def test_measure_single_message(self, http_request_graph, rng):
        codec = GeneratedCodec(http_request_graph, seed=0)
        sample = measure_message(codec, http.random_request(rng))
        assert sample.buffer_size == len(codec.serialize(http.random_request(rng))) or sample.buffer_size > 0


class TestAnalysis:
    def test_summary_and_format(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.format(1) == "2.0[1.0; 3.0]"

    def test_empty_summary(self):
        assert summarize([]).count == 0

    def test_mean_and_percentile(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0
        assert percentile([1, 2, 3, 4], 0.0) == 1
        assert percentile([1, 2, 3, 4], 1.0) == 4
        assert percentile([], 0.5) == 0.0

    def test_linear_regression_perfect_fit(self):
        fit = linear_regression([1, 2, 3, 4], [2, 4, 6, 8])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(0.0)
        assert fit.correlation == pytest.approx(1.0)
        assert fit.predict(5) == pytest.approx(10.0)
        assert "r =" in fit.format()

    def test_linear_regression_degenerate_inputs(self):
        assert linear_regression([], []).samples == 0
        assert linear_regression([1], [5]).intercept == 5
        assert linear_regression([2, 2, 2], [1, 2, 3]).slope == 0.0
        assert linear_regression([1, 2, 3], [5, 5, 5]).correlation == 0.0

    def test_linear_regression_length_mismatch(self):
        with pytest.raises(ValueError):
            linear_regression([1, 2], [1])

    def test_render_table(self):
        text = render_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        assert "T" in text and "bb" in text and "30" in text

    def test_render_series(self):
        text = render_series("demo", [1, 2], [3, 4])
        assert "demo" in text and "x: 1, 2" in text
