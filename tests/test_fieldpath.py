"""Tests of the logical field path model."""

from __future__ import annotations

import pytest

from repro.core import INDEX, FieldPath, MessageError


class TestParsing:
    def test_parse_simple_dotted_path(self):
        path = FieldPath.parse("header.transaction_id")
        assert path.steps == ("header", "transaction_id")

    def test_parse_empty_string_is_root(self):
        assert FieldPath.parse("").steps == ()

    def test_parse_unbound_index(self):
        path = FieldPath.parse("headers[*].name")
        assert path.steps == ("headers", INDEX, "name")

    def test_parse_concrete_index(self):
        path = FieldPath.parse("registers[2]")
        assert path.steps == ("registers", 2)

    def test_parse_multiple_brackets_on_one_segment(self):
        path = FieldPath.parse("matrix[1][2]")
        assert path.steps == ("matrix", 1, 2)

    def test_parse_rejects_invalid_segment(self):
        with pytest.raises(MessageError):
            FieldPath.parse("bad segment")

    def test_parse_rejects_leading_dot(self):
        with pytest.raises(MessageError):
            FieldPath.parse(".name")

    def test_of_accepts_path_string_and_steps(self):
        path = FieldPath.parse("a.b")
        assert FieldPath.of(path) is path
        assert FieldPath.of("a.b") == path
        assert FieldPath.of(["a", "b"]) == path

    def test_invalid_step_type_rejected(self):
        with pytest.raises(MessageError):
            FieldPath(["a", 1.5])  # type: ignore[list-item]


class TestCombinators:
    def test_child_and_extend(self):
        base = FieldPath.parse("a")
        assert base.child("b").steps == ("a", "b")
        assert base.extend(["b", 0]).steps == ("a", "b", 0)

    def test_parent(self):
        assert FieldPath.parse("a.b").parent() == FieldPath.parse("a")

    def test_parent_of_root_raises(self):
        with pytest.raises(MessageError):
            FieldPath().parent()

    def test_resolve_binds_indices_left_to_right(self):
        path = FieldPath.parse("rows[*].cells[*].value")
        assert path.resolve([1, 3]).steps == ("rows", 1, "cells", 3, "value")

    def test_resolve_ignores_extra_indices(self):
        path = FieldPath.parse("rows[*].value")
        assert path.resolve([2, 9, 9]).steps == ("rows", 2, "value")

    def test_resolve_with_too_few_indices_raises(self):
        with pytest.raises(MessageError):
            FieldPath.parse("rows[*].value").resolve([])

    def test_startswith(self):
        path = FieldPath.parse("a.b.c")
        assert path.startswith(FieldPath.parse("a.b"))
        assert not path.startswith(FieldPath.parse("a.c"))


class TestInspection:
    def test_is_concrete(self):
        assert FieldPath.parse("a.b[0]").is_concrete
        assert not FieldPath.parse("a.b[*]").is_concrete

    def test_index_arity(self):
        assert FieldPath.parse("a[*].b[*]").index_arity() == 2
        assert FieldPath.parse("a.b").index_arity() == 0

    def test_leaf_name(self):
        assert FieldPath.parse("a.b").leaf_name() == "b"
        assert FieldPath.parse("a[0]").leaf_name() is None

    def test_str_round_trip(self):
        for text in ("a", "a.b", "a[*].b", "a[3].b[*]", ""):
            assert str(FieldPath.parse(text)) == text

    def test_equality_and_hash(self):
        assert FieldPath.parse("a.b") == FieldPath.parse("a.b")
        assert hash(FieldPath.parse("a.b")) == hash(FieldPath.parse("a.b"))
        assert FieldPath.parse("a.b") != FieldPath.parse("a.c")

    def test_len_bool_iter(self):
        path = FieldPath.parse("a.b")
        assert len(path) == 2
        assert bool(path)
        assert not bool(FieldPath())
        assert list(path) == ["a", "b"]

    def test_repr_contains_text(self):
        assert "a.b" in repr(FieldPath.parse("a.b"))

    def test_index_sentinel_is_singleton(self):
        import copy

        assert copy.deepcopy(INDEX) is INDEX
        assert copy.copy(INDEX) is INDEX
