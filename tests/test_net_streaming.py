"""Streaming wire decoding: equivalence with whole-message parse and framing.

The core guarantee of the incremental decoder is *exact* equivalence with
``parse()``: for every registry protocol, at every obfuscation level 0-4,
under arbitrary chunk boundaries, the streamed result must be byte- and
structure-identical to parsing the whole buffer at once.  On top of that the
suite pins the stream-only behaviours: back-to-back framing, NEED_MORE
reporting, clean :class:`StreamError` on mid-message EOF and on trailing
garbage, and the self-framing analysis that decides the session framing.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.errors import StreamError
from repro.net.framing import RecordDecoder, encode_record, resolve_framing
from repro.protocols import registry
from repro.transforms.engine import Obfuscator
from repro.wire import WireCodec
from repro.wire.streaming import (
    StreamingDecoder,
    decode_stream,
    is_self_framing,
    stream_greedy_nodes,
)


def random_chunks(data: bytes, rng: Random, *, max_chunk: int = 9) -> list[bytes]:
    """Split ``data`` at random boundaries (chunks of 1..max_chunk bytes)."""
    chunks, cursor = [], 0
    while cursor < len(data):
        size = rng.randrange(1, max_chunk + 1)
        chunks.append(data[cursor : cursor + size])
        cursor += size
    return chunks


# ---------------------------------------------------------------------------
# equivalence with whole-message parse
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("passes", [0, 1, 2, 3, 4])
def test_streaming_equals_whole_message_parse(protocol_case, passes):
    """Fuzzed chunk splits: streamed == parse() for every protocol x level."""
    name, graph_factory, generator = protocol_case
    graph = graph_factory()
    if passes:
        graph = Obfuscator(seed=1000 + passes).obfuscate(graph, passes).graph
    codec = WireCodec(graph, seed=7)
    rng = Random(f"{name}-{passes}")
    split_rng = Random(passes * 31 + 5)
    for _ in range(3):
        message = generator(rng)
        data = codec.serialize(message)
        reference = codec.parse(data)
        for _ in range(2):
            decoded = decode_stream(graph, random_chunks(data, split_rng))
            assert len(decoded) == 1
            assert decoded[0].raw == data
            assert decoded[0].start == 0 and decoded[0].end == len(data)
            assert decoded[0].message == reference


def test_one_byte_chunk_feed(protocol_case):
    """The degenerate 1-byte-per-feed split decodes identically."""
    name, graph_factory, generator = protocol_case
    graph = graph_factory()
    codec = WireCodec(graph, seed=3)
    message = generator(Random(42))
    data = codec.serialize(message)
    decoded = decode_stream(graph, (bytes([byte]) for byte in data))
    assert len(decoded) == 1
    assert decoded[0].raw == data
    assert decoded[0].message == codec.parse(data)


def test_split_inside_length_and_counter_fields():
    """Chunk boundaries falling inside derived fields suspend cleanly.

    The Modbus MBAP length field occupies bytes [4, 6) and the DNS qdcount
    bytes [4, 6): feeding exactly one of the two bytes must leave the decoder
    suspended (NEED_MORE), and completing the field must resume in place.
    """
    for key, cut in (("modbus", 5), ("dns", 5), ("mqtt", 2)):
        setup = registry.get(key)
        graph = setup.graph_factory()
        codec = WireCodec(graph, seed=1)
        data = codec.serialize(setup.message_generator(Random(8)))
        decoder = StreamingDecoder(graph)
        assert decoder.feed(data[:cut]) == []
        assert decoder.needs_more, f"{key}: decoder should be suspended mid-field"
        completed = decoder.feed(data[cut:])
        assert len(completed) == 1
        assert completed[0].raw == data
        assert not decoder.needs_more


# ---------------------------------------------------------------------------
# back-to-back framing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("key", ["modbus", "dns", "mqtt"])
@pytest.mark.parametrize("passes", [0, 2])
def test_back_to_back_framing(key, passes):
    """Self-framing graphs split a concatenated stream at exact extents."""
    setup = registry.get(key)
    graph = setup.graph_factory()
    if passes:
        graph = Obfuscator(seed=50 + passes).obfuscate(graph, passes).graph
    if not is_self_framing(graph):
        pytest.skip(f"{key} became stream-greedy at {passes} passes")
    codec = WireCodec(graph, seed=4)
    rng = Random(21)
    wires = [codec.serialize(setup.message_generator(rng)) for _ in range(6)]
    stream = b"".join(wires)
    decoder = StreamingDecoder(graph)
    decoded = []
    for chunk in random_chunks(stream, Random(passes + 77), max_chunk=13):
        decoded.extend(decoder.feed(chunk))
    decoded.extend(decoder.feed_eof())
    assert [frame.raw for frame in decoded] == wires
    assert [frame.message for frame in decoded] == [codec.parse(w) for w in wires]
    assert decoder.decoded_count == 6
    # extents tile the stream exactly
    cursor = 0
    for frame in decoded:
        assert frame.start == cursor
        cursor = frame.end
    assert cursor == len(stream)


def test_one_chunk_completes_multiple_messages():
    setup = registry.get("modbus")
    graph = setup.graph_factory()
    codec = WireCodec(graph, seed=2)
    rng = Random(5)
    wires = [codec.serialize(setup.message_generator(rng)) for _ in range(4)]
    decoder = StreamingDecoder(graph)
    completed = decoder.feed(b"".join(wires))
    assert len(completed) == 4


# ---------------------------------------------------------------------------
# stream errors
# ---------------------------------------------------------------------------


def test_abrupt_mid_message_eof_raises_stream_error(protocol_case):
    name, graph_factory, generator = protocol_case
    graph = graph_factory()
    codec = WireCodec(graph, seed=6)
    data = codec.serialize(generator(Random(17)))
    # On a self-framing graph *every* proper prefix is mid-message; on a
    # stream-greedy one (HTTP) a truncated END-bounded body still reads as a
    # complete, shorter message — only cuts inside the leading structure are
    # guaranteed abrupt.
    cuts = {1, len(data) // 2, len(data) - 1} if is_self_framing(graph) else {1}
    for cut in cuts:
        decoder = StreamingDecoder(graph)
        decoder.feed(data[:cut])
        with pytest.raises(StreamError):
            decoder.feed_eof()


def test_trailing_garbage_raises_stream_error():
    setup = registry.get("modbus")
    graph = setup.graph_factory()
    codec = WireCodec(graph, seed=9)
    good = codec.serialize(setup.message_generator(Random(1)))
    decoder = StreamingDecoder(graph)
    assert len(decoder.feed(good)) == 1
    with pytest.raises(StreamError) as excinfo:
        # An MBAP header claiming a huge length, then EOF mid-"payload".
        decoder.feed(b"\x00\x01\x00\x00\x00\x04\x01")
        decoder.feed_eof()
    assert excinfo.value.message_index == 1


def test_failed_decoder_refuses_further_feeds():
    setup = registry.get("modbus")
    graph = setup.graph_factory()
    decoder = StreamingDecoder(graph)
    decoder.feed(b"\x00\x01\x00")
    with pytest.raises(StreamError):
        decoder.feed_eof()
    with pytest.raises(StreamError):
        decoder.feed(b"\x00")


def test_needs_more_reporting():
    setup = registry.get("dns")
    graph = setup.graph_factory()
    codec = WireCodec(graph, seed=0)
    data = codec.serialize(setup.message_generator(Random(3)))
    decoder = StreamingDecoder(graph)
    assert not decoder.needs_more
    decoder.feed(data[:4])
    assert decoder.needs_more and decoder.buffered == 4
    decoder.feed(data[4:])
    assert not decoder.needs_more and decoder.buffered == 0
    assert decoder.feed_eof() == []


# ---------------------------------------------------------------------------
# self-framing analysis and record framing
# ---------------------------------------------------------------------------


def test_self_framing_analysis():
    http = registry.get("http")
    assert not is_self_framing(http.graph_factory())
    assert not is_self_framing(http.response_graph_factory())
    greedy = stream_greedy_nodes(http.graph_factory())
    assert "request_body" in greedy  # the END-bounded optional body
    for key in ("modbus", "dns", "mqtt"):
        setup = registry.get(key)
        assert is_self_framing(setup.graph_factory()), key


def test_resolve_framing_modes():
    http_graph = registry.get("http").graph_factory()
    modbus_graph = registry.get("modbus").graph_factory()
    assert resolve_framing(http_graph, "auto") == "record"
    assert resolve_framing(modbus_graph, "auto") == "native"
    assert resolve_framing(modbus_graph, "record") == "record"
    with pytest.raises(StreamError):
        resolve_framing(http_graph, "native")
    with pytest.raises(ValueError):
        resolve_framing(http_graph, "tunnel")


def test_record_decoder_round_trip():
    setup = registry.get("http")
    graph = setup.graph_factory()
    codec = WireCodec(graph, seed=1)
    rng = Random(12)
    wires = [codec.serialize(setup.message_generator(rng)) for _ in range(5)]
    stream = b"".join(encode_record(wire) for wire in wires)
    decoder = RecordDecoder(graph)
    decoded = []
    for chunk in random_chunks(stream, Random(55), max_chunk=7):
        decoded.extend(decoder.feed(chunk))
    decoded.extend(decoder.feed_eof())
    assert [frame.raw for frame in decoded] == wires
    assert [frame.message for frame in decoded] == [codec.parse(w) for w in wires]


def test_record_decoder_truncated_record_raises():
    graph = registry.get("http").graph_factory()
    decoder = RecordDecoder(graph)
    decoder.feed(encode_record(b"GET / HTTP/1.1\r\n\r\n")[:-3])
    with pytest.raises(StreamError):
        decoder.feed_eof()


def test_record_decoder_oversized_record_raises():
    graph = registry.get("http").graph_factory()
    decoder = RecordDecoder(graph)
    with pytest.raises(StreamError):
        decoder.feed((1 << 25).to_bytes(4, "big") + b"x" * 16)
