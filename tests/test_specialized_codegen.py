"""Tests of the specializing code generator (the native-speed codec tier).

ISSUE 10 acceptance: specialized modules are property-tested identical to
the interpreted runtime — bytes, logical structure and typed errors — for
every registered protocol × obfuscation levels 0–4 × replayed plans, the
module cache shares one compiled module per dialect fingerprint, the loader
refuses stale-emitter-version modules, and the mypyc/Cython hook falls back
cleanly when no compiler is installed.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.codegen import (
    EMITTER_VERSION,
    SpecializedCodec,
    available_backends,
    cached_module,
    clear_module_cache,
    compile_native,
    generate_module,
    generate_module_from_plan,
    generate_specialized_module,
    load_source,
    maybe_native,
    module_cache_stats,
)
from repro.core.errors import CodegenError, ParseError
from repro.protocols import registry
from repro.transforms import Obfuscator
from repro.wire import WireCodec
from repro.wire.parser import Parser
from repro.wire.serializer import Serializer

LEVELS = [0, 1, 2, 3, 4]


def dialect(graph_factory, level: int, *, seed: int = 1234):
    """Obfuscated dialect graph of one level (0 = the plain graph)."""
    graph = graph_factory()
    if level == 0:
        return graph
    return Obfuscator(seed=seed + level).obfuscate(graph, level).graph


class TestEmittedSource:
    def test_module_compiles_and_has_api(self, http_request_graph):
        source = generate_specialized_module(http_request_graph)
        module = load_source(source)
        assert callable(module.parse)
        assert callable(module.serialize)
        assert module.__specialized__ is True
        assert module.__emitter_version__ == EMITTER_VERSION

    def test_specialize_flag_routes_generate_module(self, modbus_request_graph):
        readable = generate_module(modbus_request_graph)
        specialized = generate_module(modbus_request_graph, specialize=True)
        assert "__specialized__ = False" in readable
        assert "__specialized__ = True" in specialized
        # The specialized form is straight-line: no per-node function zoo.
        assert "def _ser_" not in specialized
        assert "def _par_" not in specialized

    def test_specialized_source_is_deterministic(self, http_request_graph):
        first = generate_specialized_module(http_request_graph)
        second = generate_specialized_module(http_request_graph)
        assert first == second

    def test_generate_module_from_plan_specialized(self):
        setup = registry.get("modbus")
        plan = Obfuscator(seed=5).obfuscate(setup.graph_factory(), 2).plan()
        source = generate_module_from_plan(setup.graph_factory(), plan,
                                           specialize=True)
        module = load_source(source)
        assert module.__plan_fingerprint__ == plan.fingerprint
        assert module.__specialized__ is True
        # Emitting from the replayed graph directly is byte-identical.
        replayed = plan.replay(setup.graph_factory())
        assert source == generate_specialized_module(
            replayed, plan_fingerprint=plan.fingerprint)


class TestEquivalence:
    """Bytes, structure and round-trips match the interpreted runtime."""

    @pytest.mark.parametrize("level", LEVELS)
    def test_byte_and_structure_identity(self, protocol_case, level, rng):
        _, graph_factory, generator = protocol_case
        graph = dialect(graph_factory, level)
        specialized = SpecializedCodec(graph, seed=3)
        interpreted = WireCodec(graph, seed=3)
        parser = Parser(graph)
        for _ in range(8):
            message = generator(rng)
            specialized_bytes = specialized.serialize(message)
            interpreted_bytes = interpreted.serialize(message)
            assert specialized_bytes == interpreted_bytes
            assert specialized.parse(specialized_bytes) == parser.parse(
                interpreted_bytes)

    @pytest.mark.parametrize("level", [0, 2, 4])
    def test_round_trip(self, protocol_case, level, rng):
        _, graph_factory, generator = protocol_case
        graph = dialect(graph_factory, level, seed=77)
        codec = SpecializedCodec(graph, seed=0)
        for _ in range(5):
            message = generator(rng)
            assert codec.parse(codec.serialize(message)) == message

    def test_replayed_plan_shares_bytes_with_engine_run(self, protocol_case, rng):
        """A dialect replayed from its extracted plan specializes identically."""
        _, graph_factory, generator = protocol_case
        result = Obfuscator(seed=21).obfuscate(graph_factory(), 2)
        replayed = result.plan().replay(graph_factory())
        from_engine = SpecializedCodec(result.graph, seed=9)
        from_replay = SpecializedCodec(replayed, seed=9)
        for _ in range(5):
            message = generator(rng)
            assert from_engine.serialize(message) == from_replay.serialize(message)


class TestErrorParity:
    """Fuzzed malformed inputs raise the interpreted parser's exact error."""

    @pytest.mark.parametrize("level", LEVELS)
    def test_truncated_and_corrupted_inputs(self, protocol_case, level, rng):
        _, graph_factory, generator = protocol_case
        graph = dialect(graph_factory, level)
        specialized = SpecializedCodec(graph, seed=3)
        parser = Parser(graph)
        serializer = Serializer(graph, rng=Random(3))
        fuzz = Random(0xBAD5EED + level)
        wires = []
        for _ in range(4):
            try:
                wires.append(serializer.serialize(generator(rng)))
            except Exception:
                continue
        assert wires, "no serializable messages to fuzz"
        for wire in wires:
            variants = [wire[:cut] for cut in range(len(wire))]
            for _ in range(25):
                if not wire:
                    break
                flipped = bytearray(wire)
                flipped[fuzz.randrange(len(wire))] ^= 1 << fuzz.randrange(8)
                variants.append(bytes(flipped))
            variants.extend(
                wire + bytes(fuzz.randrange(256)
                             for _ in range(fuzz.randrange(1, 4)))
                for _ in range(5)
            )
            for variant in variants:
                self.assert_same_outcome(parser, specialized, variant)

    @staticmethod
    def assert_same_outcome(parser: Parser, specialized: SpecializedCodec,
                            data: bytes) -> None:
        try:
            expected = parser.parse(data)
        except ParseError as exc:
            with pytest.raises(ParseError) as caught:
                specialized.parse(data)
            assert str(caught.value) == str(exc)
            assert caught.value.offset == exc.offset
            assert caught.value.node == exc.node
            assert type(caught.value) is type(exc)
        else:
            assert specialized.parse(data) == expected

    def test_trailing_bytes_strict_and_lenient(self, modbus_request_graph, rng):
        codec = SpecializedCodec(modbus_request_graph, seed=0)
        message = registry.get("modbus").message_generator(rng)
        wire = codec.serialize(message)
        with pytest.raises(ParseError, match="trailing byte"):
            codec.parse(wire + b"xx")
        assert codec.parse(wire + b"xx", strict=False) == message


class TestModuleCache:
    def setup_method(self):
        clear_module_cache()

    def teardown_method(self):
        clear_module_cache()

    def test_same_fingerprint_shares_one_module(self):
        setup = registry.get("modbus")
        plan = Obfuscator(seed=4).obfuscate(setup.graph_factory(), 2).plan()
        first = plan.replay(setup.graph_factory())
        second = plan.replay(setup.graph_factory())
        assert first is not second
        module_a = cached_module(first, specialize=True)
        module_b = cached_module(second, specialize=True)
        assert module_a is module_b
        stats = module_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_unstamped_graphs_share_by_content(self):
        setup = registry.get("http")
        module_a = cached_module(setup.graph_factory(), specialize=True)
        module_b = cached_module(setup.graph_factory(), specialize=True)
        assert module_a is module_b

    def test_disk_cache_round_trip(self, tmp_path):
        graph = registry.get("dns").graph_factory()
        cached_module(graph, specialize=True, cache_dir=tmp_path)
        files = list(tmp_path.glob("codec_*_spec.py"))
        assert len(files) == 1
        clear_module_cache()
        cached_module(graph, specialize=True, cache_dir=tmp_path)
        assert module_cache_stats()["disk_hits"] == 1

    def test_disk_cache_refuses_and_regenerates_stale_version(self, tmp_path):
        graph = registry.get("dns").graph_factory()
        cached_module(graph, specialize=True, cache_dir=tmp_path)
        path = next(tmp_path.glob("codec_*_spec.py"))
        stale = path.read_text().replace(
            f"__emitter_version__ = {EMITTER_VERSION!r}",
            "__emitter_version__ = '0-stale'")
        path.write_text(stale)
        clear_module_cache()
        module = cached_module(graph, specialize=True, cache_dir=tmp_path)
        # Regenerated, never run stale: the fresh module carries the current
        # version and the file was overwritten with it.
        assert module.__emitter_version__ == EMITTER_VERSION
        assert module_cache_stats()["disk_hits"] == 0
        assert f"__emitter_version__ = {EMITTER_VERSION!r}" in path.read_text()

    def test_compiled_codec_shares_module_not_rng(self, rng):
        setup = registry.get("coap")
        codec_a = setup.compiled_codec("request", seed=1)
        codec_b = setup.compiled_codec("request", seed=1)
        assert codec_a.module is codec_b.module
        message = setup.message_generator(rng)
        # Same seed, independent RNG state: identical first draws.
        assert codec_a.serialize(message) == codec_b.serialize(message)


class TestVersionRefusal:
    def test_loader_refuses_declared_stale_version(self, modbus_request_graph):
        source = generate_module(modbus_request_graph, specialize=True)
        stale = source.replace(
            f"__emitter_version__ = {EMITTER_VERSION!r}",
            "__emitter_version__ = 'prehistoric'")
        with pytest.raises(CodegenError, match="emitter version"):
            load_source(stale)

    def test_loader_refuses_unstamped_when_version_required(self):
        with pytest.raises(CodegenError, match="no __emitter_version__"):
            load_source("def parse(d, strict=True): return {}\n",
                        require_version=True)

    def test_unstamped_allowed_by_default(self):
        module = load_source("x = 1\n")
        assert module.x == 1

    def test_readable_modules_are_stamped_too(self, http_request_graph):
        source = generate_module(http_request_graph)
        module = load_source(source)
        assert module.__emitter_version__ == EMITTER_VERSION
        assert module.__specialized__ is False


class TestNativeHook:
    def test_fallback_when_no_backend_installed(self, modbus_request_graph):
        # The container ships no mypyc/Cython: the hook must return None /
        # the fallback module without raising.
        source = generate_module(modbus_request_graph, specialize=True)
        if available_backends():
            pytest.skip("a native backend is installed here")
        assert compile_native(source) is None
        fallback = load_source(source)
        assert maybe_native(source, fallback, native=True) is fallback

    def test_maybe_native_is_opt_in(self, modbus_request_graph, monkeypatch):
        source = generate_module(modbus_request_graph, specialize=True)
        fallback = load_source(source)
        monkeypatch.delenv("REPRO_NATIVE_CODEC", raising=False)
        assert maybe_native(source, fallback) is fallback


class TestNetIntegration:
    def test_specialized_sessions_match_interpreted_bytes(self):
        import asyncio

        from repro.net import Capture, ObfuscatedClient, ObfuscatedServer

        async def traffic(specialize: bool):
            capture = Capture()
            server = ObfuscatedServer("modbus", framing="record", seed=5,
                                      capture=capture, capture_received=True,
                                      specialize=specialize)
            client = ObfuscatedClient("modbus", framing="record", seed=5,
                                      specialize=specialize)
            client.connect_memory(server)
            rng = Random(11)
            generator = registry.get("modbus").message_generator
            replies = []
            for _ in range(6):
                reply = await client.request(generator(rng))
                replies.append(reply.raw)
            await client.close()
            return replies, [record.data for record in capture.records]

        interpreted = asyncio.run(traffic(False))
        specialized = asyncio.run(traffic(True))
        assert interpreted == specialized
