"""Tests of the compiled codec plan subsystem.

Covers three contracts of :mod:`repro.wire.plan`:

* **equivalence** — executing against a cached plan produces byte-for-byte
  the same wire strings (and the same parsed messages) as executing against a
  freshly compiled, uncached plan, for every registered protocol under 0–4
  obfuscation passes;
* **caching** — plans are compiled once per graph identity and shared by the
  parser, serializer and module-level wrappers;
* **invalidation** — in-place transformations (through the obfuscation
  engine) drop the stale cached plan, so codecs never execute against a plan
  compiled for a previous shape of the graph.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.boundary import BoundaryKind
from repro.core.node import NodeType
from repro.core.values import ValueKind, ValueOp, ValueOpKind
from repro.protocols import registry
from repro.transforms import Obfuscator
from repro.transforms.base import Transformation, TransformationCategory
from repro.wire import (
    Parser,
    Serializer,
    WireCodec,
    compile_plan,
    invalidate,
    parse,
    plan_for,
    serialize,
)

PROTOCOL_GRAPH_CASES = [
    (f"{setup.key}_{direction}", graph_factory, generator)
    for setup in registry.setups()
    for direction, graph_factory, generator in setup.directions()
]


@pytest.mark.parametrize("passes", range(5))
@pytest.mark.parametrize(
    ("graph_factory", "generator"),
    [case[1:] for case in PROTOCOL_GRAPH_CASES],
    ids=[case[0] for case in PROTOCOL_GRAPH_CASES],
)
def test_planned_matches_uncached_interpretation(graph_factory, generator, passes):
    """Cached-plan execution is byte-identical to fresh per-call compilation."""
    graph = graph_factory()
    if passes:
        graph = Obfuscator(seed=40 + passes).obfuscate(graph, passes).graph
    message_rng = Random(passes)
    for draw in range(3):
        message = generator(message_rng)
        planned_bytes = serialize(graph, message, rng=Random(draw))
        fresh_serializer = Serializer(graph, rng=Random(draw), plan=compile_plan(graph))
        interpreted_bytes = fresh_serializer.serialize(message)
        assert planned_bytes == interpreted_bytes
        planned_parsed = parse(graph, planned_bytes)
        fresh_parser = Parser(graph, plan=compile_plan(graph))
        assert planned_parsed == fresh_parser.parse(interpreted_bytes)
        assert planned_parsed == message


def test_plan_is_cached_per_graph_identity():
    graph = registry.get("modbus").graph_factory()
    plan = plan_for(graph)
    assert plan_for(graph) is plan
    # A structurally identical but distinct graph compiles its own plan.
    assert plan_for(registry.get("modbus").graph_factory()) is not plan


def test_codec_and_wrappers_share_the_cached_plan():
    graph = registry.get("http").graph_factory()
    codec = WireCodec(graph)
    assert codec.plan is plan_for(graph)
    assert Parser(graph).plan is codec.plan
    assert Serializer(graph).plan is codec.plan


def test_invalidate_forces_recompilation():
    graph = registry.get("dns").graph_factory()
    stale = plan_for(graph)
    assert invalidate(graph) is True
    assert invalidate(graph) is False  # nothing cached any more
    assert plan_for(graph) is not stale


def test_obfuscation_leaves_the_original_plan_untouched(rng):
    setup = registry.get("http")
    graph = setup.graph_factory()
    plan = plan_for(graph)
    result = Obfuscator(seed=9).obfuscate(graph, 2)
    # The engine clones before transforming: the original graph and its
    # cached plan survive, the obfuscated graph compiles its own plan.
    assert plan_for(graph) is plan
    obfuscated_plan = plan_for(result.graph)
    assert obfuscated_plan is not plan
    message = setup.message_generator(rng)
    assert WireCodec(graph).round_trips(message)
    assert WireCodec(result.graph).round_trips(message)


class _PlanSnoopingXor(Transformation):
    """ConstXor variant that compiles a plan against the working graph first.

    This reproduces the stale-plan hazard: a codec plan exists for a graph
    that a transformation is about to rewrite in place.  The engine must drop
    that plan after applying the transformation.
    """

    name = "PlanSnoopingXor"
    category = TransformationCategory.AGGREGATION

    def __init__(self):
        self.mid_run_plans = []

    def is_applicable(self, graph, node):
        return (
            node.type is NodeType.TERMINAL
            and not node.is_pad
            and node.value_kind is ValueKind.UINT
            and node.boundary.kind is BoundaryKind.FIXED
            and (node.boundary.size or 0) > 0
        )

    def apply(self, graph, node, rng):
        self.mid_run_plans.append(plan_for(graph))
        width = node.boundary.size or 1
        op = ValueOp(ValueOpKind.XOR, rng.randrange(1, 1 << (8 * width)),
                     bytewise=False, width=width)
        node.codec_chain = node.codec_chain + (op,)
        return self.record(node)


def test_direct_transformation_apply_invalidates_the_plan(rng):
    """A Transformation.apply outside the engine also drops the stale plan."""
    from repro.transforms.const import ConstXor

    setup = registry.get("modbus")
    graph = setup.graph_factory()
    stale = plan_for(graph)
    transformation = ConstXor()
    node = next(n for n in graph.nodes() if transformation.is_applicable(graph, n))
    transformation.apply(graph, node, Random(1))
    fresh = plan_for(graph)
    assert fresh is not stale
    message = setup.message_generator(rng)
    codec = WireCodec(graph)
    assert codec.plan is fresh
    assert codec.round_trips(message)


def test_engine_invalidates_plans_compiled_mid_obfuscation(rng):
    setup = registry.get("modbus")
    snoop = _PlanSnoopingXor()
    result = Obfuscator([snoop], seed=3).obfuscate(setup.graph_factory(), 1)
    assert snoop.mid_run_plans, "transformation never ran"
    final_plan = plan_for(result.graph)
    assert all(final_plan is not stale for stale in snoop.mid_run_plans)
    # The recompiled plan reflects the rewritten graph: round trips still hold.
    message = setup.message_generator(rng)
    codec = WireCodec(result.graph)
    assert codec.plan is final_plan
    assert codec.round_trips(message)


def test_protocol_setup_reference_plan_is_shared():
    setup = registry.get("mqtt")
    assert setup.reference_graph() is setup.reference_graph()
    assert setup.reference_plan() is plan_for(setup.reference_graph())
    with pytest.raises(ValueError):
        setup.reference_graph("sideways")
